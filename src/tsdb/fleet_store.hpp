// Fleet-wide segment vault: the columnar replacement for holding every
// shard's ReportStore in memory until the final harvest.
//
// FleetRunner seals each shard's drained reports into one immutable segment
// per (network, phase) batch and hands it here. Segments stay resident
// until the configured memory ceiling presses, then spill to disk as
// sections of a ckpt container (tag kTsdbSegments) and are read back — and
// re-validated against their own CRCs — only when a reader visits that
// network. Reads materialize one network at a time, so peak read-side
// memory is one network's reports, not the fleet's.
//
// Determinism: segments are sealed from canonically-ordered stores and
// visited ascending by network id, batch order within a network. AP ids
// are assigned globally ascending in network-generation order, so this
// visit order IS the canonical global order (ascending AP id, per-AP
// arrival order) — byte-identical to backend::ReportStore's read path.
// Spill decisions key on deterministic byte accounting, never getrusage,
// so spilling changes where bytes live but not any analysis output.
//
// Not thread-safe: only the orchestrating thread touches it, matching the
// fleet-order merge discipline in FleetRunner::harvest.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "backend/report_source.hpp"
#include "backend/store.hpp"
#include "tsdb/segment.hpp"

namespace wlm::tsdb {

/// Deterministic byte accounting, exported as wlm_tsdb_* gauges. Everything
/// here derives from sealed bytes — identical across --jobs and across
/// spill on/off — so it is safe to put in golden-checked telemetry.
struct FleetStoreStats {
  std::uint64_t segments_sealed = 0;
  std::uint64_t segments_spilled = 0;
  std::uint64_t spill_files = 0;
  std::uint64_t resident_bytes = 0;  // sealed segment bytes currently in memory
  std::uint64_t spilled_bytes = 0;   // sealed segment bytes on disk
  std::uint64_t raw_wire_bytes = 0;  // row-encoding baseline of the same reports
  std::uint64_t reports = 0;

  [[nodiscard]] std::uint64_t segment_bytes() const { return resident_bytes + spilled_bytes; }
  /// Raw row-wire bytes per sealed segment byte (>= 3x is the north star).
  [[nodiscard]] double compression_ratio() const {
    return segment_bytes() > 0
               ? static_cast<double>(raw_wire_bytes) / static_cast<double>(segment_bytes())
               : 0.0;
  }
};

class FleetStore final : public backend::ReportSource {
 public:
  /// Ceiling for resident sealed bytes, in bytes; 0 disables spilling.
  /// Sealed segments spill once they exceed a quarter of it — the rest of
  /// the budget belongs to the live shards still simulating.
  void set_mem_ceiling(std::uint64_t bytes) { mem_ceiling_bytes_ = bytes; }
  void set_spill_dir(std::string dir) { spill_dir_ = std::move(dir); }
  [[nodiscard]] std::uint64_t mem_ceiling() const { return mem_ceiling_bytes_; }

  /// Seals `store`'s reports (canonical order) into one segment for
  /// `network_id` and consumes the store. Batch sequence numbers increment
  /// per network in call order. Empty stores seal nothing.
  void append_store(std::uint32_t network_id, backend::ReportStore&& store);

  /// Restore path: validates a sealed segment and adopts it. The batch
  /// counter advances past the segment's own sequence number.
  [[nodiscard]] Error adopt_segment(std::vector<std::uint8_t> bytes);

  /// Drops every segment of one network (quarantined shard: its partial
  /// batches must not reach any analysis).
  void drop_network(std::uint32_t network_id);

  /// Spills all resident segments to the next spill file when resident
  /// bytes exceed the ceiling's spill threshold. No-op without a ceiling.
  [[nodiscard]] Error maybe_spill();

  void clear();

  // Segment enumeration (checkpoint save path).
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  struct SegmentInfo {
    std::uint32_t network_id = 0;
    std::uint32_t batch_seq = 0;
    std::uint64_t n_reports = 0;
    std::uint64_t size = 0;
    bool spilled = false;
  };
  [[nodiscard]] SegmentInfo info(std::size_t i) const;
  /// Materializes segment i's bytes (from memory or its spill file).
  [[nodiscard]] Error segment_bytes(std::size_t i, std::vector<std::uint8_t>& out) const;

  [[nodiscard]] const FleetStoreStats& stats() const { return stats_; }
  /// First read-path failure, if any: ReportSource visitors cannot return
  /// errors, so decode failures latch here and visit nothing further.
  [[nodiscard]] const Error& last_error() const { return last_error_; }

  // backend::ReportSource
  [[nodiscard]] std::size_t report_count() const override {
    return static_cast<std::size_t>(stats_.reports);
  }
  [[nodiscard]] std::size_t ap_count() const override;
  void for_each(const std::function<void(const wire::ApReport&)>& fn) const override;
  void for_each_in(SimTime from, SimTime to,
                   const std::function<void(const wire::ApReport&)>& fn) const override;
  void for_each_ap(const std::function<void(ApId, const std::vector<wire::ApReport>&)>& fn)
      const override;

 private:
  struct Segment {
    std::uint32_t network_id = 0;
    std::uint32_t batch_seq = 0;
    std::uint64_t n_reports = 0;
    std::uint64_t size = 0;
    std::vector<std::uint8_t> bytes;  // resident; empty once spilled
    std::string spill_file;           // non-empty once spilled
    std::uint64_t spill_offset = 0;
  };
  struct Network {
    std::uint32_t next_batch_seq = 0;
    std::vector<std::size_t> segment_idx;  // into segments_, batch order
    std::vector<std::uint32_t> ap_ids;     // distinct, ascending
    std::uint64_t reports = 0;
  };

  void index_segment(Segment seg, const std::vector<std::uint32_t>& seg_aps);
  [[nodiscard]] Error load_segment(const Segment& seg, std::vector<std::uint8_t>& out) const;
  /// Decodes one network's segments into a scratch row store (canonical
  /// order within the network). Latches + reports false on failure.
  [[nodiscard]] bool materialize(const Network& net, backend::ReportStore& out) const;

  std::uint64_t mem_ceiling_bytes_ = 0;
  std::string spill_dir_ = ".";
  std::uint64_t next_spill_seq_ = 0;
  std::vector<Segment> segments_;
  std::map<std::uint32_t, Network> networks_;  // ascending network id
  FleetStoreStats stats_;
  mutable Error last_error_;
};

}  // namespace wlm::tsdb
