#include "tsdb/format.hpp"

namespace wlm::tsdb {

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kIo:
      return "io";
    case Status::kBadMagic:
      return "bad-magic";
    case Status::kBadVersion:
      return "bad-version";
    case Status::kTruncated:
      return "truncated";
    case Status::kBadCrc:
      return "bad-crc";
    case Status::kMalformed:
      return "malformed";
    case Status::kBadCount:
      return "bad-count";
  }
  return "unknown";
}

}  // namespace wlm::tsdb
