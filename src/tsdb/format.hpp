// wlm::tsdb segment format: the columnar, compressed container sealed shard
// harvests travel in.
//
// A segment is one shard's harvest batch, shredded into per-field columns:
//
//   [8B magic "WLMTSEG\x01"] [u32 LE version] [u32 LE network id]
//   [u32 LE batch seq] [varint n_reports] [varint n_aps]
//   [varint raw_wire_bytes] [varint n_blocks]
//   block*: [u8 column id] [u8 encoding] [varint row count]
//           [varint zigzag min] [varint zigzag max]
//           [varint payload len] [payload] [u32 LE crc32(payload)]
//   [u32 LE segment crc over everything after the magic]
//
// Columns reuse the wire varint/zigzag primitives (wire/varint.hpp); the
// compression comes from dropping the row format's per-field tags, delta
// coding the sorted streams (AP ids, timestamps, channels), and dictionary
// coding the two heavy repeated values (client/BSSID MACs, RSSI doubles).
// Per-block min/max summaries let readers prune on time without decoding.
//
// Like the checkpoint container, the reader is adversarial by construction:
// truncations, flipped bits, bumped versions, and CRC-valid but internally
// inconsistent counts all surface as a typed Status, never a crash or a
// partial parse (tests/tsdb/segment_fuzz_test.cpp holds this line).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace wlm::tsdb {

enum class Status : std::uint8_t {
  kOk = 0,
  kIo,          // spill file unreadable/unwritable
  kBadMagic,    // not a tsdb segment
  kBadVersion,  // a future (or corrupted) format revision
  kTruncated,   // ran out of bytes mid-structure
  kBadCrc,      // a block payload or the segment trailer failed its CRC
  kMalformed,   // syntactically broken block content
  kBadCount,    // CRC-valid but internally inconsistent row/report counts
};

[[nodiscard]] const char* status_name(Status s);

/// Typed failure: status plus a one-line human diagnostic.
struct Error {
  Status status = Status::kOk;
  std::string detail;

  [[nodiscard]] bool ok() const { return status == Status::kOk; }
  [[nodiscard]] explicit operator bool() const { return !ok(); }
};

inline constexpr std::array<std::uint8_t, 8> kMagic = {'W', 'L', 'M', 'T',
                                                       'S', 'E', 'G', '\x01'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// Column ids. Append, never renumber (same contract as the wire format).
enum class ColumnId : std::uint8_t {
  kApId = 1,       // per report, ascending (canonical order)
  kTimestamp = 2,  // per report, near-sorted within an AP
  kFirmware = 3,   // per report
  kUsageCount = 4,  // per report: rows in the usage columns
  kUtilCount = 5,
  kNeighborCount = 6,
  kLinkCount = 7,
  kClientCount = 8,
  kMacDict = 9,  // segment-wide MAC dictionary, sorted u64, delta coded
  kUsageClient = 10,  // dict index
  kUsageApp = 11,
  kUsageTx = 12,
  kUsageRx = 13,
  kUtilBand = 14,
  kUtilChannel = 15,
  kUtilCycle = 16,
  kUtilBusy = 17,
  kUtilRxFrame = 18,
  kUtilTx = 19,
  kNbrBssid = 20,  // dict index
  kNbrBand = 21,
  kNbrChannel = 22,
  kNbrRssi = 23,
  kNbrFlags = 24,  // bit 0 is_hotspot, bit 1 is_same_fleet
  kLinkFrom = 25,
  kLinkBand = 26,
  kLinkChannel = 27,
  kLinkExpected = 28,
  kLinkReceived = 29,
  kClientMac = 30,  // dict index
  kClientCaps = 31,
  kClientBand = 32,
  kClientRssi = 33,
  kClientOs = 34,
  // Mesh backhaul accounting (per report). Emitted only when some report in
  // the segment actually relayed, so non-mesh segments seal byte-identically
  // to readers/writers that predate the columns.
  kMeshHops = 35,
  kMeshRelayUs = 36,
};

/// Per-block payload encodings. Integer columns pick whichever of
/// kVarint/kDictVarint is smaller for their data — the choice depends only
/// on the values, so sealed bytes stay identical across --jobs.
enum class Encoding : std::uint8_t {
  kVarint = 1,     // plain u64 varints
  kDeltaZigzag,    // zigzag(v[i] - v[i-1]) varints, v[-1] = 0
  kFixed64,        // raw 8-byte LE words (IEEE-754 bit patterns)
  kDictF64,        // varint dict size + delta-coded sorted bit patterns,
                   // then ceil(log2(n))-bit packed indices (LSB-first)
  kDictVarint,     // varint dict size + delta-coded sorted u64 dict,
                   // then ceil(log2(n))-bit packed indices (LSB-first)
};

}  // namespace wlm::tsdb
