#include "tsdb/segment.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <map>
#include <new>
#include <stdexcept>

#include "core/checksum.hpp"
#include "wire/encoder.hpp"
#include "wire/varint.hpp"

namespace wlm::tsdb {

namespace {

constexpr std::size_t kHeaderFixedBytes = 8 + 4 + 4 + 4;  // magic + 3 u32s
constexpr std::size_t kTrailerBytes = 4;
/// Columnar sealing never shrinks the row-oriented wire encoding by more
/// than this factor, so a header claiming a larger raw_wire_bytes is lying.
/// The bound keeps raw_wire_bytes usable as a row-count ceiling below.
constexpr std::uint64_t kMaxRawExpansion = std::uint64_t{1} << 16;
/// Hard ceiling on a single report's child-row count (usage/util/neighbor/
/// link/client rows). The fleet tops out around thousands per report; 16M
/// is far past legitimate and small enough that per-group sums stay sane.
constexpr std::uint64_t kMaxChildRowsPerReport = std::uint64_t{1} << 24;
/// RSSI columns switch from dictionary to raw fixed64 past this many
/// distinct values (a dictionary larger than the rows it indexes inflates).
constexpr std::size_t kMaxF64Dict = 4096;

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t read_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t f64_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double bits_f64(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

/// Bits needed to address a dictionary of n entries; 0 for a constant
/// column (one entry), where the index stream vanishes entirely.
unsigned index_bits(std::size_t n) {
  return n <= 1 ? 0 : static_cast<unsigned>(std::bit_width(n - 1));
}

/// Packs fixed-width indices LSB-first. Fixed width beats varints for
/// dictionary indices: a 640-entry dictionary addresses in 10 bits where
/// varints spend 8 or 16.
void pack_indices(std::vector<std::uint8_t>& out, const std::vector<std::uint64_t>& idx,
                  unsigned width) {
  std::uint64_t acc = 0;
  unsigned nbits = 0;
  for (const std::uint64_t v : idx) {
    acc |= v << nbits;
    nbits += width;
    while (nbits >= 8) {
      out.push_back(static_cast<std::uint8_t>(acc));
      acc >>= 8;
      nbits -= 8;
    }
  }
  if (nbits > 0) out.push_back(static_cast<std::uint8_t>(acc));
}

/// One finished block, framed and ready to append.
struct Block {
  ColumnId id;
  Encoding encoding;
  std::uint64_t rows;
  std::int64_t min = 0, max = 0;
  std::vector<std::uint8_t> payload;
};

void append_block(std::vector<std::uint8_t>& out, const Block& b) {
  out.push_back(static_cast<std::uint8_t>(b.id));
  out.push_back(static_cast<std::uint8_t>(b.encoding));
  wire::put_varint(out, b.rows);
  wire::put_varint(out, wire::zigzag_encode(b.min));
  wire::put_varint(out, wire::zigzag_encode(b.max));
  wire::put_varint(out, b.payload.size());
  out.insert(out.end(), b.payload.begin(), b.payload.end());
  put_u32le(out, crc32(b.payload));
}

Block varint_block(ColumnId id, const std::vector<std::uint64_t>& col) {
  Block b{id, Encoding::kVarint, col.size()};
  bool first = true;
  for (const std::uint64_t v : col) {
    // Summaries use the reader's view of the value (i64 cast) so the
    // round-trip check compares like with like.
    const auto s = static_cast<std::int64_t>(v);
    b.min = first ? s : std::min(b.min, s);
    b.max = first ? s : std::max(b.max, s);
    first = false;
    wire::put_varint(b.payload, v);
  }
  return b;
}

Block dict_varint_block(ColumnId id, const std::vector<std::uint64_t>& col) {
  Block b{id, Encoding::kDictVarint, col.size()};
  std::vector<std::uint64_t> dict = col;
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  wire::put_varint(b.payload, dict.size());
  std::uint64_t prev = 0;
  for (const std::uint64_t d : dict) {
    wire::put_varint(b.payload, wire::zigzag_encode(static_cast<std::int64_t>(d - prev)));
    prev = d;
  }
  std::vector<std::uint64_t> indices;
  indices.reserve(col.size());
  for (const std::uint64_t v : col) {
    const auto it = std::lower_bound(dict.begin(), dict.end(), v);
    indices.push_back(static_cast<std::uint64_t>(it - dict.begin()));
  }
  pack_indices(b.payload, indices, index_bits(dict.size()));
  bool first = true;
  for (const std::uint64_t v : col) {
    const auto s = static_cast<std::int64_t>(v);
    b.min = first ? s : std::min(b.min, s);
    b.max = first ? s : std::max(b.max, s);
    first = false;
  }
  return b;
}

/// Telemetry counters repeat heavily within one network (a few hundred
/// distinct byte counts across thousands of usage rows), so a sorted-dict
/// encoding often beats plain varints. Pick per column by measuring; ties
/// go to the plain encoding.
Block best_u64_block(ColumnId id, const std::vector<std::uint64_t>& col) {
  Block plain = varint_block(id, col);
  Block dict = dict_varint_block(id, col);
  return dict.payload.size() < plain.payload.size() ? std::move(dict) : std::move(plain);
}

Block delta_block(ColumnId id, const std::vector<std::int64_t>& col) {
  Block b{id, Encoding::kDeltaZigzag, col.size()};
  std::int64_t prev = 0;
  for (const std::int64_t v : col) {
    wire::put_varint(b.payload, wire::zigzag_encode(v - prev));
    prev = v;
  }
  if (!col.empty()) {
    b.min = *std::min_element(col.begin(), col.end());
    b.max = *std::max_element(col.begin(), col.end());
  }
  return b;
}

Block f64_block(ColumnId id, const std::vector<double>& col) {
  // Dictionary when the value set is small (RSSI streams repeat heavily);
  // raw fixed64 otherwise. The choice depends only on the data, so sealed
  // bytes stay identical across --jobs.
  std::vector<std::uint64_t> bits;
  bits.reserve(col.size());
  for (const double v : col) bits.push_back(f64_bits(v));
  std::vector<std::uint64_t> dict = bits;
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  if (!col.empty() && dict.size() <= kMaxF64Dict) {
    Block b{id, Encoding::kDictF64, col.size()};
    wire::put_varint(b.payload, dict.size());
    // Sorted bit patterns of same-sign doubles share their high bits, so
    // delta coding the sorted dictionary beats raw fixed64 entries.
    std::uint64_t prev = 0;
    for (const std::uint64_t d : dict) {
      wire::put_varint(b.payload, wire::zigzag_encode(static_cast<std::int64_t>(d - prev)));
      prev = d;
    }
    std::vector<std::uint64_t> indices;
    indices.reserve(bits.size());
    for (const std::uint64_t v : bits) {
      const auto it = std::lower_bound(dict.begin(), dict.end(), v);
      indices.push_back(static_cast<std::uint64_t>(it - dict.begin()));
    }
    pack_indices(b.payload, indices, index_bits(dict.size()));
    return b;
  }
  Block b{id, Encoding::kFixed64, col.size()};
  for (const std::uint64_t v : bits) {
    for (int i = 0; i < 8; ++i) b.payload.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  return b;
}

}  // namespace

void SegmentWriter::add(const wire::ApReport& report) {
  // Raw-wire baseline for the compression ratio: what this report costs in
  // the row-oriented tunnel encoding. Thread-local scratch, same pattern as
  // backend::frame_report.
  thread_local wire::Encoder encoder;
  wire::encode_report_into(report, encoder);
  raw_wire_bytes_ += encoder.size();

  if (distinct_aps_.empty() || distinct_aps_.back() != report.ap_id) {
    distinct_aps_.push_back(report.ap_id);
  }
  ap_ids_.push_back(report.ap_id);
  timestamps_.push_back(report.timestamp_us);
  firmware_.push_back(report.firmware);
  n_usage_.push_back(report.usage.size());
  n_util_.push_back(report.utilization.size());
  n_nbr_.push_back(report.neighbors.size());
  n_link_.push_back(report.links.size());
  n_client_.push_back(report.clients.size());
  mesh_hops_.push_back(report.mesh_hops);
  mesh_relay_us_.push_back(report.mesh_relay_us);
  if (report.mesh_hops != 0) any_mesh_ = true;
  for (const auto& u : report.usage) {
    usage_client_.push_back(u.client.to_u64());
    usage_app_.push_back(u.app_id);
    usage_tx_.push_back(u.tx_bytes);
    usage_rx_.push_back(u.rx_bytes);
  }
  for (const auto& c : report.utilization) {
    util_band_.push_back(c.band);
    util_channel_.push_back(c.channel);
    util_cycle_.push_back(c.cycle_us);
    util_busy_.push_back(c.busy_us);
    util_rxf_.push_back(c.rx_frame_us);
    util_tx_.push_back(c.tx_us);
  }
  for (const auto& n : report.neighbors) {
    nbr_bssid_.push_back(n.bssid.to_u64());
    nbr_band_.push_back(n.band);
    nbr_channel_.push_back(n.channel);
    nbr_rssi_.push_back(n.rssi_dbm);
    nbr_flags_.push_back(static_cast<std::uint64_t>(n.is_hotspot ? 1 : 0) |
                         static_cast<std::uint64_t>(n.is_same_fleet ? 2 : 0));
  }
  for (const auto& l : report.links) {
    link_from_.push_back(l.from_ap);
    link_band_.push_back(l.band);
    link_channel_.push_back(l.channel);
    link_expected_.push_back(l.probes_expected);
    link_received_.push_back(l.probes_received);
  }
  for (const auto& c : report.clients) {
    client_mac_.push_back(c.client.to_u64());
    client_caps_.push_back(c.capability_bits);
    client_band_.push_back(c.band);
    client_rssi_.push_back(c.rssi_dbm);
    client_os_.push_back(c.os_id);
  }
}

std::vector<std::uint8_t> SegmentWriter::seal() {
  // Segment-wide MAC dictionary: client and BSSID MACs are the heaviest
  // repeated values on this wire (7-8 varint bytes each, repeated per row);
  // sorted + delta coded they compress to a few bytes per distinct device,
  // and every reference becomes a small index.
  std::vector<std::uint64_t> dict;
  dict.reserve(usage_client_.size() + nbr_bssid_.size() + client_mac_.size());
  dict.insert(dict.end(), usage_client_.begin(), usage_client_.end());
  dict.insert(dict.end(), nbr_bssid_.begin(), nbr_bssid_.end());
  dict.insert(dict.end(), client_mac_.begin(), client_mac_.end());
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  const auto index_of = [&dict](std::uint64_t mac) {
    return static_cast<std::uint64_t>(
        std::lower_bound(dict.begin(), dict.end(), mac) - dict.begin());
  };
  for (auto& v : usage_client_) v = index_of(v);
  for (auto& v : nbr_bssid_) v = index_of(v);
  for (auto& v : client_mac_) v = index_of(v);
  std::vector<std::int64_t> dict_signed(dict.begin(), dict.end());

  std::vector<std::int64_t> ap_signed(ap_ids_.begin(), ap_ids_.end());
  std::vector<Block> blocks;
  const auto emit = [&blocks](Block b) {
    if (b.rows > 0) blocks.push_back(std::move(b));
  };
  emit(delta_block(ColumnId::kApId, ap_signed));
  emit(delta_block(ColumnId::kTimestamp, timestamps_));
  emit(best_u64_block(ColumnId::kFirmware, firmware_));
  emit(best_u64_block(ColumnId::kUsageCount, n_usage_));
  emit(best_u64_block(ColumnId::kUtilCount, n_util_));
  emit(best_u64_block(ColumnId::kNeighborCount, n_nbr_));
  emit(best_u64_block(ColumnId::kLinkCount, n_link_));
  emit(best_u64_block(ColumnId::kClientCount, n_client_));
  emit(delta_block(ColumnId::kMacDict, dict_signed));
  emit(best_u64_block(ColumnId::kUsageClient, usage_client_));
  emit(best_u64_block(ColumnId::kUsageApp, usage_app_));
  emit(best_u64_block(ColumnId::kUsageTx, usage_tx_));
  emit(best_u64_block(ColumnId::kUsageRx, usage_rx_));
  emit(best_u64_block(ColumnId::kUtilBand, util_band_));
  emit(delta_block(ColumnId::kUtilChannel, util_channel_));
  emit(best_u64_block(ColumnId::kUtilCycle, util_cycle_));
  emit(best_u64_block(ColumnId::kUtilBusy, util_busy_));
  emit(best_u64_block(ColumnId::kUtilRxFrame, util_rxf_));
  emit(best_u64_block(ColumnId::kUtilTx, util_tx_));
  emit(best_u64_block(ColumnId::kNbrBssid, nbr_bssid_));
  emit(best_u64_block(ColumnId::kNbrBand, nbr_band_));
  emit(delta_block(ColumnId::kNbrChannel, nbr_channel_));
  emit(f64_block(ColumnId::kNbrRssi, nbr_rssi_));
  emit(best_u64_block(ColumnId::kNbrFlags, nbr_flags_));
  emit(delta_block(ColumnId::kLinkFrom, link_from_));
  emit(best_u64_block(ColumnId::kLinkBand, link_band_));
  emit(delta_block(ColumnId::kLinkChannel, link_channel_));
  emit(best_u64_block(ColumnId::kLinkExpected, link_expected_));
  emit(best_u64_block(ColumnId::kLinkReceived, link_received_));
  emit(best_u64_block(ColumnId::kClientMac, client_mac_));
  emit(best_u64_block(ColumnId::kClientCaps, client_caps_));
  emit(best_u64_block(ColumnId::kClientBand, client_band_));
  emit(f64_block(ColumnId::kClientRssi, client_rssi_));
  emit(best_u64_block(ColumnId::kClientOs, client_os_));
  if (any_mesh_) {
    emit(best_u64_block(ColumnId::kMeshHops, mesh_hops_));
    emit(best_u64_block(ColumnId::kMeshRelayUs, mesh_relay_us_));
  }

  std::vector<std::uint8_t> out;
  out.reserve(64);
  for (const std::uint8_t m : kMagic) out.push_back(m);
  put_u32le(out, kFormatVersion);
  put_u32le(out, network_id_);
  put_u32le(out, batch_seq_);
  wire::put_varint(out, ap_ids_.size());
  wire::put_varint(out, distinct_aps_.size());
  wire::put_varint(out, raw_wire_bytes_);
  wire::put_varint(out, blocks.size());
  for (const Block& b : blocks) append_block(out, b);
  put_u32le(out, crc32({out.data() + kMagic.size(), out.size() - kMagic.size()}));
  return out;
}

// --- reader ----------------------------------------------------------------

namespace {

/// Bounds-checked walk state over a segment's bytes.
struct Walk {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  [[nodiscard]] std::size_t remaining() const { return bytes.size() - pos; }
  [[nodiscard]] bool varint(std::uint64_t& out) {
    const auto r = wire::get_varint(bytes.subspan(pos));
    if (!r) return false;
    out = r->value;
    pos += r->consumed;
    return true;
  }
};

Error walk_header(Walk& w, SegmentHeader& hdr) {
  if (w.bytes.size() < kMagic.size()) return {Status::kTruncated, "short segment"};
  if (!std::equal(kMagic.begin(), kMagic.end(), w.bytes.begin())) {
    return {Status::kBadMagic, "not a tsdb segment"};
  }
  if (w.bytes.size() < kHeaderFixedBytes + kTrailerBytes) {
    return {Status::kTruncated, "segment header truncated"};
  }
  const std::uint32_t version = read_u32le(w.bytes.data() + kMagic.size());
  if (version != kFormatVersion) {
    return {Status::kBadVersion,
            "segment version " + std::to_string(version) + ", expected " +
                std::to_string(kFormatVersion)};
  }
  hdr.network_id = read_u32le(w.bytes.data() + kMagic.size() + 4);
  hdr.batch_seq = read_u32le(w.bytes.data() + kMagic.size() + 8);
  w.pos = kHeaderFixedBytes;
  if (!w.varint(hdr.n_reports) || !w.varint(hdr.n_aps) ||
      !w.varint(hdr.raw_wire_bytes) || !w.varint(hdr.n_blocks)) {
    return {Status::kTruncated, "segment header varints truncated"};
  }
  // Plausibility gates before any loop trusts these counts: a report or a
  // block costs bytes, so a count beyond the bytes present is a lie.
  if (hdr.n_reports > w.bytes.size() || hdr.n_aps > hdr.n_reports ||
      hdr.n_blocks > w.bytes.size()) {
    return {Status::kBadCount, "segment header counts exceed segment size"};
  }
  // raw_wire_bytes is load-bearing downstream (row counts and per-report
  // child counts are bounded against it), so it must itself be plausible.
  // Division form: bytes.size() * kMaxRawExpansion could wrap.
  if (hdr.raw_wire_bytes / kMaxRawExpansion > w.bytes.size()) {
    return {Status::kBadCount, "segment header raw_wire_bytes implausible"};
  }
  return {};
}

struct RawBlock {
  ColumnId id;
  Encoding encoding;
  std::uint64_t rows = 0;
  std::int64_t min = 0, max = 0;
  std::span<const std::uint8_t> payload;
};

/// Reads one block frame. `check_crc` is skipped on the summary-only paths
/// (time_bounds), which never decode payload bytes.
Error walk_block(Walk& w, RawBlock& b, bool check_crc) {
  if (w.remaining() < 2 + kTrailerBytes) return {Status::kTruncated, "block header truncated"};
  b.id = static_cast<ColumnId>(w.bytes[w.pos]);
  b.encoding = static_cast<Encoding>(w.bytes[w.pos + 1]);
  w.pos += 2;
  std::uint64_t zmin = 0, zmax = 0, len = 0;
  if (!w.varint(b.rows) || !w.varint(zmin) || !w.varint(zmax) || !w.varint(len)) {
    return {Status::kTruncated, "block header varints truncated"};
  }
  b.min = wire::zigzag_decode(zmin);
  b.max = wire::zigzag_decode(zmax);
  // Overflow-safe: a crafted len near 2^64 would wrap `len + 4 + trailer`
  // and sail past a `remaining() < sum` check into an out-of-bounds subspan.
  if (len > w.remaining() || w.remaining() - len < 4 + kTrailerBytes) {
    return {Status::kTruncated, "block payload truncated"};
  }
  b.payload = w.bytes.subspan(w.pos, len);
  w.pos += len;
  const std::uint32_t stored_crc = read_u32le(w.bytes.data() + w.pos);
  w.pos += 4;
  if (check_crc && stored_crc != crc32(b.payload)) {
    return {Status::kBadCrc, "block payload failed its CRC"};
  }
  return {};
}

struct Parsed {
  SegmentHeader hdr;
  std::map<ColumnId, std::vector<std::uint64_t>> ints;
  std::map<ColumnId, std::vector<double>> reals;

  [[nodiscard]] const std::vector<std::uint64_t>& col(ColumnId id) const {
    static const std::vector<std::uint64_t> empty;
    const auto it = ints.find(id);
    return it == ints.end() ? empty : it->second;
  }
  [[nodiscard]] const std::vector<double>& fcol(ColumnId id) const {
    static const std::vector<double> empty;
    const auto it = reals.find(id);
    return it == reals.end() ? empty : it->second;
  }
};

/// Consumes the rest of `w` as a fixed-width packed index stream. Rejects
/// wrong stream length, out-of-range indices (the width can address values
/// past the dictionary end), and nonzero padding bits.
Error unpack_indices(Walk& w, std::uint64_t rows, std::size_t dict_size,
                     std::vector<std::uint64_t>& out) {
  const unsigned width = index_bits(dict_size);
  // Overflow-safe: rows*width near 2^64 would wrap `need` down to a value
  // an attacker can match with a tiny (even empty) stream.
  if (width > 0 &&
      rows > (std::numeric_limits<std::uint64_t>::max() - 7) / width) {
    return {Status::kBadCount, "packed index row count overflows"};
  }
  const std::uint64_t need = width == 0 ? 0 : (rows * width + 7) / 8;
  if (w.remaining() != need) {
    return {Status::kBadCount, "packed index stream length mismatch"};
  }
  out.reserve(rows);
  std::uint64_t acc = 0;
  unsigned nbits = 0;
  const std::uint64_t mask = width == 0 ? 0 : (~std::uint64_t{0} >> (64 - width));
  for (std::uint64_t i = 0; i < rows; ++i) {
    while (nbits < width) {
      acc |= static_cast<std::uint64_t>(w.bytes[w.pos++]) << nbits;
      nbits += 8;
    }
    const std::uint64_t idx = acc & mask;
    if (idx >= dict_size) return {Status::kMalformed, "dict index out of range"};
    acc >>= width;
    nbits -= width;
    out.push_back(idx);
  }
  if (w.remaining() != 0) return {Status::kBadCount, "packed index trailing bytes"};
  if (acc != 0) return {Status::kMalformed, "nonzero padding in packed indices"};
  return {};
}

Error decode_block(const RawBlock& b, Parsed& out) {
  if (out.ints.count(b.id) != 0 || out.reals.count(b.id) != 0) {
    return {Status::kMalformed, "duplicate column"};
  }
  // Every row costs at least one byte in the row-oriented wire encoding the
  // header's raw_wire_bytes records (itself bounded in walk_header), so a
  // larger row count is a lie. Gating here — before any reserve() — also
  // covers the zero-width dict case, where a constant column's empty index
  // stream puts no payload-derived bound on rows.
  if (b.rows > out.hdr.raw_wire_bytes) {
    return {Status::kBadCount, "block row count exceeds raw wire size"};
  }
  std::int64_t seen_min = 0, seen_max = 0;
  bool any = false;
  const auto track = [&](std::int64_t v) {
    if (!any) {
      seen_min = seen_max = v;
      any = true;
    } else {
      seen_min = std::min(seen_min, v);
      seen_max = std::max(seen_max, v);
    }
  };
  switch (b.encoding) {
    case Encoding::kVarint: {
      if (b.rows > b.payload.size()) {
        return {Status::kBadCount, "varint column rows exceed payload"};
      }
      std::vector<std::uint64_t> col;
      col.reserve(b.rows);
      Walk w{b.payload};
      for (std::uint64_t i = 0; i < b.rows; ++i) {
        std::uint64_t v = 0;
        if (!w.varint(v)) return {Status::kMalformed, "varint column truncated row"};
        track(static_cast<std::int64_t>(v));
        col.push_back(v);
      }
      if (w.remaining() != 0) return {Status::kBadCount, "varint column trailing bytes"};
      out.ints.emplace(b.id, std::move(col));
      break;
    }
    case Encoding::kDeltaZigzag: {
      if (b.rows > b.payload.size()) {
        return {Status::kBadCount, "delta column rows exceed payload"};
      }
      std::vector<std::uint64_t> col;
      col.reserve(b.rows);
      Walk w{b.payload};
      std::int64_t prev = 0;
      for (std::uint64_t i = 0; i < b.rows; ++i) {
        std::uint64_t z = 0;
        if (!w.varint(z)) return {Status::kMalformed, "delta column truncated row"};
        prev += wire::zigzag_decode(z);
        track(prev);
        col.push_back(static_cast<std::uint64_t>(prev));
      }
      if (w.remaining() != 0) return {Status::kBadCount, "delta column trailing bytes"};
      out.ints.emplace(b.id, std::move(col));
      break;
    }
    case Encoding::kDictVarint: {
      Walk w{b.payload};
      std::uint64_t n_dict = 0;
      if (!w.varint(n_dict)) return {Status::kMalformed, "u64 dict truncated"};
      if (n_dict > w.remaining()) {
        return {Status::kBadCount, "u64 dict size exceeds payload"};
      }
      std::vector<std::uint64_t> dict;
      dict.reserve(n_dict);
      std::uint64_t prev = 0;
      for (std::uint64_t i = 0; i < n_dict; ++i) {
        std::uint64_t z = 0;
        if (!w.varint(z)) return {Status::kMalformed, "u64 dict truncated entry"};
        const std::uint64_t v = prev + static_cast<std::uint64_t>(wire::zigzag_decode(z));
        // The writer emits a strictly ascending dictionary; anything else is
        // tampering (and would break the index binary-search contract).
        if (i > 0 && v <= prev) return {Status::kMalformed, "u64 dict not ascending"};
        dict.push_back(v);
        prev = v;
      }
      std::vector<std::uint64_t> indices;
      if (auto err = unpack_indices(w, b.rows, dict.size(), indices)) return err;
      std::vector<std::uint64_t> col;
      col.reserve(b.rows);
      for (const std::uint64_t idx : indices) {
        track(static_cast<std::int64_t>(dict[idx]));
        col.push_back(dict[idx]);
      }
      out.ints.emplace(b.id, std::move(col));
      break;
    }
    case Encoding::kFixed64: {
      // Division form: rows * 8 wraps for crafted rows >= 2^61, letting an
      // empty payload pass an exact product comparison.
      if (b.payload.size() % 8 != 0 || b.rows != b.payload.size() / 8) {
        return {Status::kBadCount, "fixed64 column size mismatch"};
      }
      std::vector<double> col;
      col.reserve(b.rows);
      for (std::uint64_t i = 0; i < b.rows; ++i) {
        std::uint64_t bits = 0;
        for (int j = 7; j >= 0; --j) bits = (bits << 8) | b.payload[i * 8 + j];
        col.push_back(bits_f64(bits));
      }
      any = true;  // no integer summary for real columns
      seen_min = b.min;
      seen_max = b.max;
      out.reals.emplace(b.id, std::move(col));
      break;
    }
    case Encoding::kDictF64: {
      Walk w{b.payload};
      std::uint64_t n_dict = 0;
      if (!w.varint(n_dict)) return {Status::kMalformed, "f64 dict truncated"};
      if (n_dict > kMaxF64Dict || n_dict > w.remaining()) {
        return {Status::kBadCount, "f64 dict size exceeds payload"};
      }
      std::vector<double> dict;
      dict.reserve(n_dict);
      std::uint64_t prev = 0;
      for (std::uint64_t i = 0; i < n_dict; ++i) {
        std::uint64_t z = 0;
        if (!w.varint(z)) return {Status::kMalformed, "f64 dict truncated entry"};
        const std::uint64_t v = prev + static_cast<std::uint64_t>(wire::zigzag_decode(z));
        if (i > 0 && v <= prev) return {Status::kMalformed, "f64 dict not ascending"};
        dict.push_back(bits_f64(v));
        prev = v;
      }
      std::vector<std::uint64_t> indices;
      if (auto err = unpack_indices(w, b.rows, dict.size(), indices)) return err;
      std::vector<double> col;
      col.reserve(b.rows);
      for (const std::uint64_t idx : indices) col.push_back(dict[idx]);
      any = true;
      seen_min = b.min;
      seen_max = b.max;
      out.reals.emplace(b.id, std::move(col));
      break;
    }
    default:
      return {Status::kMalformed, "unknown column encoding"};
  }
  // The min/max summary is load-bearing (time pruning reads it without
  // decoding), so a summary that disagrees with the rows is tampering, not
  // a tolerable cosmetic defect.
  if (out.ints.count(b.id) != 0 && any && (seen_min != b.min || seen_max != b.max)) {
    return {Status::kMalformed, "block summary disagrees with rows"};
  }
  return {};
}

Error cross_check(const Parsed& p) {
  const SegmentHeader& hdr = p.hdr;
  const auto require_rows = [&](ColumnId id, std::uint64_t rows, const char* what) -> Error {
    const std::size_t have =
        p.ints.count(id) != 0 ? p.ints.at(id).size() : p.fcol(id).size();
    if (have != rows) {
      return {Status::kBadCount, std::string(what) + ": expected " +
                                     std::to_string(rows) + " rows, found " +
                                     std::to_string(have)};
    }
    return {};
  };
  for (const auto& [id, what] :
       {std::pair{ColumnId::kApId, "ap column"},
        std::pair{ColumnId::kTimestamp, "timestamp column"},
        std::pair{ColumnId::kFirmware, "firmware column"},
        std::pair{ColumnId::kUsageCount, "usage count column"},
        std::pair{ColumnId::kUtilCount, "util count column"},
        std::pair{ColumnId::kNeighborCount, "neighbor count column"},
        std::pair{ColumnId::kLinkCount, "link count column"},
        std::pair{ColumnId::kClientCount, "client count column"}}) {
    if (auto err = require_rows(id, hdr.n_reports, what)) return err;
  }
  const auto checked_sum = [&](ColumnId id, std::uint64_t& out) -> Error {
    out = 0;
    for (const std::uint64_t v : p.col(id)) {
      // Hard per-count cap, independent of any header field: no report
      // carries anywhere near this many child rows, and rejecting early
      // keeps the sum from wrapping to a value matching absent columns.
      if (v > kMaxChildRowsPerReport) {
        return {Status::kBadCount, "implausible per-report child count"};
      }
      if (out > std::numeric_limits<std::uint64_t>::max() - v) {
        return {Status::kBadCount, "child row total overflows"};
      }
      out += v;
    }
    return {};
  };
  const struct {
    ColumnId count;
    std::initializer_list<ColumnId> children;
    const char* what;
  } groups[] = {
      {ColumnId::kUsageCount,
       {ColumnId::kUsageClient, ColumnId::kUsageApp, ColumnId::kUsageTx,
        ColumnId::kUsageRx},
       "usage"},
      {ColumnId::kUtilCount,
       {ColumnId::kUtilBand, ColumnId::kUtilChannel, ColumnId::kUtilCycle,
        ColumnId::kUtilBusy, ColumnId::kUtilRxFrame, ColumnId::kUtilTx},
       "utilization"},
      {ColumnId::kNeighborCount,
       {ColumnId::kNbrBssid, ColumnId::kNbrBand, ColumnId::kNbrChannel,
        ColumnId::kNbrRssi, ColumnId::kNbrFlags},
       "neighbor"},
      {ColumnId::kLinkCount,
       {ColumnId::kLinkFrom, ColumnId::kLinkBand, ColumnId::kLinkChannel,
        ColumnId::kLinkExpected, ColumnId::kLinkReceived},
       "link"},
      {ColumnId::kClientCount,
       {ColumnId::kClientMac, ColumnId::kClientCaps, ColumnId::kClientBand,
        ColumnId::kClientRssi, ColumnId::kClientOs},
       "client"},
  };
  for (const auto& g : groups) {
    std::uint64_t total = 0;
    if (auto err = checked_sum(g.count, total)) return err;
    for (const ColumnId child : g.children) {
      if (auto err = require_rows(child, total, g.what)) return err;
    }
  }
  // Mesh columns are optional (absent for non-mesh segments) but must be
  // per-report-shaped and travel as a pair when present — a lone column is
  // tampering, and resume byte-identity depends on both surviving.
  {
    const bool has_hops = p.ints.count(ColumnId::kMeshHops) != 0;
    const bool has_relay = p.ints.count(ColumnId::kMeshRelayUs) != 0;
    if (has_hops != has_relay) {
      return {Status::kBadCount, "mesh columns must both be present or absent"};
    }
    if (has_hops) {
      if (auto err = require_rows(ColumnId::kMeshHops, hdr.n_reports, "mesh hops column")) {
        return err;
      }
      if (auto err = require_rows(ColumnId::kMeshRelayUs, hdr.n_reports,
                                  "mesh relay column")) {
        return err;
      }
    }
  }
  // Dictionary references must resolve.
  const std::size_t dict_size = p.col(ColumnId::kMacDict).size();
  for (const ColumnId id :
       {ColumnId::kUsageClient, ColumnId::kNbrBssid, ColumnId::kClientMac}) {
    for (const std::uint64_t idx : p.col(id)) {
      if (idx >= dict_size) return {Status::kMalformed, "MAC dict index out of range"};
    }
  }
  // Distinct-AP header field vs. the AP column itself.
  std::uint64_t distinct = 0;
  const auto& aps = p.col(ColumnId::kApId);
  for (std::size_t i = 0; i < aps.size(); ++i) {
    if (i == 0 || aps[i] != aps[i - 1]) ++distinct;
  }
  if (distinct != hdr.n_aps) {
    return {Status::kBadCount, "header n_aps disagrees with the AP column"};
  }
  return {};
}

/// Last line of the no-crash contract: row counts are bounded against the
/// segment's own claims above, but a large crafted segment can still make
/// bounded reserves exceed what the host will grant. That must surface as
/// a typed error, not an uncaught bad_alloc/length_error.
template <typename Fn>
Error guard_alloc(Fn&& fn) {
  try {
    return fn();
  } catch (const std::bad_alloc&) {
    return {Status::kBadCount, "segment decode exhausted memory"};
  } catch (const std::length_error&) {
    return {Status::kBadCount, "segment decode exhausted memory"};
  }
}

Error parse(std::span<const std::uint8_t> bytes, Parsed& out) {
  Walk w{bytes};
  if (auto err = walk_header(w, out.hdr)) return err;
  for (std::uint64_t i = 0; i < out.hdr.n_blocks; ++i) {
    RawBlock b;
    if (auto err = walk_block(w, b, /*check_crc=*/true)) return err;
    if (auto err = decode_block(b, out)) return err;
  }
  if (w.remaining() > kTrailerBytes) {
    return {Status::kMalformed, "trailing bytes after final block"};
  }
  if (w.remaining() < kTrailerBytes) return {Status::kTruncated, "missing segment CRC"};
  const std::uint32_t stored = read_u32le(bytes.data() + w.pos);
  const std::uint32_t computed =
      crc32({bytes.data() + kMagic.size(), bytes.size() - kMagic.size() - kTrailerBytes});
  if (stored != computed) return {Status::kBadCrc, "segment trailer failed its CRC"};
  return cross_check(out);
}

}  // namespace

Error SegmentReader::read_header(std::span<const std::uint8_t> bytes, SegmentHeader& out) {
  Walk w{bytes};
  return walk_header(w, out);
}

Error SegmentReader::validate(std::span<const std::uint8_t> bytes) {
  Parsed p;
  return guard_alloc([&] { return parse(bytes, p); });
}

Error SegmentReader::for_each(std::span<const std::uint8_t> bytes,
                              const std::function<void(wire::ApReport&&)>& fn) {
  Parsed p;
  if (auto err = guard_alloc([&] { return parse(bytes, p); })) return err;
  const auto& dict = p.col(ColumnId::kMacDict);
  const auto& aps = p.col(ColumnId::kApId);
  const auto& ts = p.col(ColumnId::kTimestamp);
  const auto& fw = p.col(ColumnId::kFirmware);
  // Optional mesh columns: cross_check guarantees n_reports rows when present.
  const auto& mesh_hops = p.col(ColumnId::kMeshHops);
  const auto& mesh_relay = p.col(ColumnId::kMeshRelayUs);
  std::size_t u = 0, c = 0, n = 0, l = 0, s = 0;  // child cursors
  for (std::uint64_t r = 0; r < p.hdr.n_reports; ++r) {
    wire::ApReport report;
    report.ap_id = static_cast<std::uint32_t>(aps[r]);
    report.timestamp_us = static_cast<std::int64_t>(ts[r]);
    report.firmware = static_cast<std::uint32_t>(fw[r]);
    if (!mesh_hops.empty()) {
      report.mesh_hops = static_cast<std::uint32_t>(mesh_hops[r]);
      report.mesh_relay_us = mesh_relay[r];
    }
    const std::uint64_t nu = p.col(ColumnId::kUsageCount)[r];
    report.usage.reserve(nu);
    for (std::uint64_t i = 0; i < nu; ++i, ++u) {
      wire::ClientUsage row;
      row.client = MacAddress::from_u64(dict[p.col(ColumnId::kUsageClient)[u]]);
      row.app_id = static_cast<std::uint32_t>(p.col(ColumnId::kUsageApp)[u]);
      row.tx_bytes = p.col(ColumnId::kUsageTx)[u];
      row.rx_bytes = p.col(ColumnId::kUsageRx)[u];
      report.usage.push_back(row);
    }
    const std::uint64_t nc = p.col(ColumnId::kUtilCount)[r];
    report.utilization.reserve(nc);
    for (std::uint64_t i = 0; i < nc; ++i, ++c) {
      wire::ChannelUtilization row;
      row.band = static_cast<std::uint8_t>(p.col(ColumnId::kUtilBand)[c]);
      row.channel = static_cast<std::int32_t>(p.col(ColumnId::kUtilChannel)[c]);
      row.cycle_us = p.col(ColumnId::kUtilCycle)[c];
      row.busy_us = p.col(ColumnId::kUtilBusy)[c];
      row.rx_frame_us = p.col(ColumnId::kUtilRxFrame)[c];
      row.tx_us = p.col(ColumnId::kUtilTx)[c];
      report.utilization.push_back(row);
    }
    const std::uint64_t nn = p.col(ColumnId::kNeighborCount)[r];
    report.neighbors.reserve(nn);
    for (std::uint64_t i = 0; i < nn; ++i, ++n) {
      wire::NeighborBss row;
      row.bssid = MacAddress::from_u64(dict[p.col(ColumnId::kNbrBssid)[n]]);
      row.band = static_cast<std::uint8_t>(p.col(ColumnId::kNbrBand)[n]);
      row.channel = static_cast<std::int32_t>(p.col(ColumnId::kNbrChannel)[n]);
      row.rssi_dbm = p.fcol(ColumnId::kNbrRssi)[n];
      const std::uint64_t flags = p.col(ColumnId::kNbrFlags)[n];
      row.is_hotspot = (flags & 1) != 0;
      row.is_same_fleet = (flags & 2) != 0;
      report.neighbors.push_back(row);
    }
    const std::uint64_t nl = p.col(ColumnId::kLinkCount)[r];
    report.links.reserve(nl);
    for (std::uint64_t i = 0; i < nl; ++i, ++l) {
      wire::LinkProbeWindow row;
      row.from_ap = static_cast<std::uint32_t>(p.col(ColumnId::kLinkFrom)[l]);
      row.band = static_cast<std::uint8_t>(p.col(ColumnId::kLinkBand)[l]);
      row.channel = static_cast<std::int32_t>(p.col(ColumnId::kLinkChannel)[l]);
      row.probes_expected = static_cast<std::uint32_t>(p.col(ColumnId::kLinkExpected)[l]);
      row.probes_received = static_cast<std::uint32_t>(p.col(ColumnId::kLinkReceived)[l]);
      report.links.push_back(row);
    }
    const std::uint64_t ns = p.col(ColumnId::kClientCount)[r];
    report.clients.reserve(ns);
    for (std::uint64_t i = 0; i < ns; ++i, ++s) {
      wire::ClientSnapshot row;
      row.client = MacAddress::from_u64(dict[p.col(ColumnId::kClientMac)[s]]);
      row.capability_bits = static_cast<std::uint32_t>(p.col(ColumnId::kClientCaps)[s]);
      row.band = static_cast<std::uint8_t>(p.col(ColumnId::kClientBand)[s]);
      row.rssi_dbm = p.fcol(ColumnId::kClientRssi)[s];
      row.os_id = static_cast<std::uint8_t>(p.col(ColumnId::kClientOs)[s]);
      report.clients.push_back(row);
    }
    fn(std::move(report));
  }
  return {};
}

Error SegmentReader::time_bounds(std::span<const std::uint8_t> bytes, std::int64_t& lo,
                                 std::int64_t& hi) {
  Walk w{bytes};
  SegmentHeader hdr;
  if (auto err = walk_header(w, hdr)) return err;
  for (std::uint64_t i = 0; i < hdr.n_blocks; ++i) {
    RawBlock b;
    if (auto err = walk_block(w, b, /*check_crc=*/false)) return err;
    if (b.id == ColumnId::kTimestamp) {
      lo = b.min;
      hi = b.max;
      return {};
    }
  }
  if (hdr.n_reports > 0) return {Status::kBadCount, "timestamp column missing"};
  return {};
}

Error SegmentReader::ap_ids(std::span<const std::uint8_t> bytes,
                            std::vector<std::uint32_t>& out) {
  Walk w{bytes};
  SegmentHeader hdr;
  if (auto err = walk_header(w, hdr)) return err;
  for (std::uint64_t i = 0; i < hdr.n_blocks; ++i) {
    RawBlock b;
    if (auto err = walk_block(w, b, /*check_crc=*/true)) return err;
    if (b.id != ColumnId::kApId) continue;
    Parsed p;
    p.hdr = hdr;
    if (auto err = guard_alloc([&] { return decode_block(b, p); })) return err;
    out.clear();
    for (const std::uint64_t v : p.col(ColumnId::kApId)) {
      if (out.empty() || out.back() != static_cast<std::uint32_t>(v)) {
        out.push_back(static_cast<std::uint32_t>(v));
      }
    }
    return {};
  }
  if (hdr.n_reports > 0) return {Status::kBadCount, "AP column missing"};
  out.clear();
  return {};
}

}  // namespace wlm::tsdb
