// Columnar segment writer/reader (format in tsdb/format.hpp).
//
// SegmentWriter shreds wire::ApReports — appended in canonical order
// (ascending AP id, per-AP arrival order) — into per-field column vectors
// and seals them into one immutable, CRC-guarded byte block. SegmentReader
// is the adversarial inverse: it validates structure, CRCs, and count
// consistency before reassembling a single report, and surfaces every
// failure as a typed tsdb::Error.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "tsdb/format.hpp"
#include "wire/messages.hpp"

namespace wlm::tsdb {

class SegmentWriter {
 public:
  SegmentWriter(std::uint32_t network_id, std::uint32_t batch_seq)
      : network_id_(network_id), batch_seq_(batch_seq) {}

  /// Appends one report's fields to the column buffers. Callers append in
  /// canonical order; the writer does not reorder.
  void add(const wire::ApReport& report);

  [[nodiscard]] std::size_t report_count() const { return ap_ids_.size(); }
  /// Total bytes the row-oriented wire encoding of the appended reports
  /// takes — the compression-ratio baseline, carried in the header.
  [[nodiscard]] std::uint64_t raw_wire_bytes() const { return raw_wire_bytes_; }
  /// Distinct AP ids appended so far, ascending (canonical input order).
  [[nodiscard]] const std::vector<std::uint32_t>& ap_ids() const { return distinct_aps_; }

  /// Seals the columns into one segment byte block. The writer is spent
  /// afterwards.
  [[nodiscard]] std::vector<std::uint8_t> seal();

 private:
  std::uint32_t network_id_;
  std::uint32_t batch_seq_;
  std::uint64_t raw_wire_bytes_ = 0;
  std::vector<std::uint32_t> distinct_aps_;

  // Per-report columns.
  std::vector<std::uint64_t> ap_ids_, firmware_;
  std::vector<std::int64_t> timestamps_;
  std::vector<std::uint64_t> n_usage_, n_util_, n_nbr_, n_link_, n_client_;
  // Mesh backhaul columns ride along but seal only when any report relayed
  // (any_mesh_), keeping non-mesh segments byte-identical to the pre-mesh
  // format.
  std::vector<std::uint64_t> mesh_hops_, mesh_relay_us_;
  bool any_mesh_ = false;
  // Child-row columns (MACs raw here; dict-indexed at seal).
  std::vector<std::uint64_t> usage_client_, usage_app_, usage_tx_, usage_rx_;
  std::vector<std::uint64_t> util_band_, util_cycle_, util_busy_, util_rxf_, util_tx_;
  std::vector<std::int64_t> util_channel_;
  std::vector<std::uint64_t> nbr_bssid_, nbr_band_, nbr_flags_;
  std::vector<std::int64_t> nbr_channel_;
  std::vector<double> nbr_rssi_;
  std::vector<std::int64_t> link_from_, link_channel_;
  std::vector<std::uint64_t> link_band_, link_expected_, link_received_;
  std::vector<std::uint64_t> client_mac_, client_caps_, client_band_, client_os_;
  std::vector<double> client_rssi_;
};

/// Header fields every segment carries before its blocks.
struct SegmentHeader {
  std::uint32_t network_id = 0;
  std::uint32_t batch_seq = 0;
  std::uint64_t n_reports = 0;
  std::uint64_t n_aps = 0;
  std::uint64_t raw_wire_bytes = 0;
  std::uint64_t n_blocks = 0;
};

class SegmentReader {
 public:
  /// Parses and validates the fixed header (magic, version, counts) without
  /// touching blocks. Cheap; spill read-back uses it as a sanity gate.
  [[nodiscard]] static Error read_header(std::span<const std::uint8_t> bytes,
                                         SegmentHeader& out);

  /// Full structural validation: header, every block frame, every CRC, the
  /// segment trailer CRC, and cross-block count consistency — without
  /// assembling reports.
  [[nodiscard]] static Error validate(std::span<const std::uint8_t> bytes);

  /// Decodes every report in append order. Runs validate() first; on any
  /// error nothing is emitted.
  [[nodiscard]] static Error for_each(
      std::span<const std::uint8_t> bytes,
      const std::function<void(wire::ApReport&&)>& fn);

  /// Timestamp column min/max from the block summary, no payload decode.
  /// `lo`/`hi` untouched when the segment holds no reports.
  [[nodiscard]] static Error time_bounds(std::span<const std::uint8_t> bytes,
                                         std::int64_t& lo, std::int64_t& hi);

  /// Distinct AP ids in the segment, ascending.
  [[nodiscard]] static Error ap_ids(std::span<const std::uint8_t> bytes,
                                    std::vector<std::uint32_t>& out);
};

}  // namespace wlm::tsdb
