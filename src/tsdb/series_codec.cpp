#include "tsdb/series_codec.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "wire/varint.hpp"

namespace wlm::tsdb {

namespace {

constexpr std::size_t kMaxDict = 4096;

std::uint64_t f64_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double bits_f64(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

unsigned index_bits(std::size_t n) {
  return n <= 1 ? 0 : static_cast<unsigned>(std::bit_width(n - 1));
}

void put_fixed64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

bool get_fixed64(std::span<const std::uint8_t> bytes, std::size_t& pos, std::uint64_t& out) {
  if (bytes.size() - pos < 8) return false;
  out = 0;
  for (int i = 7; i >= 0; --i) out = (out << 8) | bytes[pos + static_cast<std::size_t>(i)];
  pos += 8;
  return true;
}

bool get_varint_at(std::span<const std::uint8_t> bytes, std::size_t& pos, std::uint64_t& out) {
  const auto r = wire::get_varint(bytes.subspan(pos));
  if (!r) return false;
  out = r->value;
  pos += r->consumed;
  return true;
}

}  // namespace

void encode_points(std::vector<std::uint8_t>& out, const std::vector<backend::Point>& points) {
  wire::put_varint(out, points.size());
  std::int64_t prev = 0;
  for (const auto& p : points) {
    wire::put_varint(out, wire::zigzag_encode(p.time.as_micros() - prev));
    prev = p.time.as_micros();
  }
  std::vector<std::uint64_t> bits;
  bits.reserve(points.size());
  for (const auto& p : points) bits.push_back(f64_bits(p.value));
  std::vector<std::uint64_t> dict = bits;
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  if (!points.empty() && dict.size() <= kMaxDict) {
    out.push_back(static_cast<std::uint8_t>(Encoding::kDictF64));
    wire::put_varint(out, dict.size());
    std::uint64_t dprev = 0;
    for (const std::uint64_t d : dict) {
      wire::put_varint(out, wire::zigzag_encode(static_cast<std::int64_t>(d - dprev)));
      dprev = d;
    }
    const unsigned width = index_bits(dict.size());
    std::uint64_t acc = 0;
    unsigned nbits = 0;
    for (const std::uint64_t v : bits) {
      const auto it = std::lower_bound(dict.begin(), dict.end(), v);
      acc |= static_cast<std::uint64_t>(it - dict.begin()) << nbits;
      nbits += width;
      while (nbits >= 8) {
        out.push_back(static_cast<std::uint8_t>(acc));
        acc >>= 8;
        nbits -= 8;
      }
    }
    if (nbits > 0) out.push_back(static_cast<std::uint8_t>(acc));
  } else {
    out.push_back(static_cast<std::uint8_t>(Encoding::kFixed64));
    for (const std::uint64_t v : bits) put_fixed64(out, v);
  }
}

bool decode_points(std::span<const std::uint8_t> bytes, std::size_t& pos,
                   std::vector<backend::Point>& out) {
  std::uint64_t n = 0;
  if (!get_varint_at(bytes, pos, n)) return false;
  // Every point costs at least one time byte; a count beyond the remaining
  // bytes is a lie and must not reach reserve().
  if (n > bytes.size() - pos) return false;
  std::vector<std::int64_t> times;
  times.reserve(n);
  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t z = 0;
    if (!get_varint_at(bytes, pos, z)) return false;
    prev += wire::zigzag_decode(z);
    times.push_back(prev);
  }
  out.clear();
  out.reserve(n);
  if (n == 0) return true;
  if (bytes.size() - pos < 1) return false;
  const auto encoding = static_cast<Encoding>(bytes[pos]);
  pos += 1;
  if (encoding == Encoding::kDictF64) {
    std::uint64_t n_dict = 0;
    if (!get_varint_at(bytes, pos, n_dict)) return false;
    if (n_dict > kMaxDict || n_dict > bytes.size() - pos) return false;
    std::vector<std::uint64_t> dict;
    dict.reserve(n_dict);
    std::uint64_t dprev = 0;
    for (std::uint64_t i = 0; i < n_dict; ++i) {
      std::uint64_t z = 0;
      if (!get_varint_at(bytes, pos, z)) return false;
      const std::uint64_t v = dprev + static_cast<std::uint64_t>(wire::zigzag_decode(z));
      if (i > 0 && v <= dprev) return false;
      dict.push_back(v);
      dprev = v;
    }
    const unsigned width = index_bits(dict.size());
    const std::uint64_t need = (n * width + 7) / 8;
    if (need > bytes.size() - pos) return false;
    std::uint64_t acc = 0;
    unsigned nbits = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      while (nbits < width) {
        acc |= static_cast<std::uint64_t>(bytes[pos++]) << nbits;
        nbits += 8;
      }
      const std::uint64_t mask = width == 0 ? 0 : (~std::uint64_t{0} >> (64 - width));
      const std::uint64_t idx = acc & mask;
      if (idx >= dict.size()) return false;
      acc >>= width;
      nbits -= width;
      out.push_back({SimTime::from_micros(times[i]), bits_f64(dict[idx])});
    }
    return true;
  }
  if (encoding == Encoding::kFixed64) {
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint64_t bits = 0;
      if (!get_fixed64(bytes, pos, bits)) return false;
      out.push_back({SimTime::from_micros(times[i]), bits_f64(bits)});
    }
    return true;
  }
  return false;
}

}  // namespace wlm::tsdb
