// Columnar point-vector codec for TimeSeriesStore serialization.
//
// The row codec spent ~17 bytes per point (varint micros + 8-byte double).
// Time-sorted points delta/zigzag-code their timestamps to 1-3 bytes, and
// telemetry values repeat heavily (counters, quantized utilizations), so a
// value dictionary usually replaces 8 bytes with a 1-2 byte index:
//
//   [varint n]
//   [varint zigzag(t[i] - t[i-1])]*   (t[-1] = 0)
//   [u8 encoding: kDictF64 | kFixed64]
//   kDictF64: [varint dict size][delta-coded sorted bit patterns]*
//             [ceil(log2(n))-bit packed indices, LSB-first]
//   kFixed64: [8B LE bit patterns]*
//
// Doubles travel as IEEE-754 bit patterns — exact round-trip, same contract
// as the wire format and the checkpoint container.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "backend/timeseries.hpp"
#include "tsdb/format.hpp"

namespace wlm::tsdb {

/// Appends the columnar encoding of `points` (must be time-sorted, as
/// TimeSeriesStore::for_each_series emits them) to `out`.
void encode_points(std::vector<std::uint8_t>& out, const std::vector<backend::Point>& points);

/// Decodes one point vector from the front of `bytes`, advancing `pos`.
/// False (with `pos` unspecified) on malformed input; never over-reads.
[[nodiscard]] bool decode_points(std::span<const std::uint8_t> bytes, std::size_t& pos,
                                 std::vector<backend::Point>& out);

}  // namespace wlm::tsdb
