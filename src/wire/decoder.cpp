#include "wire/decoder.hpp"

#include <cstring>

namespace wlm::wire {

double Field::as_double() const {
  double v = 0.0;
  std::uint64_t bits = varint;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::optional<Field> Decoder::next() {
  if (!ok_ || pos_ >= data_.size()) return std::nullopt;
  const auto tag = get_varint(data_.subspan(pos_));
  if (!tag) {
    ok_ = false;
    return std::nullopt;
  }
  pos_ += tag->consumed;
  Field f;
  f.number = static_cast<std::uint32_t>(tag->value >> 3);
  const auto wt = static_cast<std::uint8_t>(tag->value & 0x7);
  if (f.number == 0) {  // field numbers start at 1
    ok_ = false;
    return std::nullopt;
  }
  switch (wt) {
    case 0: {
      const auto v = get_varint(data_.subspan(pos_));
      if (!v) break;
      pos_ += v->consumed;
      f.type = WireType::kVarint;
      f.varint = v->value;
      return f;
    }
    case 1: {
      if (pos_ + 8 > data_.size()) break;
      std::uint64_t bits = 0;
      for (int i = 7; i >= 0; --i) bits = (bits << 8) | data_[pos_ + static_cast<std::size_t>(i)];
      pos_ += 8;
      f.type = WireType::kFixed64;
      f.varint = bits;
      return f;
    }
    case 2: {
      const auto len = get_varint(data_.subspan(pos_));
      if (!len) break;
      pos_ += len->consumed;
      if (pos_ + len->value > data_.size()) break;
      f.type = WireType::kLengthDelimited;
      f.payload = data_.subspan(pos_, len->value);
      pos_ += len->value;
      return f;
    }
    case 5: {
      if (pos_ + 4 > data_.size()) break;
      std::uint32_t bits = 0;
      for (int i = 3; i >= 0; --i) bits = (bits << 8) | data_[pos_ + static_cast<std::size_t>(i)];
      pos_ += 4;
      f.type = WireType::kFixed32;
      f.varint = bits;
      return f;
    }
    default:
      break;
  }
  ok_ = false;
  return std::nullopt;
}

}  // namespace wlm::wire
