// Streaming field decoder.
//
// Unknown fields are skippable, which is what lets the backend "handle
// schema changes and new software revisions without affecting the
// measurement data" (paper §2): old collectors skip fields added by newer
// firmware instead of failing.
//
// Header-only: next() runs once per field of every harvested report (tens
// of millions of calls per fleet run), so it must inline into the message
// parsers together with get_varint.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>

#include "wire/encoder.hpp"

namespace wlm::wire {

/// One decoded field header plus a view of its payload.
struct Field {
  std::uint32_t number = 0;
  WireType type = WireType::kVarint;
  std::uint64_t varint = 0;                // for kVarint / kFixed32 / kFixed64
  std::span<const std::uint8_t> payload;   // for kLengthDelimited

  [[nodiscard]] std::uint64_t as_uint() const { return varint; }
  [[nodiscard]] std::int64_t as_sint() const { return zigzag_decode(varint); }
  [[nodiscard]] bool as_bool() const { return varint != 0; }
  [[nodiscard]] double as_double() const {
    double v = 0.0;
    std::uint64_t bits = varint;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  [[nodiscard]] std::string as_string() const {
    return {reinterpret_cast<const char*>(payload.data()), payload.size()};
  }
};

/// Iterates the fields of one message. Malformed input flips the decoder
/// into an error state rather than throwing; callers check ok() at the end.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  /// Next field, or nullopt at end-of-message or on error.
  [[nodiscard]] std::optional<Field> next() {
    if (!ok_ || pos_ >= data_.size()) return std::nullopt;
    const auto tag = get_varint(data_.subspan(pos_));
    if (!tag) {
      ok_ = false;
      return std::nullopt;
    }
    pos_ += tag->consumed;
    Field f;
    f.number = static_cast<std::uint32_t>(tag->value >> 3);
    const auto wt = static_cast<std::uint8_t>(tag->value & 0x7);
    if (f.number == 0) {  // field numbers start at 1
      ok_ = false;
      return std::nullopt;
    }
    switch (wt) {
      case 0: {
        const auto v = get_varint(data_.subspan(pos_));
        if (!v) break;
        pos_ += v->consumed;
        f.type = WireType::kVarint;
        f.varint = v->value;
        return f;
      }
      case 1: {
        if (pos_ + 8 > data_.size()) break;
        std::uint64_t bits = 0;
        for (int i = 7; i >= 0; --i) bits = (bits << 8) | data_[pos_ + static_cast<std::size_t>(i)];
        pos_ += 8;
        f.type = WireType::kFixed64;
        f.varint = bits;
        return f;
      }
      case 2: {
        const auto len = get_varint(data_.subspan(pos_));
        if (!len) break;
        pos_ += len->consumed;
        if (pos_ + len->value > data_.size()) break;
        f.type = WireType::kLengthDelimited;
        f.payload = data_.subspan(pos_, len->value);
        pos_ += len->value;
        return f;
      }
      case 5: {
        if (pos_ + 4 > data_.size()) break;
        std::uint32_t bits = 0;
        for (int i = 3; i >= 0; --i) bits = (bits << 8) | data_[pos_ + static_cast<std::size_t>(i)];
        pos_ += 4;
        f.type = WireType::kFixed32;
        f.varint = bits;
        return f;
      }
      default:
        break;
    }
    ok_ = false;
    return std::nullopt;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool at_end() const { return pos_ >= data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace wlm::wire
