// Streaming field decoder.
//
// Unknown fields are skippable, which is what lets the backend "handle
// schema changes and new software revisions without affecting the
// measurement data" (paper §2): old collectors skip fields added by newer
// firmware instead of failing.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "wire/encoder.hpp"

namespace wlm::wire {

/// One decoded field header plus a view of its payload.
struct Field {
  std::uint32_t number = 0;
  WireType type = WireType::kVarint;
  std::uint64_t varint = 0;                // for kVarint / kFixed32 / kFixed64
  std::span<const std::uint8_t> payload;   // for kLengthDelimited

  [[nodiscard]] std::uint64_t as_uint() const { return varint; }
  [[nodiscard]] std::int64_t as_sint() const { return zigzag_decode(varint); }
  [[nodiscard]] bool as_bool() const { return varint != 0; }
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::string as_string() const {
    return {reinterpret_cast<const char*>(payload.data()), payload.size()};
  }
};

/// Iterates the fields of one message. Malformed input flips the decoder
/// into an error state rather than throwing; callers check ok() at the end.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  /// Next field, or nullopt at end-of-message or on error.
  [[nodiscard]] std::optional<Field> next();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool at_end() const { return pos_ >= data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace wlm::wire
