#include "wire/encoder.hpp"

#include <cstring>

namespace wlm::wire {

void Encoder::add_uint(std::uint32_t field, std::uint64_t v) {
  put_varint(buf_, make_tag(field, WireType::kVarint));
  put_varint(buf_, v);
}

void Encoder::add_sint(std::uint32_t field, std::int64_t v) {
  put_varint(buf_, make_tag(field, WireType::kVarint));
  put_varint(buf_, zigzag_encode(v));
}

void Encoder::add_bool(std::uint32_t field, bool v) { add_uint(field, v ? 1 : 0); }

void Encoder::add_double(std::uint32_t field, double v) {
  put_varint(buf_, make_tag(field, WireType::kFixed64));
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

void Encoder::add_string(std::uint32_t field, std::string_view v) {
  add_bytes(field, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(v.data()), v.size()));
}

void Encoder::add_bytes(std::uint32_t field, std::span<const std::uint8_t> v) {
  put_varint(buf_, make_tag(field, WireType::kLengthDelimited));
  put_varint(buf_, v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void Encoder::add_message(std::uint32_t field, const Encoder& child) {
  add_bytes(field, child.bytes());
}

}  // namespace wlm::wire
