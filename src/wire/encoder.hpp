// Tag-length-value message encoder (protobuf wire-format compatible layout:
// field tags are (field_number << 3) | wire_type).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "wire/varint.hpp"

namespace wlm::wire {

enum class WireType : std::uint8_t {
  kVarint = 0,
  kFixed64 = 1,
  kLengthDelimited = 2,
  kFixed32 = 5,
};

[[nodiscard]] constexpr std::uint64_t make_tag(std::uint32_t field, WireType type) {
  return (static_cast<std::uint64_t>(field) << 3) | static_cast<std::uint64_t>(type);
}

/// Append-only message builder. Nested messages are encoded by building the
/// child first and adding it as a length-delimited field.
class Encoder {
 public:
  void add_uint(std::uint32_t field, std::uint64_t v);
  /// ZigZag-encoded signed integer.
  void add_sint(std::uint32_t field, std::int64_t v);
  void add_bool(std::uint32_t field, bool v);
  void add_double(std::uint32_t field, double v);
  void add_string(std::uint32_t field, std::string_view v);
  void add_bytes(std::uint32_t field, std::span<const std::uint8_t> v);
  void add_message(std::uint32_t field, const Encoder& child);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] bool empty() const { return buf_.empty(); }

 private:
  std::vector<std::uint8_t> buf_;
};

}  // namespace wlm::wire
