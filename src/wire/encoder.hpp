// Tag-length-value message encoder (protobuf wire-format compatible layout:
// field tags are (field_number << 3) | wire_type).
//
// Header-only: every field of every report passes through these appenders,
// so they must inline into the message serializers.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

#include "wire/varint.hpp"

namespace wlm::wire {

enum class WireType : std::uint8_t {
  kVarint = 0,
  kFixed64 = 1,
  kLengthDelimited = 2,
  kFixed32 = 5,
};

[[nodiscard]] constexpr std::uint64_t make_tag(std::uint32_t field, WireType type) {
  return (static_cast<std::uint64_t>(field) << 3) | static_cast<std::uint64_t>(type);
}

/// Append-only message builder. Nested messages are encoded by building the
/// child first and adding it as a length-delimited field; hot serializers
/// reuse one child encoder via clear() so the scratch buffer's capacity
/// survives across messages instead of being reallocated per row.
class Encoder {
 public:
  void add_uint(std::uint32_t field, std::uint64_t v) {
    put_varint(buf_, make_tag(field, WireType::kVarint));
    put_varint(buf_, v);
  }
  /// ZigZag-encoded signed integer.
  void add_sint(std::uint32_t field, std::int64_t v) {
    put_varint(buf_, make_tag(field, WireType::kVarint));
    put_varint(buf_, zigzag_encode(v));
  }
  void add_bool(std::uint32_t field, bool v) { add_uint(field, v ? 1 : 0); }
  void add_double(std::uint32_t field, double v) {
    put_varint(buf_, make_tag(field, WireType::kFixed64));
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    // Little-endian fixed64: one resize + memcpy instead of 8 push_backs.
    std::uint8_t le[8];
    for (int i = 0; i < 8; ++i) le[i] = static_cast<std::uint8_t>(bits >> (8 * i));
    buf_.insert(buf_.end(), le, le + 8);
  }
  void add_string(std::uint32_t field, std::string_view v) {
    add_bytes(field, std::span<const std::uint8_t>(
                         reinterpret_cast<const std::uint8_t*>(v.data()), v.size()));
  }
  void add_bytes(std::uint32_t field, std::span<const std::uint8_t> v) {
    put_varint(buf_, make_tag(field, WireType::kLengthDelimited));
    put_varint(buf_, v.size());
    buf_.insert(buf_.end(), v.begin(), v.end());
  }
  void add_message(std::uint32_t field, const Encoder& child) { add_bytes(field, child.bytes()); }

  /// Drops the content but keeps the capacity — the reuse hook for hot
  /// serializers that build millions of small sub-messages.
  void clear() { buf_.clear(); }
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] bool empty() const { return buf_.empty(); }

 private:
  std::vector<std::uint8_t> buf_;
};

}  // namespace wlm::wire
