#include "wire/framing.hpp"

#include "core/checksum.hpp"
#include "wire/varint.hpp"

namespace wlm::wire {

void append_frame(std::vector<std::uint8_t>& stream, std::span<const std::uint8_t> payload) {
  stream.push_back(kFrameMagic0);
  stream.push_back(kFrameMagic1);
  put_varint(stream, payload.size());
  stream.insert(stream.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32(payload);
  for (int i = 0; i < 4; ++i) stream.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
}

std::optional<std::span<const std::uint8_t>> FrameWalker::next() {
  while (pos_ + 2 <= stream_.size()) {
    if (stream_[pos_] != kFrameMagic0 || stream_[pos_ + 1] != kFrameMagic1) {
      ++pos_;
      ++resync_bytes_;
      continue;
    }
    const std::size_t frame_start = pos_;
    pos_ += 2;
    const auto len = get_varint(stream_.subspan(pos_));
    if (!len) {
      pos_ = stream_.size();  // truncated tail
      return std::nullopt;
    }
    pos_ += len->consumed;
    if (pos_ + len->value + 4 > stream_.size()) {
      // Truncated frame; rewind past the magic and resync.
      pos_ = frame_start + 1;
      ++resync_bytes_;
      continue;
    }
    const auto payload = stream_.subspan(pos_, len->value);
    pos_ += len->value;
    std::uint32_t crc = 0;
    for (int i = 3; i >= 0; --i) crc = (crc << 8) | stream_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    if (crc32(payload) != crc) {
      ++corrupt_frames_;
      continue;
    }
    return payload;
  }
  return std::nullopt;
}

StreamDecodeResult decode_stream(std::span<const std::uint8_t> stream) {
  StreamDecodeResult result;
  FrameWalker walker(stream);
  while (const auto payload = walker.next()) {
    result.payloads.emplace_back(payload->begin(), payload->end());
  }
  result.corrupt_frames = walker.corrupt_frames();
  result.resync_bytes = walker.resync_bytes();
  return result;
}

std::size_t frame_overhead(std::size_t payload_size) {
  return 2 + varint_size(payload_size) + 4;
}

std::optional<std::pair<std::size_t, std::size_t>> frame_payload_range(
    std::span<const std::uint8_t> frame) {
  if (frame.size() < 2 || frame[0] != kFrameMagic0 || frame[1] != kFrameMagic1) {
    return std::nullopt;
  }
  const auto len = get_varint(frame.subspan(2));
  if (!len) return std::nullopt;
  const std::size_t begin = 2 + len->consumed;
  if (begin + len->value + 4 > frame.size()) return std::nullopt;
  return std::make_pair(begin, begin + static_cast<std::size_t>(len->value));
}

}  // namespace wlm::wire
