// Tunnel stream framing: [magic u16][length varint][payload][crc32 fixed32].
//
// The CRC covers the payload only; the magic delimits frames so a reader can
// resynchronize after a corrupt length. decode_stream() is tolerant: frames
// with bad CRCs are counted and skipped, matching a collector that must
// survive flaky WAN links.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace wlm::wire {

inline constexpr std::uint8_t kFrameMagic0 = 0xA7;
inline constexpr std::uint8_t kFrameMagic1 = 0x5C;

/// Appends one framed payload to `stream`.
void append_frame(std::vector<std::uint8_t>& stream, std::span<const std::uint8_t> payload);

/// Zero-copy frame iterator: walks the stream and yields a span per frame
/// whose CRC verifies, with the same resynchronization and corruption
/// accounting as decode_stream (which is built on it). The spans alias the
/// input buffer — the backend parses reports straight out of the polled
/// frame instead of copying every payload first.
class FrameWalker {
 public:
  explicit FrameWalker(std::span<const std::uint8_t> stream) : stream_(stream) {}

  /// Next CRC-clean payload, or nullopt at end of stream.
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> next();

  [[nodiscard]] std::size_t corrupt_frames() const { return corrupt_frames_; }
  [[nodiscard]] std::size_t resync_bytes() const { return resync_bytes_; }

 private:
  std::span<const std::uint8_t> stream_;
  std::size_t pos_ = 0;
  std::size_t corrupt_frames_ = 0;
  std::size_t resync_bytes_ = 0;
};

struct StreamDecodeResult {
  std::vector<std::vector<std::uint8_t>> payloads;
  std::size_t corrupt_frames = 0;   // bad CRC
  std::size_t resync_bytes = 0;     // bytes skipped hunting for magic
};

/// Decodes every recoverable frame in the stream.
[[nodiscard]] StreamDecodeResult decode_stream(std::span<const std::uint8_t> stream);

/// Framing overhead in bytes for a payload of the given size.
[[nodiscard]] std::size_t frame_overhead(std::size_t payload_size);

/// Byte range [first, second) of the payload inside a buffer that starts
/// with one complete frame (magic at offset 0, full payload + CRC present).
/// Lets a fault injector flip payload bits — and only payload bits, so the
/// damage lands on the CRC check rather than desynchronizing the stream.
[[nodiscard]] std::optional<std::pair<std::size_t, std::size_t>> frame_payload_range(
    std::span<const std::uint8_t> frame);

}  // namespace wlm::wire
