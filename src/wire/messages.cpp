#include "wire/messages.hpp"

#include <cstring>

#include "wire/decoder.hpp"
#include "wire/encoder.hpp"

namespace wlm::wire {

namespace {

// ApReport field numbers.
constexpr std::uint32_t kFApId = 1;
constexpr std::uint32_t kFTimestamp = 2;
constexpr std::uint32_t kFFirmware = 3;
constexpr std::uint32_t kFUsage = 4;
constexpr std::uint32_t kFUtilization = 5;
constexpr std::uint32_t kFNeighbor = 6;
constexpr std::uint32_t kFLink = 7;
constexpr std::uint32_t kFClient = 8;
// Mesh backhaul accounting (appended; emitted only when nonzero so wired
// reports keep their historical bytes).
constexpr std::uint32_t kFMeshHops = 9;
constexpr std::uint32_t kFMeshRelayUs = 10;

// --- specialized hot-row codecs -------------------------------------------
//
// Usage rows and client snapshots are the two sub-messages a fleet harvest
// carries millions of; the generic Encoder/Decoder field machinery spends
// more time on per-field bookkeeping than on the bytes. The emitters below
// assemble one row in a stack buffer with unchecked stores and hand it to
// the parent as a single length-delimited field; the parsers walk the
// expected tag sequence with raw pointers and fall back to the generic
// field loop on any deviation (old firmware, reordered or corrupt fields).
// Both produce/accept byte-for-byte the same wire as the generic path.

inline std::uint8_t* raw_varint(std::uint8_t* p, std::uint64_t v) {
  while (v >= 0x80) {
    *p++ = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  *p++ = static_cast<std::uint8_t>(v);
  return p;
}

// Single-byte tags our encoder writes (field <= 8 always fits one byte).
constexpr std::uint8_t tag_byte(std::uint32_t field, WireType type) {
  return static_cast<std::uint8_t>(make_tag(field, type));
}

// The encode_* helpers write into a caller-owned scratch encoder instead of
// returning a fresh one: a usage report carries millions of sub-messages
// fleet-wide, and reusing one buffer keeps its capacity across rows. The
// bytes produced are identical to building a fresh encoder per row.

/// Emits one usage row straight into the parent as field kFUsage. Bytes are
/// identical to building the row with Encoder::add_uint field by field.
void encode_usage_into(const ClientUsage& u, Encoder& parent) {
  std::uint8_t tmp[48];  // 4 single-byte tags + 4 varints of <= 10 bytes
  std::uint8_t* p = tmp;
  *p++ = tag_byte(1, WireType::kVarint);
  p = raw_varint(p, u.client.to_u64());
  *p++ = tag_byte(2, WireType::kVarint);
  p = raw_varint(p, u.app_id);
  *p++ = tag_byte(3, WireType::kVarint);
  p = raw_varint(p, u.tx_bytes);
  *p++ = tag_byte(4, WireType::kVarint);
  p = raw_varint(p, u.rx_bytes);
  parent.add_bytes(kFUsage, {tmp, static_cast<std::size_t>(p - tmp)});
}

std::optional<ClientUsage> decode_usage_generic(std::span<const std::uint8_t> data) {
  ClientUsage u;
  Decoder d(data);
  while (auto f = d.next()) {
    switch (f->number) {
      case 1:
        u.client = MacAddress::from_u64(f->as_uint());
        break;
      case 2:
        u.app_id = static_cast<std::uint32_t>(f->as_uint());
        break;
      case 3:
        u.tx_bytes = f->as_uint();
        break;
      case 4:
        u.rx_bytes = f->as_uint();
        break;
      default:
        break;  // forward compatibility
    }
  }
  if (!d.ok()) return std::nullopt;
  return u;
}

std::optional<ClientUsage> decode_usage(std::span<const std::uint8_t> data) {
  const std::uint8_t* p = data.data();
  const std::uint8_t* const end = p + data.size();
  constexpr std::uint8_t kTags[4] = {
      tag_byte(1, WireType::kVarint), tag_byte(2, WireType::kVarint),
      tag_byte(3, WireType::kVarint), tag_byte(4, WireType::kVarint)};
  std::uint64_t field[4];
  for (int i = 0; i < 4; ++i) {
    if (p == end || *p != kTags[i]) return decode_usage_generic(data);
    p = parse_varint(p + 1, end, field[i]);
    if (p == nullptr) return decode_usage_generic(data);
  }
  if (p != end) return decode_usage_generic(data);
  ClientUsage u;
  u.client = MacAddress::from_u64(field[0]);
  u.app_id = static_cast<std::uint32_t>(field[1]);
  u.tx_bytes = field[2];
  u.rx_bytes = field[3];
  return u;
}

void encode_util(const ChannelUtilization& c, Encoder& e) {
  e.clear();
  e.add_uint(1, c.band);
  e.add_sint(2, c.channel);
  e.add_uint(3, c.cycle_us);
  e.add_uint(4, c.busy_us);
  e.add_uint(5, c.rx_frame_us);
  e.add_uint(6, c.tx_us);
}

std::optional<ChannelUtilization> decode_util(std::span<const std::uint8_t> data) {
  ChannelUtilization c;
  Decoder d(data);
  while (auto f = d.next()) {
    switch (f->number) {
      case 1:
        c.band = static_cast<std::uint8_t>(f->as_uint());
        break;
      case 2:
        c.channel = static_cast<std::int32_t>(f->as_sint());
        break;
      case 3:
        c.cycle_us = f->as_uint();
        break;
      case 4:
        c.busy_us = f->as_uint();
        break;
      case 5:
        c.rx_frame_us = f->as_uint();
        break;
      case 6:
        c.tx_us = f->as_uint();
        break;
      default:
        break;
    }
  }
  if (!d.ok()) return std::nullopt;
  return c;
}

void encode_neighbor(const NeighborBss& n, Encoder& e) {
  e.clear();
  e.add_uint(1, n.bssid.to_u64());
  e.add_uint(2, n.band);
  e.add_sint(3, n.channel);
  e.add_double(4, n.rssi_dbm);
  e.add_bool(5, n.is_hotspot);
  e.add_bool(6, n.is_same_fleet);
}

std::optional<NeighborBss> decode_neighbor(std::span<const std::uint8_t> data) {
  NeighborBss n;
  Decoder d(data);
  while (auto f = d.next()) {
    switch (f->number) {
      case 1:
        n.bssid = MacAddress::from_u64(f->as_uint());
        break;
      case 2:
        n.band = static_cast<std::uint8_t>(f->as_uint());
        break;
      case 3:
        n.channel = static_cast<std::int32_t>(f->as_sint());
        break;
      case 4:
        n.rssi_dbm = f->as_double();
        break;
      case 5:
        n.is_hotspot = f->as_bool();
        break;
      case 6:
        n.is_same_fleet = f->as_bool();
        break;
      default:
        break;
    }
  }
  if (!d.ok()) return std::nullopt;
  return n;
}

void encode_link(const LinkProbeWindow& l, Encoder& e) {
  e.clear();
  e.add_uint(1, l.from_ap);
  e.add_uint(2, l.band);
  e.add_sint(3, l.channel);
  e.add_uint(4, l.probes_expected);
  e.add_uint(5, l.probes_received);
}

std::optional<LinkProbeWindow> decode_link(std::span<const std::uint8_t> data) {
  LinkProbeWindow l;
  Decoder d(data);
  while (auto f = d.next()) {
    switch (f->number) {
      case 1:
        l.from_ap = static_cast<std::uint32_t>(f->as_uint());
        break;
      case 2:
        l.band = static_cast<std::uint8_t>(f->as_uint());
        break;
      case 3:
        l.channel = static_cast<std::int32_t>(f->as_sint());
        break;
      case 4:
        l.probes_expected = static_cast<std::uint32_t>(f->as_uint());
        break;
      case 5:
        l.probes_received = static_cast<std::uint32_t>(f->as_uint());
        break;
      default:
        break;
    }
  }
  if (!d.ok()) return std::nullopt;
  return l;
}

/// Emits one client snapshot straight into the parent as field kFClient;
/// bytes identical to the generic add_uint/add_double sequence.
void encode_client_into(const ClientSnapshot& c, Encoder& parent) {
  std::uint8_t tmp[64];  // 5 single-byte tags + 4 varints + 1 fixed64
  std::uint8_t* p = tmp;
  *p++ = tag_byte(1, WireType::kVarint);
  p = raw_varint(p, c.client.to_u64());
  *p++ = tag_byte(2, WireType::kVarint);
  p = raw_varint(p, c.capability_bits);
  *p++ = tag_byte(3, WireType::kVarint);
  p = raw_varint(p, c.band);
  *p++ = tag_byte(4, WireType::kFixed64);
  std::uint64_t bits = 0;
  std::memcpy(&bits, &c.rssi_dbm, sizeof bits);
  for (int i = 0; i < 8; ++i) *p++ = static_cast<std::uint8_t>(bits >> (8 * i));
  *p++ = tag_byte(5, WireType::kVarint);
  p = raw_varint(p, c.os_id);
  parent.add_bytes(kFClient, {tmp, static_cast<std::size_t>(p - tmp)});
}

std::optional<ClientSnapshot> decode_client_generic(std::span<const std::uint8_t> data) {
  ClientSnapshot c;
  Decoder d(data);
  while (auto f = d.next()) {
    switch (f->number) {
      case 1:
        c.client = MacAddress::from_u64(f->as_uint());
        break;
      case 2:
        c.capability_bits = static_cast<std::uint32_t>(f->as_uint());
        break;
      case 3:
        c.band = static_cast<std::uint8_t>(f->as_uint());
        break;
      case 4:
        c.rssi_dbm = f->as_double();
        break;
      case 5:
        c.os_id = static_cast<std::uint8_t>(f->as_uint());
        break;
      default:
        break;
    }
  }
  if (!d.ok()) return std::nullopt;
  return c;
}

std::optional<ClientSnapshot> decode_client(std::span<const std::uint8_t> data) {
  const std::uint8_t* p = data.data();
  const std::uint8_t* const end = p + data.size();
  std::uint64_t client = 0, caps = 0, band = 0, os_id = 0, rssi_bits = 0;
  const auto expect_varint = [&](std::uint8_t tag, std::uint64_t& out) {
    if (p == nullptr || p == end || *p != tag) return false;
    p = parse_varint(p + 1, end, out);
    return p != nullptr;
  };
  if (expect_varint(tag_byte(1, WireType::kVarint), client) &&
      expect_varint(tag_byte(2, WireType::kVarint), caps) &&
      expect_varint(tag_byte(3, WireType::kVarint), band) && p != end &&
      *p == tag_byte(4, WireType::kFixed64) && end - p >= 9) {
    ++p;
    for (int i = 7; i >= 0; --i) rssi_bits = (rssi_bits << 8) | p[i];
    p += 8;
    if (expect_varint(tag_byte(5, WireType::kVarint), os_id) && p == end) {
      ClientSnapshot c;
      c.client = MacAddress::from_u64(client);
      c.capability_bits = static_cast<std::uint32_t>(caps);
      c.band = static_cast<std::uint8_t>(band);
      std::memcpy(&c.rssi_dbm, &rssi_bits, sizeof c.rssi_dbm);
      c.os_id = static_cast<std::uint8_t>(os_id);
      return c;
    }
  }
  return decode_client_generic(data);
}

}  // namespace

void encode_report_into(const ApReport& report, Encoder& e) {
  e.clear();
  e.add_uint(kFApId, report.ap_id);
  e.add_sint(kFTimestamp, report.timestamp_us);
  e.add_uint(kFFirmware, report.firmware);
  // Usage rows and client snapshots take the stack-buffer emitters (they are
  // the ~millions-per-harvest rows); the low-cardinality sub-messages keep
  // the shared child encoder.
  for (const auto& u : report.usage) encode_usage_into(u, e);
  Encoder child;
  for (const auto& c : report.utilization) {
    encode_util(c, child);
    e.add_message(kFUtilization, child);
  }
  for (const auto& n : report.neighbors) {
    encode_neighbor(n, child);
    e.add_message(kFNeighbor, child);
  }
  for (const auto& l : report.links) {
    encode_link(l, child);
    e.add_message(kFLink, child);
  }
  for (const auto& c : report.clients) encode_client_into(c, e);
  if (report.mesh_hops != 0) {
    e.add_uint(kFMeshHops, report.mesh_hops);
    e.add_uint(kFMeshRelayUs, report.mesh_relay_us);
  }
}

std::vector<std::uint8_t> encode_report(const ApReport& report) {
  Encoder e;
  encode_report_into(report, e);
  return std::move(e).take();
}

namespace {

std::optional<ApReport> decode_report_generic(std::span<const std::uint8_t> data) {
  ApReport r;
  Decoder d(data);
  while (auto f = d.next()) {
    switch (f->number) {
      case kFApId:
        r.ap_id = static_cast<std::uint32_t>(f->as_uint());
        break;
      case kFTimestamp:
        r.timestamp_us = f->as_sint();
        break;
      case kFFirmware:
        r.firmware = static_cast<std::uint32_t>(f->as_uint());
        break;
      case kFUsage: {
        auto u = decode_usage(f->payload);
        if (!u) return std::nullopt;
        r.usage.push_back(*u);
        break;
      }
      case kFUtilization: {
        auto c = decode_util(f->payload);
        if (!c) return std::nullopt;
        r.utilization.push_back(*c);
        break;
      }
      case kFNeighbor: {
        auto n = decode_neighbor(f->payload);
        if (!n) return std::nullopt;
        r.neighbors.push_back(*n);
        break;
      }
      case kFLink: {
        auto l = decode_link(f->payload);
        if (!l) return std::nullopt;
        r.links.push_back(*l);
        break;
      }
      case kFClient: {
        auto c = decode_client(f->payload);
        if (!c) return std::nullopt;
        r.clients.push_back(*c);
        break;
      }
      case kFMeshHops:
        r.mesh_hops = static_cast<std::uint32_t>(f->as_uint());
        break;
      case kFMeshRelayUs:
        r.mesh_relay_us = f->as_uint();
        break;
      default:
        break;  // unknown field from newer firmware: skip
    }
  }
  if (!d.ok()) return std::nullopt;
  return r;
}

}  // namespace

std::optional<ApReport> decode_report(std::span<const std::uint8_t> data) {
  // Fast path for the tag sequence our own encoder emits: all field numbers
  // fit single-byte tags, so the dispatch is one byte-compare per field with
  // no Field/optional materialization. The first unexpected tag (newer
  // firmware, exotic ordering) restarts the whole message through the
  // generic skip-capable decoder; a malformed nested row still returns
  // nullopt exactly as before.
  ApReport r;
  const std::uint8_t* p = data.data();
  const std::uint8_t* const end = p + data.size();

  // Pre-scan: count the repeated fields so each vector is sized exactly once
  // instead of growing through the log2(n) realloc-and-copy ladder. The scan
  // only walks top-level tags (nested payloads are skipped wholesale), so it
  // is cheap next to the parse itself; any surprise defers to the generic
  // decoder below.
  {
    std::size_t n_usage = 0, n_util = 0, n_nbr = 0, n_link = 0, n_client = 0;
    const std::uint8_t* q = p;
    while (q != end) {
      const std::uint8_t tag = *q;
      if ((tag & 0x80u) != 0 || (tag >> 3) == 0) return decode_report_generic(data);
      ++q;
      std::uint64_t v = 0;
      if ((tag & 0x7u) == static_cast<std::uint8_t>(WireType::kVarint)) {
        q = parse_varint(q, end, v);
        if (q == nullptr) return decode_report_generic(data);
        continue;
      }
      if ((tag & 0x7u) != static_cast<std::uint8_t>(WireType::kLengthDelimited)) {
        return decode_report_generic(data);
      }
      q = parse_varint(q, end, v);
      if (q == nullptr || v > static_cast<std::uint64_t>(end - q)) {
        return decode_report_generic(data);
      }
      q += v;
      switch (tag >> 3) {
        case kFUsage: ++n_usage; break;
        case kFUtilization: ++n_util; break;
        case kFNeighbor: ++n_nbr; break;
        case kFLink: ++n_link; break;
        case kFClient: ++n_client; break;
        default: break;
      }
    }
    r.usage.reserve(n_usage);
    r.utilization.reserve(n_util);
    r.neighbors.reserve(n_nbr);
    r.links.reserve(n_link);
    r.clients.reserve(n_client);
  }

  while (p != end) {
    const std::uint8_t tag = *p;
    if ((tag & 0x80u) != 0) return decode_report_generic(data);
    ++p;
    std::uint64_t v = 0;
    switch (tag) {
      case tag_byte(kFApId, WireType::kVarint):
        p = parse_varint(p, end, v);
        if (p == nullptr) return decode_report_generic(data);
        r.ap_id = static_cast<std::uint32_t>(v);
        continue;
      case tag_byte(kFTimestamp, WireType::kVarint):
        p = parse_varint(p, end, v);
        if (p == nullptr) return decode_report_generic(data);
        r.timestamp_us = zigzag_decode(v);
        continue;
      case tag_byte(kFFirmware, WireType::kVarint):
        p = parse_varint(p, end, v);
        if (p == nullptr) return decode_report_generic(data);
        r.firmware = static_cast<std::uint32_t>(v);
        continue;
      case tag_byte(kFUsage, WireType::kLengthDelimited): {
        p = parse_varint(p, end, v);
        if (p == nullptr || v > static_cast<std::uint64_t>(end - p)) {
          return decode_report_generic(data);
        }
        // Inline parse of the dominant row type: four varint fields in tag
        // order, no Field materialization, no sub-decoder call. Any layout
        // surprise routes the row through the fallback-capable decoder.
        const std::uint8_t* const row_end = p + v;
        const std::uint8_t* q = p;
        std::uint64_t client = 0, app = 0, tx = 0, rx = 0;
        if (q != row_end && *q == tag_byte(1, WireType::kVarint) &&
            (q = parse_varint(q + 1, row_end, client)) != nullptr && q != row_end &&
            *q == tag_byte(2, WireType::kVarint) &&
            (q = parse_varint(q + 1, row_end, app)) != nullptr && q != row_end &&
            *q == tag_byte(3, WireType::kVarint) &&
            (q = parse_varint(q + 1, row_end, tx)) != nullptr && q != row_end &&
            *q == tag_byte(4, WireType::kVarint) &&
            (q = parse_varint(q + 1, row_end, rx)) != nullptr && q == row_end) {
          ClientUsage u;
          u.client = MacAddress::from_u64(client);
          u.app_id = static_cast<std::uint32_t>(app);
          u.tx_bytes = tx;
          u.rx_bytes = rx;
          r.usage.push_back(u);
        } else {
          auto u = decode_usage({p, static_cast<std::size_t>(v)});
          if (!u) return std::nullopt;
          r.usage.push_back(*u);
        }
        p = row_end;
        continue;
      }
      case tag_byte(kFUtilization, WireType::kLengthDelimited): {
        p = parse_varint(p, end, v);
        if (p == nullptr || v > static_cast<std::uint64_t>(end - p)) {
          return decode_report_generic(data);
        }
        auto c = decode_util({p, static_cast<std::size_t>(v)});
        if (!c) return std::nullopt;
        r.utilization.push_back(*c);
        p += v;
        continue;
      }
      case tag_byte(kFNeighbor, WireType::kLengthDelimited): {
        p = parse_varint(p, end, v);
        if (p == nullptr || v > static_cast<std::uint64_t>(end - p)) {
          return decode_report_generic(data);
        }
        auto n = decode_neighbor({p, static_cast<std::size_t>(v)});
        if (!n) return std::nullopt;
        r.neighbors.push_back(*n);
        p += v;
        continue;
      }
      case tag_byte(kFLink, WireType::kLengthDelimited): {
        p = parse_varint(p, end, v);
        if (p == nullptr || v > static_cast<std::uint64_t>(end - p)) {
          return decode_report_generic(data);
        }
        auto l = decode_link({p, static_cast<std::size_t>(v)});
        if (!l) return std::nullopt;
        r.links.push_back(*l);
        p += v;
        continue;
      }
      case tag_byte(kFClient, WireType::kLengthDelimited): {
        p = parse_varint(p, end, v);
        if (p == nullptr || v > static_cast<std::uint64_t>(end - p)) {
          return decode_report_generic(data);
        }
        auto c = decode_client({p, static_cast<std::size_t>(v)});
        if (!c) return std::nullopt;
        r.clients.push_back(*c);
        p += v;
        continue;
      }
      case tag_byte(kFMeshHops, WireType::kVarint):
        p = parse_varint(p, end, v);
        if (p == nullptr) return decode_report_generic(data);
        r.mesh_hops = static_cast<std::uint32_t>(v);
        continue;
      case tag_byte(kFMeshRelayUs, WireType::kVarint):
        p = parse_varint(p, end, v);
        if (p == nullptr) return decode_report_generic(data);
        r.mesh_relay_us = v;
        continue;
      default:
        return decode_report_generic(data);
    }
  }
  return r;
}

}  // namespace wlm::wire
