#include "wire/messages.hpp"

#include "wire/decoder.hpp"
#include "wire/encoder.hpp"

namespace wlm::wire {

namespace {

// ApReport field numbers.
constexpr std::uint32_t kFApId = 1;
constexpr std::uint32_t kFTimestamp = 2;
constexpr std::uint32_t kFFirmware = 3;
constexpr std::uint32_t kFUsage = 4;
constexpr std::uint32_t kFUtilization = 5;
constexpr std::uint32_t kFNeighbor = 6;
constexpr std::uint32_t kFLink = 7;
constexpr std::uint32_t kFClient = 8;

Encoder encode_usage(const ClientUsage& u) {
  Encoder e;
  e.add_uint(1, u.client.to_u64());
  e.add_uint(2, u.app_id);
  e.add_uint(3, u.tx_bytes);
  e.add_uint(4, u.rx_bytes);
  return e;
}

std::optional<ClientUsage> decode_usage(std::span<const std::uint8_t> data) {
  ClientUsage u;
  Decoder d(data);
  while (auto f = d.next()) {
    switch (f->number) {
      case 1:
        u.client = MacAddress::from_u64(f->as_uint());
        break;
      case 2:
        u.app_id = static_cast<std::uint32_t>(f->as_uint());
        break;
      case 3:
        u.tx_bytes = f->as_uint();
        break;
      case 4:
        u.rx_bytes = f->as_uint();
        break;
      default:
        break;  // forward compatibility
    }
  }
  if (!d.ok()) return std::nullopt;
  return u;
}

Encoder encode_util(const ChannelUtilization& c) {
  Encoder e;
  e.add_uint(1, c.band);
  e.add_sint(2, c.channel);
  e.add_uint(3, c.cycle_us);
  e.add_uint(4, c.busy_us);
  e.add_uint(5, c.rx_frame_us);
  e.add_uint(6, c.tx_us);
  return e;
}

std::optional<ChannelUtilization> decode_util(std::span<const std::uint8_t> data) {
  ChannelUtilization c;
  Decoder d(data);
  while (auto f = d.next()) {
    switch (f->number) {
      case 1:
        c.band = static_cast<std::uint8_t>(f->as_uint());
        break;
      case 2:
        c.channel = static_cast<std::int32_t>(f->as_sint());
        break;
      case 3:
        c.cycle_us = f->as_uint();
        break;
      case 4:
        c.busy_us = f->as_uint();
        break;
      case 5:
        c.rx_frame_us = f->as_uint();
        break;
      case 6:
        c.tx_us = f->as_uint();
        break;
      default:
        break;
    }
  }
  if (!d.ok()) return std::nullopt;
  return c;
}

Encoder encode_neighbor(const NeighborBss& n) {
  Encoder e;
  e.add_uint(1, n.bssid.to_u64());
  e.add_uint(2, n.band);
  e.add_sint(3, n.channel);
  e.add_double(4, n.rssi_dbm);
  e.add_bool(5, n.is_hotspot);
  e.add_bool(6, n.is_same_fleet);
  return e;
}

std::optional<NeighborBss> decode_neighbor(std::span<const std::uint8_t> data) {
  NeighborBss n;
  Decoder d(data);
  while (auto f = d.next()) {
    switch (f->number) {
      case 1:
        n.bssid = MacAddress::from_u64(f->as_uint());
        break;
      case 2:
        n.band = static_cast<std::uint8_t>(f->as_uint());
        break;
      case 3:
        n.channel = static_cast<std::int32_t>(f->as_sint());
        break;
      case 4:
        n.rssi_dbm = f->as_double();
        break;
      case 5:
        n.is_hotspot = f->as_bool();
        break;
      case 6:
        n.is_same_fleet = f->as_bool();
        break;
      default:
        break;
    }
  }
  if (!d.ok()) return std::nullopt;
  return n;
}

Encoder encode_link(const LinkProbeWindow& l) {
  Encoder e;
  e.add_uint(1, l.from_ap);
  e.add_uint(2, l.band);
  e.add_sint(3, l.channel);
  e.add_uint(4, l.probes_expected);
  e.add_uint(5, l.probes_received);
  return e;
}

std::optional<LinkProbeWindow> decode_link(std::span<const std::uint8_t> data) {
  LinkProbeWindow l;
  Decoder d(data);
  while (auto f = d.next()) {
    switch (f->number) {
      case 1:
        l.from_ap = static_cast<std::uint32_t>(f->as_uint());
        break;
      case 2:
        l.band = static_cast<std::uint8_t>(f->as_uint());
        break;
      case 3:
        l.channel = static_cast<std::int32_t>(f->as_sint());
        break;
      case 4:
        l.probes_expected = static_cast<std::uint32_t>(f->as_uint());
        break;
      case 5:
        l.probes_received = static_cast<std::uint32_t>(f->as_uint());
        break;
      default:
        break;
    }
  }
  if (!d.ok()) return std::nullopt;
  return l;
}

Encoder encode_client(const ClientSnapshot& c) {
  Encoder e;
  e.add_uint(1, c.client.to_u64());
  e.add_uint(2, c.capability_bits);
  e.add_uint(3, c.band);
  e.add_double(4, c.rssi_dbm);
  e.add_uint(5, c.os_id);
  return e;
}

std::optional<ClientSnapshot> decode_client(std::span<const std::uint8_t> data) {
  ClientSnapshot c;
  Decoder d(data);
  while (auto f = d.next()) {
    switch (f->number) {
      case 1:
        c.client = MacAddress::from_u64(f->as_uint());
        break;
      case 2:
        c.capability_bits = static_cast<std::uint32_t>(f->as_uint());
        break;
      case 3:
        c.band = static_cast<std::uint8_t>(f->as_uint());
        break;
      case 4:
        c.rssi_dbm = f->as_double();
        break;
      case 5:
        c.os_id = static_cast<std::uint8_t>(f->as_uint());
        break;
      default:
        break;
    }
  }
  if (!d.ok()) return std::nullopt;
  return c;
}

}  // namespace

std::vector<std::uint8_t> encode_report(const ApReport& report) {
  Encoder e;
  e.add_uint(kFApId, report.ap_id);
  e.add_sint(kFTimestamp, report.timestamp_us);
  e.add_uint(kFFirmware, report.firmware);
  for (const auto& u : report.usage) e.add_message(kFUsage, encode_usage(u));
  for (const auto& c : report.utilization) e.add_message(kFUtilization, encode_util(c));
  for (const auto& n : report.neighbors) e.add_message(kFNeighbor, encode_neighbor(n));
  for (const auto& l : report.links) e.add_message(kFLink, encode_link(l));
  for (const auto& c : report.clients) e.add_message(kFClient, encode_client(c));
  return std::move(e).take();
}

std::optional<ApReport> decode_report(std::span<const std::uint8_t> data) {
  ApReport r;
  Decoder d(data);
  while (auto f = d.next()) {
    switch (f->number) {
      case kFApId:
        r.ap_id = static_cast<std::uint32_t>(f->as_uint());
        break;
      case kFTimestamp:
        r.timestamp_us = f->as_sint();
        break;
      case kFFirmware:
        r.firmware = static_cast<std::uint32_t>(f->as_uint());
        break;
      case kFUsage: {
        auto u = decode_usage(f->payload);
        if (!u) return std::nullopt;
        r.usage.push_back(*u);
        break;
      }
      case kFUtilization: {
        auto c = decode_util(f->payload);
        if (!c) return std::nullopt;
        r.utilization.push_back(*c);
        break;
      }
      case kFNeighbor: {
        auto n = decode_neighbor(f->payload);
        if (!n) return std::nullopt;
        r.neighbors.push_back(*n);
        break;
      }
      case kFLink: {
        auto l = decode_link(f->payload);
        if (!l) return std::nullopt;
        r.links.push_back(*l);
        break;
      }
      case kFClient: {
        auto c = decode_client(f->payload);
        if (!c) return std::nullopt;
        r.clients.push_back(*c);
        break;
      }
      default:
        break;  // unknown field from newer firmware: skip
    }
  }
  if (!d.ok()) return std::nullopt;
  return r;
}

}  // namespace wlm::wire
