// Telemetry message schemas exchanged between access points and the backend.
//
// One ApReport is produced per AP per poll cycle and carries everything the
// paper's analyses consume: per-client usage counters keyed by MAC address,
// channel utilization counters, the neighbor-BSS table, link-probe delivery
// windows, and associated-client snapshots.
//
// Field numbers are part of the wire contract; append, never renumber.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/ids.hpp"

namespace wlm::wire {

class Encoder;

/// Per-client, per-application byte counters since the previous poll.
struct ClientUsage {
  MacAddress client;
  std::uint32_t app_id = 0;     // classify::AppId
  std::uint64_t tx_bytes = 0;   // upstream (client -> network)
  std::uint64_t rx_bytes = 0;   // downstream (network -> client)

  bool operator==(const ClientUsage&) const = default;
};

/// Channel occupancy counters over the report interval.
struct ChannelUtilization {
  std::uint8_t band = 0;  // 0 = 2.4 GHz, 1 = 5 GHz
  std::int32_t channel = 0;
  std::uint64_t cycle_us = 0;
  std::uint64_t busy_us = 0;
  std::uint64_t rx_frame_us = 0;
  std::uint64_t tx_us = 0;

  bool operator==(const ChannelUtilization&) const = default;
};

/// One entry of the neighbor-BSS scan table.
struct NeighborBss {
  MacAddress bssid;
  std::uint8_t band = 0;
  std::int32_t channel = 0;
  double rssi_dbm = -100.0;
  bool is_hotspot = false;   // classified by OUI (Novatel, Sierra, ...)
  bool is_same_fleet = false;  // our own APs; excluded from Table 7

  bool operator==(const NeighborBss&) const = default;
};

/// 300-second sliding-window delivery measurement for one mesh link.
struct LinkProbeWindow {
  std::uint32_t from_ap = 0;
  std::uint8_t band = 0;
  std::int32_t channel = 0;
  std::uint32_t probes_expected = 0;
  std::uint32_t probes_received = 0;

  [[nodiscard]] double delivery_ratio() const {
    return probes_expected > 0
               ? static_cast<double>(probes_received) / static_cast<double>(probes_expected)
               : 0.0;
  }
  bool operator==(const LinkProbeWindow&) const = default;
};

/// Associated-client snapshot (capabilities bitmask mirrors deploy::Capabilities).
struct ClientSnapshot {
  MacAddress client;
  std::uint32_t capability_bits = 0;
  std::uint8_t band = 0;
  double rssi_dbm = -100.0;
  std::uint8_t os_id = 0;  // classify::OsType

  bool operator==(const ClientSnapshot&) const = default;
};

/// Top-level per-poll report.
struct ApReport {
  std::uint32_t ap_id = 0;
  std::int64_t timestamp_us = 0;
  std::uint32_t firmware = 0;
  std::vector<ClientUsage> usage;
  std::vector<ChannelUtilization> utilization;
  std::vector<NeighborBss> neighbors;
  std::vector<LinkProbeWindow> links;
  std::vector<ClientSnapshot> clients;
  /// Mesh backhaul hops this report traversed to reach a gateway AP, and
  /// the relay delay (queueing + airtime) those hops added. Both stay 0 on
  /// wired APs and are omitted from the wire entirely when 0, so non-mesh
  /// reports encode byte-identically to firmware that predates the fields.
  std::uint32_t mesh_hops = 0;
  std::uint64_t mesh_relay_us = 0;

  bool operator==(const ApReport&) const = default;
};

/// Serializes a report to wire bytes.
[[nodiscard]] std::vector<std::uint8_t> encode_report(const ApReport& report);

/// Serializes into a caller-owned encoder (cleared first). Hot paths reuse
/// one encoder across reports so the buffer capacity survives; the bytes
/// are identical to encode_report's.
void encode_report_into(const ApReport& report, Encoder& e);

/// Parses wire bytes; nullopt on malformed input. Unknown fields are skipped.
[[nodiscard]] std::optional<ApReport> decode_report(std::span<const std::uint8_t> data);

}  // namespace wlm::wire
