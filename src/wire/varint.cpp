#include "wire/varint.hpp"

namespace wlm::wire {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::optional<VarintResult> get_varint(std::span<const std::uint8_t> in) {
  std::uint64_t value = 0;
  int shift = 0;
  for (std::size_t i = 0; i < in.size() && i < 10; ++i) {
    value |= static_cast<std::uint64_t>(in[i] & 0x7F) << shift;
    if ((in[i] & 0x80) == 0) {
      return VarintResult{value, i + 1};
    }
    shift += 7;
  }
  return std::nullopt;  // truncated or over-long
}

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace wlm::wire
