// Base-128 varint and ZigZag codecs — the primitive layer of the telemetry
// wire format (paper §2: statistics protocols are "built with Google
// Protocol Buffers to minimize reporting overhead"; we implement the same
// encoding from scratch).
//
// Everything here is defined inline: the codecs run once per encoded field
// (tens of millions of calls per fleet harvest), and the per-call overhead
// of an out-of-line function dominated the actual bit twiddling in profiles.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace wlm::wire {

/// Appends the varint encoding of v (1-10 bytes) to out. Single-byte values
/// (field tags, small counters — the bulk of this wire) take the early
/// return; the multibyte loop sticks to push_back, whose inlined
/// capacity-check beats the library's out-of-line range-insert for these
/// tiny appends.
inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  if (v < 0x80) {
    out.push_back(static_cast<std::uint8_t>(v));
    return;
  }
  do {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  } while (v >= 0x80);
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Raw-pointer varint parse for specialized message decoders: reads one
/// varint starting at p, writes it to out, and returns the advanced pointer
/// — or nullptr on truncation / over-long encoding. Accepts exactly the
/// same encodings as get_varint.
[[nodiscard]] inline const std::uint8_t* parse_varint(const std::uint8_t* p,
                                                      const std::uint8_t* end,
                                                      std::uint64_t& out) {
  if (p == end) return nullptr;
  std::uint64_t value = *p & 0x7Fu;
  if ((*p & 0x80u) == 0) {
    out = value;
    return p + 1;
  }
  ++p;
  int shift = 7;
  for (int i = 1; i < 10 && p != end; ++i, ++p) {
    value |= static_cast<std::uint64_t>(*p & 0x7Fu) << shift;
    if ((*p & 0x80u) == 0) {
      out = value;
      return p + 1;
    }
    shift += 7;
  }
  return nullptr;  // truncated or over-long
}

/// Decoded value plus the number of bytes consumed.
struct VarintResult {
  std::uint64_t value = 0;
  std::size_t consumed = 0;
};

/// Reads a varint from the front of `in`. Returns nullopt on truncation or
/// an over-long (>10 byte) encoding.
[[nodiscard]] inline std::optional<VarintResult> get_varint(std::span<const std::uint8_t> in) {
  // Fast path: single-byte varints are the overwhelming majority of tags
  // and small field values on this wire.
  if (!in.empty() && (in[0] & 0x80) == 0) {
    return VarintResult{in[0], 1};
  }
  std::uint64_t value = 0;
  int shift = 0;
  for (std::size_t i = 0; i < in.size() && i < 10; ++i) {
    value |= static_cast<std::uint64_t>(in[i] & 0x7F) << shift;
    if ((in[i] & 0x80) == 0) {
      return VarintResult{value, i + 1};
    }
    shift += 7;
  }
  return std::nullopt;  // truncated or over-long
}

/// ZigZag maps signed to unsigned so small negatives stay small on the wire.
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Number of bytes put_varint would write.
[[nodiscard]] inline std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace wlm::wire
