// Base-128 varint and ZigZag codecs — the primitive layer of the telemetry
// wire format (paper §2: statistics protocols are "built with Google
// Protocol Buffers to minimize reporting overhead"; we implement the same
// encoding from scratch).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace wlm::wire {

/// Appends the varint encoding of v (1-10 bytes) to out.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);

/// Decoded value plus the number of bytes consumed.
struct VarintResult {
  std::uint64_t value = 0;
  std::size_t consumed = 0;
};

/// Reads a varint from the front of `in`. Returns nullopt on truncation or
/// an over-long (>10 byte) encoding.
[[nodiscard]] std::optional<VarintResult> get_varint(std::span<const std::uint8_t> in);

/// ZigZag maps signed to unsigned so small negatives stay small on the wire.
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Number of bytes put_varint would write.
[[nodiscard]] std::size_t varint_size(std::uint64_t v);

}  // namespace wlm::wire
