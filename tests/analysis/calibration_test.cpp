// Integration tests: run each experiment at reduced scale and assert the
// paper's qualitative claims (the "shape" targets from DESIGN.md §5).
#include "analysis/experiments.hpp"

#include <gtest/gtest.h>

#include "core/stats.hpp"

namespace wlm::analysis {
namespace {

ScenarioScale test_scale(int networks = 120) {
  ScenarioScale s;
  s.networks = networks;
  s.seed = 99;
  return s;
}

TEST(Calibration, Table7NeighborGrowth) {
  const auto run = run_neighbor_study(test_scale());
  // Growth direction and rough magnitude (paper: 55.47 / 28.60 / 3.68 / 2.47).
  EXPECT_NEAR(run.now.networks_per_ap_24, 55.47, 20.0);
  EXPECT_NEAR(run.six_months.networks_per_ap_24, 28.60, 12.0);
  EXPECT_GT(run.now.networks_per_ap_24, 1.5 * run.six_months.networks_per_ap_24);
  EXPECT_GT(run.now.networks_per_ap_5, run.six_months.networks_per_ap_5);
  EXPECT_LT(run.now.networks_per_ap_5, 8.0);
  // Hotspot shares (paper ~20% and 1.7%).
  EXPECT_NEAR(run.now.hotspot_frac_24, 0.20, 0.05);
  EXPECT_NEAR(run.now.hotspot_frac_5, 0.017, 0.02);
}

TEST(Calibration, Fig2ChannelOneLeads) {
  const auto run = run_neighbor_study(test_scale());
  auto count24 = [&](int ch) -> double {
    for (const auto& [c, n] : run.by_channel_24) {
      if (c == ch) return static_cast<double>(n);
    }
    return 0.0;
  };
  const double base = (count24(6) + count24(11)) / 2.0;
  ASSERT_GT(base, 0.0);
  EXPECT_NEAR(count24(1) / base, 1.37, 0.25);
  // 5 GHz: DFS-free UNII-1/UNII-3 dominate.
  double dfs_free = 0.0;
  double dfs = 0.0;
  for (const auto& [c, n] : run.by_channel_5) {
    if ((c >= 36 && c <= 48) || c >= 149) {
      dfs_free += static_cast<double>(n);
    } else {
      dfs += static_cast<double>(n);
    }
  }
  EXPECT_GT(dfs_free, 2.0 * dfs);
}

TEST(Calibration, Fig3LinkDeliveryShape) {
  const auto run = run_link_study(test_scale());
  ASSERT_GT(run.ratios_24_now.size(), 200u);
  ASSERT_GT(run.ratios_5_now.size(), 200u);

  auto frac = [](const std::vector<double>& v, auto pred) {
    return static_cast<double>(std::count_if(v.begin(), v.end(), pred)) /
           static_cast<double>(v.size());
  };
  // Majority of 2.4 GHz links are intermediate.
  EXPECT_GT(frac(run.ratios_24_now, [](double r) { return r > 0.05 && r < 0.95; }), 0.5);
  // Over half of 5 GHz links deliver everything (within one probe).
  EXPECT_GT(frac(run.ratios_5_now, [](double r) { return r >= 0.99; }), 0.4);
  // 2.4 GHz degraded over six months.
  EXPECT_LT(quantile(run.ratios_24_now, 0.5), quantile(run.ratios_24_before, 0.5) + 1e-9);
  // 5 GHz is better than 2.4 GHz overall.
  EXPECT_GT(quantile(run.ratios_5_now, 0.5), quantile(run.ratios_24_now, 0.5));
}

TEST(Calibration, Fig45SeriesVary) {
  const auto run = run_link_study(test_scale(60));
  ASSERT_GE(run.series_24.size(), 1u);
  for (const auto& s : run.series_24) {
    ASSERT_GT(s.ratios.size(), 100u);
    RunningStats stats;
    for (double r : s.ratios) stats.add(r);
    // Delivery on an intermediate link varies over the week (Figure 4).
    EXPECT_GT(stats.stddev(), 0.02);
  }
}

TEST(Calibration, Fig6UtilizationMedians) {
  const auto run = run_utilization_study(test_scale());
  ASSERT_GT(run.mr16_util_24.size(), 100u);
  // Paper: 2.4 GHz median 25%, p90 50%; 5 GHz median 5%, p90 30%.
  EXPECT_NEAR(quantile(run.mr16_util_24, 0.5), 0.25, 0.10);
  EXPECT_GT(quantile(run.mr16_util_24, 0.9), 0.35);
  EXPECT_NEAR(quantile(run.mr16_util_5, 0.5), 0.05, 0.05);
  EXPECT_LT(quantile(run.mr16_util_5, 0.5), quantile(run.mr16_util_24, 0.5));
}

TEST(Calibration, Fig78NoStrongCorrelation) {
  const auto run = run_utilization_study(test_scale());
  ASSERT_GT(run.scatter_util_24.size(), 500u);
  // Paper: "no clear correlation" between count and utilization.
  EXPECT_LT(std::abs(run.correlation_24), 0.65);
  EXPECT_LT(std::abs(run.correlation_5), 0.75);
}

TEST(Calibration, Fig9DayAboveNight) {
  const auto run = run_utilization_study(test_scale());
  const double day = quantile(run.day_24, 0.5);
  const double night = quantile(run.night_24, 0.5);
  EXPECT_GT(day, night);
  EXPECT_NEAR(day - night, 0.05, 0.05);  // ~5 points at the median
  // 5 GHz: most channels unused, distribution skewed to zero.
  EXPECT_LT(quantile(run.day_5, 0.5), 0.05);
}

TEST(Calibration, Fig10MajorityDecodable) {
  const auto run = run_utilization_study(test_scale());
  ASSERT_GT(run.decodable_24.size(), 50u);
  EXPECT_GT(quantile(run.decodable_24, 0.5), 0.5);
  EXPECT_GT(quantile(run.decodable_5, 0.5), 0.9);
}

TEST(Calibration, Fig1SnrAndBandSplit) {
  const auto run = run_snapshot_study(test_scale());
  const double total = static_cast<double>(run.clients_24 + run.clients_5);
  ASSERT_GT(total, 400.0);
  // Paper: ~80% of associated clients on 2.4 GHz; median SNR ~28 dB.
  EXPECT_NEAR(run.clients_24 / total, 0.80, 0.12);
  EXPECT_NEAR(quantile(run.snr_24, 0.5), 28.0, 10.0);
}

TEST(Calibration, Table4CapabilitiesThroughPipeline) {
  const auto run = run_snapshot_study(test_scale());
  // Measured through association + wire + aggregation, the Table 4
  // marginals must survive: 11ac 2.5% -> 18%, 5 GHz 48.9% -> 64.9%.
  EXPECT_NEAR(run.caps_2015[4], 0.180, 0.04);  // 11ac
  EXPECT_NEAR(run.caps_2014[4], 0.025, 0.02);
  EXPECT_NEAR(run.caps_2015[2], 0.649, 0.05);  // 5 GHz capable
  EXPECT_GT(run.caps_2015[3], run.caps_2014[3]);  // 40 MHz grew
}

TEST(Calibration, SpectrumOccupancyOrdering) {
  const auto run = run_spectrum_study(4242);
  EXPECT_GT(run.occupancy_24, run.occupancy_5);
  EXPECT_GT(run.occupancy_24, 0.10);
  EXPECT_FALSE(run.waterfall_24.empty());
  EXPECT_FALSE(run.waterfall_5.empty());
}

}  // namespace
}  // namespace wlm::analysis
