// End-to-end determinism of the analysis drivers across thread counts: the
// rendered artifacts — not just the raw stores — must be byte-identical
// whether the fleet runtime ran serially or on a worker pool.
#include <gtest/gtest.h>

#include "analysis/experiments.hpp"

namespace wlm::analysis {
namespace {

ScenarioScale small_scale(int threads) {
  ScenarioScale scale;
  scale.networks = 12;
  scale.seed = 2015;
  scale.threads = threads;
  return scale;
}

TEST(Determinism, UsageStudyIdenticalAcrossThreadCounts) {
  const auto serial = run_usage_study(small_scale(1));
  const auto parallel = run_usage_study(small_scale(4));
  EXPECT_EQ(render_table3(serial), render_table3(parallel));
  EXPECT_EQ(render_table5(serial), render_table5(parallel));
  EXPECT_EQ(render_table6(serial), render_table6(parallel));
  EXPECT_EQ(serial.flows_classified, parallel.flows_classified);
  EXPECT_EQ(serial.flows_misclassified, parallel.flows_misclassified);
  EXPECT_DOUBLE_EQ(serial.mean_report_bytes_per_ap, parallel.mean_report_bytes_per_ap);
}

TEST(Determinism, UtilizationStudyIdenticalAcrossThreadCounts) {
  const auto serial = run_utilization_study(small_scale(1));
  const auto parallel = run_utilization_study(small_scale(4));
  EXPECT_EQ(render_fig6(serial), render_fig6(parallel));
  EXPECT_EQ(render_fig9(serial), render_fig9(parallel));
  EXPECT_EQ(render_fig10(serial), render_fig10(parallel));
}

}  // namespace
}  // namespace wlm::analysis
