#include "analysis/export.hpp"

#include <gtest/gtest.h>

namespace wlm::analysis {
namespace {

ScenarioScale tiny() {
  ScenarioScale s;
  s.networks = 30;
  s.seed = 5;
  return s;
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(csv_escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvDoc, RendersRows) {
  CsvDoc doc;
  doc.name = "test";
  doc.rows.push_back({"a", "b"});
  doc.rows.push_back({"1", "x,y"});
  EXPECT_EQ(doc.to_string(), "a,b\n1,\"x,y\"\n");
}

TEST(Export, Fig3HasAllFourSeries) {
  const auto run = run_link_study(tiny());
  const auto doc = export_fig3(run);
  EXPECT_EQ(doc.name, "fig3_delivery_cdf");
  ASSERT_GT(doc.rows.size(), 400u);  // 4 series x 200 points + header
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"series", "delivery_ratio", "cdf"}));
  int series_seen = 0;
  std::string last;
  for (std::size_t i = 1; i < doc.rows.size(); ++i) {
    if (doc.rows[i][0] != last) {
      ++series_seen;
      last = doc.rows[i][0];
    }
  }
  EXPECT_EQ(series_seen, 4);
}

TEST(Export, Fig78RowsMatchScatterSize) {
  const auto run = run_utilization_study(tiny());
  const auto doc = export_fig78(run);
  EXPECT_EQ(doc.rows.size(),
            1 + run.scatter_count_24.size() + run.scatter_count_5.size());
}

TEST(Export, Table7CoversBothBands) {
  const auto run = run_neighbor_study(tiny());
  const auto doc = export_table7(run);
  bool has24 = false;
  bool has5 = false;
  for (std::size_t i = 1; i < doc.rows.size(); ++i) {
    has24 |= doc.rows[i][0] == "2.4GHz";
    has5 |= doc.rows[i][0] == "5GHz";
  }
  EXPECT_TRUE(has24);
  EXPECT_TRUE(has5);
}

TEST(Export, WriteCsvRoundTrip) {
  CsvDoc doc;
  doc.name = "export_test_tmp";
  doc.rows.push_back({"h1", "h2"});
  doc.rows.push_back({"v1", "v2"});
  ASSERT_TRUE(write_csv(doc, "/tmp"));
  std::FILE* f = std::fopen("/tmp/export_test_tmp.csv", "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const auto n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "h1,h2\nv1,v2\n");
  std::remove("/tmp/export_test_tmp.csv");
}

TEST(Export, WriteCsvFailsOnBadDir) {
  CsvDoc doc;
  doc.name = "x";
  doc.rows.push_back({"a"});
  EXPECT_FALSE(write_csv(doc, "/nonexistent-dir-xyz"));
}

}  // namespace
}  // namespace wlm::analysis
