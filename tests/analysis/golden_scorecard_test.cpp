// Golden regression: checked-in renders of the paper's headline artifacts.
//
// The determinism suite proves a run equals itself across thread counts;
// this suite pins the run against *history*. Any change to the simulation,
// classification, or rendering path that shifts a single byte of Table 2,
// Table 3, Figure 3, or Figure 6 at the reference scale fails here and
// forces a deliberate golden update:
//
//   WLM_REGEN_GOLDEN=1 ctest -R GoldenScorecard   # rewrite the goldens
//
// The reference scale (12 networks, seed 2015) is small enough for tier-1
// but large enough that every pipeline stage contributes to the bytes.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/experiments.hpp"

#ifndef WLM_GOLDEN_DIR
#error "WLM_GOLDEN_DIR must point at tests/golden (set by tests/CMakeLists.txt)"
#endif

namespace wlm {
namespace {

analysis::ScenarioScale golden_scale() {
  analysis::ScenarioScale scale;
  scale.networks = 12;
  scale.seed = 2015;
  scale.threads = 2;  // goldens must not depend on this; determinism_test pins that
  return scale;
}

std::string golden_path(const std::string& name) {
  return std::string(WLM_GOLDEN_DIR) + "/" + name + ".golden";
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char chunk[4096];
  std::size_t n = 0;
  out.clear();
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) out.append(chunk, n);
  std::fclose(f);
  return true;
}

void check_golden(const std::string& name, const std::string& rendered) {
  const std::string path = golden_path(name);
  if (std::getenv("WLM_REGEN_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << "cannot write " << path;
    std::fwrite(rendered.data(), 1, rendered.size(), f);
    std::fclose(f);
    GTEST_SKIP() << "regenerated " << path;
  }
  std::string expected;
  ASSERT_TRUE(read_file(path, expected))
      << path << " missing — run with WLM_REGEN_GOLDEN=1 to create it";
  // Byte equality, but diagnose with the first diverging line so a drift
  // report reads like a diff, not a wall of text.
  if (rendered != expected) {
    std::size_t line = 1, pos = 0;
    const std::size_t limit = std::min(rendered.size(), expected.size());
    while (pos < limit && rendered[pos] == expected[pos]) {
      if (rendered[pos] == '\n') ++line;
      ++pos;
    }
    FAIL() << name << " drifted from its golden at line " << line
           << " (byte " << pos << "). If the change is intentional, rerun with "
           << "WLM_REGEN_GOLDEN=1 and commit the new golden.";
  }
}

TEST(GoldenScorecard, Table2NetworkSizes) {
  check_golden("table2", analysis::render_table2(golden_scale()));
}

TEST(GoldenScorecard, Table3OsUsage) {
  check_golden("table3", analysis::render_table3(analysis::run_usage_study(golden_scale())));
}

TEST(GoldenScorecard, Fig3DeliveryCdf) {
  check_golden("fig3", analysis::render_fig3(analysis::run_link_study(golden_scale())));
}

TEST(GoldenScorecard, Fig6Utilization) {
  check_golden("fig6",
               analysis::render_fig6(analysis::run_utilization_study(golden_scale())));
}

}  // namespace
}  // namespace wlm
