// Rendering smoke tests: every table/figure renderer produces output that
// names its subject and carries the paper-reference annotations.
#include "analysis/experiments.hpp"

#include <gtest/gtest.h>

namespace wlm::analysis {
namespace {

ScenarioScale tiny_scale() {
  ScenarioScale s;
  s.networks = 40;
  s.seed = 7;
  return s;
}

TEST(Render, Table2) {
  const auto out = render_table2(tiny_scale());
  EXPECT_NE(out.find("Education"), std::string::npos);
  EXPECT_NE(out.find("20,667"), std::string::npos);
}

TEST(Render, UsageTables) {
  const auto run = run_usage_study(tiny_scale());
  const auto t3 = render_table3(run);
  EXPECT_NE(t3.find("Windows"), std::string::npos);
  EXPECT_NE(t3.find("Apple iOS"), std::string::npos);
  EXPECT_NE(t3.find("paper: 1,950 TB"), std::string::npos);

  const auto t5 = render_table5(run);
  EXPECT_NE(t5.find("Netflix"), std::string::npos);
  EXPECT_NE(t5.find("Miscellaneous web"), std::string::npos);

  const auto t6 = render_table6(run);
  EXPECT_NE(t6.find("Video & music"), std::string::npos);
  EXPECT_NE(t6.find("File sharing"), std::string::npos);

  const auto overhead = render_wire_overhead(run);
  EXPECT_NE(overhead.find("flows classified"), std::string::npos);
  EXPECT_GT(run.flows_classified, 0u);

  const auto full = run_wire_overhead_study(tiny_scale());
  const auto full_render = render_wire_overhead_full(full);
  EXPECT_NE(full_render.find("kbit/s"), std::string::npos);
  EXPECT_GT(full.bytes_per_ap_week, 0.0);
  // The paper's budget: around (and certainly under) 1 kbit/s.
  EXPECT_LT(full.kbit_per_s, 1.0);
}

TEST(Render, SnapshotFigures) {
  const auto run = run_snapshot_study(tiny_scale());
  const auto t4 = render_table4(run);
  EXPECT_NE(t4.find("802.11ac"), std::string::npos);
  EXPECT_NE(t4.find("Two streams"), std::string::npos);
  const auto f1 = render_fig1(run);
  EXPECT_NE(f1.find("2.4 GHz"), std::string::npos);
  EXPECT_NE(f1.find("median SNR"), std::string::npos);
}

TEST(Render, NeighborFigures) {
  const auto run = run_neighbor_study(tiny_scale());
  const auto t7 = render_table7(run);
  EXPECT_NE(t7.find("55.47"), std::string::npos);
  EXPECT_NE(t7.find("six months ago"), std::string::npos);
  const auto f2 = render_fig2(run);
  EXPECT_NE(f2.find("2.4 ch 1"), std::string::npos);
  EXPECT_NE(f2.find("channel 1 vs channels 6/11"), std::string::npos);
}

TEST(Render, LinkFigures) {
  const auto run = run_link_study(tiny_scale());
  const auto f3 = render_fig3(run);
  EXPECT_NE(f3.find("delivery ratio"), std::string::npos);
  EXPECT_NE(f3.find("2.4 now"), std::string::npos);
  EXPECT_NE(render_fig4(run).find("Figure 4"), std::string::npos);
  EXPECT_NE(render_fig5(run).find("Figure 5"), std::string::npos);
}

TEST(Render, UtilizationFigures) {
  const auto run = run_utilization_study(tiny_scale());
  EXPECT_NE(render_fig6(run).find("paper: median 25%"), std::string::npos);
  EXPECT_NE(render_fig7(run).find("Pearson correlation"), std::string::npos);
  EXPECT_NE(render_fig8(run).find("5 GHz"), std::string::npos);
  EXPECT_NE(render_fig9(run).find("day"), std::string::npos);
  EXPECT_NE(render_fig10(run).find("decodable"), std::string::npos);
}

TEST(Render, SpectrumFigure) {
  const auto run = run_spectrum_study(7);
  const auto f11 = render_fig11(run);
  EXPECT_NE(f11.find("4096-point FFT"), std::string::npos);
  EXPECT_NE(f11.find("2.437 GHz"), std::string::npos);
  EXPECT_NE(f11.find("5.220 GHz"), std::string::npos);
}

TEST(Render, PercentileSummaryFormat) {
  const auto s = percentile_summary({0.1, 0.2, 0.3, 0.4, 0.5}, true);
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("(%)"), std::string::npos);
}

}  // namespace
}  // namespace wlm::analysis
