#include "backend/aggregate.hpp"

#include "core/rng.hpp"

#include <gtest/gtest.h>

namespace wlm::backend {
namespace {

using classify::AppId;
using classify::OsType;

wire::ApReport usage_report(std::uint32_t ap, MacAddress mac, AppId app,
                            std::uint64_t up, std::uint64_t down, std::int64_t ts = 1) {
  wire::ApReport r;
  r.ap_id = ap;
  r.timestamp_us = ts;
  r.usage.push_back(
      wire::ClientUsage{mac, static_cast<std::uint32_t>(app), up, down});
  return r;
}

TEST(Aggregate, RoamingMergesByMac) {
  // Paper SS2.3: usage is aggregated by MAC in the backend to handle roaming.
  ReportStore store;
  const auto mac = MacAddress::from_u64(0xABC);
  store.add(usage_report(1, mac, AppId::kYouTube, 100, 900));
  store.add(usage_report(2, mac, AppId::kYouTube, 50, 450));
  store.add(usage_report(3, mac, AppId::kNetflix, 10, 90));
  UsageAggregator agg;
  agg.consume(store, SimTime::epoch(), SimTime::from_micros(1'000'000));
  ASSERT_EQ(agg.client_count(), 1u);
  const auto& client = agg.clients().at(mac);
  EXPECT_EQ(client.ap_count, 3);
  EXPECT_EQ(client.upstream(), 160u);
  EXPECT_EQ(client.downstream(), 1440u);
  EXPECT_EQ(client.app_bytes.at(AppId::kYouTube).second, 1350u);
}

TEST(Aggregate, ByteConservationThroughPipeline) {
  ReportStore store;
  std::uint64_t total_in = 0;
  Rng rng(3);
  for (std::uint32_t i = 0; i < 200; ++i) {
    const auto up = rng.next_u64() % 10'000;
    const auto down = rng.next_u64() % 100'000;
    total_in += up + down;
    store.add(usage_report(i % 7, MacAddress::from_u64(i % 50),
                           static_cast<AppId>(1 + i % 30), up, down));
  }
  UsageAggregator agg;
  agg.consume(store, SimTime::epoch(), SimTime::from_micros(10));
  std::uint64_t total_out = 0;
  for (const auto& [mac, client] : agg.clients()) total_out += client.total();
  EXPECT_EQ(total_out, total_in);
}

TEST(Aggregate, OsByMajorityVote) {
  ReportStore store;
  const auto mac = MacAddress::from_u64(0xDEF);
  for (int i = 0; i < 3; ++i) {
    wire::ApReport r;
    r.ap_id = static_cast<std::uint32_t>(i);
    r.timestamp_us = 1;
    wire::ClientSnapshot snap;
    snap.client = mac;
    snap.os_id = static_cast<std::uint8_t>(i == 0 ? OsType::kLinux : OsType::kAndroid);
    r.clients.push_back(snap);
    store.add(r);
  }
  UsageAggregator agg;
  agg.consume(store, SimTime::epoch(), SimTime::from_micros(10));
  EXPECT_EQ(agg.clients().at(mac).os, OsType::kAndroid);
}

TEST(Aggregate, CapabilitiesUnionAcrossReports) {
  ReportStore store;
  const auto mac = MacAddress::from_u64(0x123);
  for (std::uint32_t bits : {0x1u, 0x4u}) {
    wire::ApReport r;
    r.ap_id = 1;
    r.timestamp_us = 1;
    wire::ClientSnapshot snap;
    snap.client = mac;
    snap.capability_bits = bits;
    r.clients.push_back(snap);
    store.add(r);
  }
  UsageAggregator agg;
  agg.consume(store, SimTime::epoch(), SimTime::from_micros(10));
  EXPECT_EQ(agg.clients().at(mac).capability_bits, 0x5u);
}

TEST(Aggregate, TimeWindowExcludesOutside) {
  ReportStore store;
  const auto mac = MacAddress::from_u64(1);
  store.add(usage_report(1, mac, AppId::kGmail, 10, 10, /*ts=*/100));
  store.add(usage_report(1, mac, AppId::kGmail, 10, 10, /*ts=*/999'999));
  UsageAggregator agg;
  agg.consume(store, SimTime::from_micros(0), SimTime::from_micros(500));
  EXPECT_EQ(agg.clients().at(mac).total(), 20u);
}

TEST(Aggregate, RollupsByOsAndApp) {
  ReportStore store;
  const auto mac_a = MacAddress::from_u64(1);
  const auto mac_b = MacAddress::from_u64(2);
  store.add(usage_report(1, mac_a, AppId::kYouTube, 0, 100));
  store.add(usage_report(1, mac_b, AppId::kYouTube, 0, 300));
  store.add(usage_report(1, mac_b, AppId::kNetflix, 0, 50));
  UsageAggregator agg;
  agg.consume(store, SimTime::epoch(), SimTime::from_micros(10));
  const auto apps = agg.by_app();
  EXPECT_EQ(apps.at(AppId::kYouTube).clients, 2u);
  EXPECT_EQ(apps.at(AppId::kYouTube).down, 400u);
  EXPECT_EQ(apps.at(AppId::kNetflix).clients, 1u);
}

TEST(AggregateMerge, CombinesClientsByMac) {
  // A roaming client whose reports landed on two different shards: the
  // merged view must look exactly like a single-backend aggregation.
  const auto mac = MacAddress::from_u64(0xABC);
  ReportStore store_a;
  ReportStore store_b;
  store_a.add(usage_report(1, mac, AppId::kYouTube, 100, 900));
  store_b.add(usage_report(2, mac, AppId::kYouTube, 50, 450));
  store_b.add(usage_report(3, mac, AppId::kNetflix, 10, 90));
  UsageAggregator a;
  UsageAggregator b;
  a.consume(store_a, SimTime::epoch(), SimTime::from_micros(10));
  b.consume(store_b, SimTime::epoch(), SimTime::from_micros(10));
  a.merge(b);
  ASSERT_EQ(a.client_count(), 1u);
  const auto& client = a.clients().at(mac);
  EXPECT_EQ(client.ap_count, 3);
  EXPECT_EQ(client.upstream(), 160u);
  EXPECT_EQ(client.downstream(), 1440u);
  EXPECT_EQ(client.app_bytes.at(AppId::kYouTube).second, 1350u);
}

TEST(AggregateMerge, OsMajorityDecidedAcrossShards) {
  // One Linux sighting on shard A, two Android sightings on shard B:
  // neither shard alone sees the majority, the merge must.
  const auto mac = MacAddress::from_u64(0xDEF);
  const auto sighting = [&](std::uint32_t ap, OsType os) {
    wire::ApReport r;
    r.ap_id = ap;
    r.timestamp_us = 1;
    wire::ClientSnapshot snap;
    snap.client = mac;
    snap.os_id = static_cast<std::uint8_t>(os);
    r.clients.push_back(snap);
    return r;
  };
  ReportStore store_a;
  ReportStore store_b;
  store_a.add(sighting(1, OsType::kLinux));
  store_b.add(sighting(2, OsType::kAndroid));
  store_b.add(sighting(3, OsType::kAndroid));
  UsageAggregator a;
  UsageAggregator b;
  a.consume(store_a, SimTime::epoch(), SimTime::from_micros(10));
  b.consume(store_b, SimTime::epoch(), SimTime::from_micros(10));
  EXPECT_EQ(a.clients().at(mac).os, OsType::kLinux);
  a.merge(b);
  EXPECT_EQ(a.clients().at(mac).os, OsType::kAndroid);
}

TEST(AggregateMerge, EquivalentToSingleAggregator) {
  ReportStore store_a;
  ReportStore store_b;
  Rng rng(9);
  for (std::uint32_t i = 0; i < 200; ++i) {
    const auto up = rng.next_u64() % 10'000;
    const auto down = rng.next_u64() % 100'000;
    auto r = usage_report(i % 7, MacAddress::from_u64(i % 40),
                          static_cast<AppId>(1 + i % 30), up, down);
    (i % 2 == 0 ? store_a : store_b).add(r);
  }
  UsageAggregator merged;
  UsageAggregator b;
  merged.consume(store_a, SimTime::epoch(), SimTime::from_micros(10));
  b.consume(store_b, SimTime::epoch(), SimTime::from_micros(10));
  merged.merge(b);

  UsageAggregator reference;
  reference.consume(store_a, SimTime::epoch(), SimTime::from_micros(10));
  reference.consume(store_b, SimTime::epoch(), SimTime::from_micros(10));

  ASSERT_EQ(merged.client_count(), reference.client_count());
  for (const auto& [mac, want] : reference.clients()) {
    const auto& got = merged.clients().at(mac);
    EXPECT_EQ(got.total(), want.total());
    EXPECT_EQ(got.ap_count, want.ap_count);
    EXPECT_EQ(got.os, want.os);
    EXPECT_EQ(got.capability_bits, want.capability_bits);
  }
}

TEST(AggregateMerge, MergeWithEmptyIsIdentity) {
  ReportStore store;
  store.add(usage_report(1, MacAddress::from_u64(5), AppId::kGmail, 10, 20));
  UsageAggregator agg;
  agg.consume(store, SimTime::epoch(), SimTime::from_micros(10));
  UsageAggregator empty;
  agg.merge(empty);
  EXPECT_EQ(agg.client_count(), 1u);
  EXPECT_EQ(agg.clients().at(MacAddress::from_u64(5)).total(), 30u);
  empty.merge(agg);
  EXPECT_EQ(empty.client_count(), 1u);
  EXPECT_EQ(empty.clients().at(MacAddress::from_u64(5)).total(), 30u);
}

TEST(Aggregate, CategoryClientsAreDistinct) {
  // A client using two video apps counts once in the Video & music row.
  ReportStore store;
  const auto mac = MacAddress::from_u64(7);
  store.add(usage_report(1, mac, AppId::kYouTube, 0, 10));
  store.add(usage_report(1, mac, AppId::kNetflix, 0, 10));
  UsageAggregator agg;
  agg.consume(store, SimTime::epoch(), SimTime::from_micros(10));
  const auto cats = agg.by_category();
  EXPECT_EQ(cats[static_cast<std::size_t>(classify::Category::kVideoMusic)].clients, 1u);
  EXPECT_EQ(cats[static_cast<std::size_t>(classify::Category::kVideoMusic)].down, 20u);
}

}  // namespace
}  // namespace wlm::backend
