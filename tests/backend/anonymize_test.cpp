#include "backend/anonymize.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wlm::backend {
namespace {

TEST(Anonymizer, Deterministic) {
  const Anonymizer anon(42);
  const auto mac = MacAddress::from_u64(0x3c0754aabbccULL);
  EXPECT_EQ(anon.pseudonym(mac), anon.pseudonym(mac));
}

TEST(Anonymizer, DifferentSaltsUnlinkable) {
  const auto mac = MacAddress::from_u64(0x3c0754aabbccULL);
  EXPECT_NE(Anonymizer(1).pseudonym(mac), Anonymizer(2).pseudonym(mac));
}

TEST(Anonymizer, OutputIsLocallyAdministeredUnicast) {
  const Anonymizer anon(7);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto p = anon.pseudonym(MacAddress::from_u64(i));
    EXPECT_TRUE(p.locally_administered());
    EXPECT_FALSE(p.multicast());
  }
}

TEST(Anonymizer, DistinctInputsRarelyCollide) {
  const Anonymizer anon(9);
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    outputs.insert(anon.pseudonym(MacAddress::from_u64(i)).to_u64());
  }
  EXPECT_EQ(outputs.size(), 10'000u);
}

TEST(Anonymizer, StringPseudonyms) {
  const Anonymizer anon(11);
  const auto p = anon.pseudonym(std::string("Corp Guest WiFi"));
  EXPECT_EQ(p.rfind("anon-", 0), 0u);
  EXPECT_EQ(p, anon.pseudonym(std::string("Corp Guest WiFi")));
  EXPECT_NE(p, anon.pseudonym(std::string("Other SSID")));
}

}  // namespace
}  // namespace wlm::backend
