#include "backend/health.hpp"

#include <gtest/gtest.h>

namespace wlm::backend {
namespace {

wire::ApReport report_at(std::uint32_t ap, Duration t, std::size_t neighbors = 10) {
  wire::ApReport r;
  r.ap_id = ap;
  r.timestamp_us = t.as_micros();
  r.neighbors.resize(neighbors);
  return r;
}

HealthPolicy daily_policy() {
  HealthPolicy p;
  p.expected_interval = Duration::hours(24);
  return p;
}

TEST(Health, HealthyFleetHasNoFindings) {
  ReportStore store;
  for (int d = 0; d < 7; ++d) store.add(report_at(1, Duration::days(d)));
  const HealthMonitor monitor(daily_policy());
  EXPECT_TRUE(monitor.analyze(store, SimTime::epoch() + Duration::days(7)).empty());
}

TEST(Health, OfflineApFlagged) {
  ReportStore store;
  store.add(report_at(1, Duration::days(0)));
  const HealthMonitor monitor(daily_policy());
  const auto findings = monitor.analyze(store, SimTime::epoch() + Duration::days(10));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].issue, HealthIssue::kOffline);
  EXPECT_EQ(findings[0].ap, ApId{1});
}

TEST(Health, ReportingGapFlagged) {
  ReportStore store;
  store.add(report_at(2, Duration::days(0)));
  store.add(report_at(2, Duration::days(5)));  // 5-day hole
  store.add(report_at(2, Duration::days(6)));
  const HealthMonitor monitor(daily_policy());
  const auto findings = monitor.analyze(store, SimTime::epoch() + Duration::days(7));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].issue, HealthIssue::kReportingGaps);
}

TEST(Health, SkyscraperNeighborPressure) {
  // The §6.1 signature: an AP suddenly reporting hundreds of neighbors.
  ReportStore store;
  store.add(report_at(3, Duration::days(0), 30));
  store.add(report_at(3, Duration::days(1), 950));
  const HealthMonitor monitor(daily_policy());
  const auto findings = monitor.analyze(store, SimTime::epoch() + Duration::days(2));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].issue, HealthIssue::kNeighborPressure);
  EXPECT_NE(findings[0].detail.find("950"), std::string::npos);
}

TEST(Health, TunnelSheddingAndFlapping) {
  Tunnel tunnel(ApId{4}, /*queue_limit=*/2);
  for (int i = 0; i < 5; ++i) tunnel.enqueue({std::uint8_t(i)});
  for (int i = 0; i < 8; ++i) {
    tunnel.disconnect();
    tunnel.reconnect();
  }
  const HealthMonitor monitor(daily_policy());
  const auto findings = monitor.analyze_tunnel(tunnel);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].issue, HealthIssue::kTelemetryShed);
  EXPECT_EQ(findings[1].issue, HealthIssue::kWanFlapping);
}

TEST(Health, RenderListsFindings) {
  const std::vector<HealthFinding> findings{
      {ApId{7}, HealthIssue::kOffline, "silent"},
      {ApId{9}, HealthIssue::kNeighborPressure, "800 entries"},
  };
  const auto text = HealthMonitor::render(findings);
  EXPECT_NE(text.find("AP7"), std::string::npos);
  EXPECT_NE(text.find("neighbor-table-pressure"), std::string::npos);
  EXPECT_EQ(HealthMonitor::render({}), "fleet healthy: no findings\n");
}

TEST(Health, EmptyStoreIsHealthy) {
  ReportStore store;
  const HealthMonitor monitor(daily_policy());
  EXPECT_TRUE(monitor.analyze(store, SimTime::epoch()).empty());
}

}  // namespace
}  // namespace wlm::backend
