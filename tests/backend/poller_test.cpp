#include "backend/poller.hpp"

#include <gtest/gtest.h>

#include "wire/framing.hpp"

namespace wlm::backend {
namespace {

wire::ApReport report_for(std::uint32_t ap, std::int64_t ts = 1000) {
  wire::ApReport r;
  r.ap_id = ap;
  r.timestamp_us = ts;
  return r;
}

TEST(Poller, HarvestsAcrossTunnels) {
  ReportStore store;
  Poller poller(store);
  Tunnel t1(ApId{1});
  Tunnel t2(ApId{2});
  poller.attach(t1);
  poller.attach(t2);
  t1.enqueue(frame_report(report_for(1)));
  t2.enqueue(frame_report(report_for(2)));
  t2.enqueue(frame_report(report_for(2, 2000)));
  poller.poll_all();
  EXPECT_EQ(store.report_count(), 3u);
  EXPECT_EQ(store.reports_for(ApId{2}).size(), 2u);
  EXPECT_EQ(poller.stats().frames_harvested, 3u);
  EXPECT_EQ(poller.stats().corrupt_frames, 0u);
}

TEST(Poller, CorruptFramesCountedNotStored) {
  ReportStore store;
  Poller poller(store);
  Tunnel t(ApId{3});
  poller.attach(t);
  auto framed = frame_report(report_for(3));
  framed[framed.size() / 2] ^= 0xFF;  // corrupt mid-payload
  t.enqueue(std::move(framed));
  t.enqueue(frame_report(report_for(3)));
  poller.poll_all();
  EXPECT_EQ(store.report_count(), 1u);
  EXPECT_EQ(poller.stats().corrupt_frames, 1u);
}

TEST(Poller, MalformedReportInValidFrameCounted) {
  ReportStore store;
  Poller poller(store);
  Tunnel t(ApId{4});
  poller.attach(t);
  // A frame with valid CRC around garbage that is not an ApReport.
  std::vector<std::uint8_t> stream;
  const std::vector<std::uint8_t> junk{0x00, 0x13, 0x37};
  wire::append_frame(stream, junk);
  t.enqueue(std::move(stream));
  poller.poll_all();
  EXPECT_EQ(store.report_count(), 0u);
  EXPECT_EQ(poller.stats().malformed_reports, 1u);
}

TEST(Poller, BudgetRegulatesPerCycle) {
  ReportStore store;
  Poller poller(store);
  Tunnel t(ApId{5});
  poller.attach(t);
  for (int i = 0; i < 10; ++i) t.enqueue(frame_report(report_for(5, i)));
  poller.poll_all(3);
  EXPECT_EQ(store.report_count(), 3u);
  poller.poll_all(3);
  poller.poll_all(100);
  EXPECT_EQ(store.report_count(), 10u);
}

TEST(Poller, DisconnectedTunnelSkipped) {
  ReportStore store;
  Poller poller(store);
  Tunnel t(ApId{6});
  poller.attach(t);
  t.enqueue(frame_report(report_for(6)));
  t.disconnect();
  poller.poll_all();
  EXPECT_EQ(store.report_count(), 0u);
  t.reconnect();
  poller.poll_all();
  EXPECT_EQ(store.report_count(), 1u);
}

TEST(FrameReport, RoundTripsThroughFraming) {
  const auto framed = frame_report(report_for(7, 424242));
  const auto decoded = wire::decode_stream(framed);
  ASSERT_EQ(decoded.payloads.size(), 1u);
  const auto report = wire::decode_report(decoded.payloads[0]);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->ap_id, 7u);
  EXPECT_EQ(report->timestamp_us, 424242);
}

}  // namespace
}  // namespace wlm::backend
