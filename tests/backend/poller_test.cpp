#include "backend/poller.hpp"

#include <gtest/gtest.h>

#include "wire/framing.hpp"

namespace wlm::backend {
namespace {

wire::ApReport report_for(std::uint32_t ap, std::int64_t ts = 1000) {
  wire::ApReport r;
  r.ap_id = ap;
  r.timestamp_us = ts;
  return r;
}

TEST(Poller, HarvestsAcrossTunnels) {
  ReportStore store;
  Poller poller(store);
  Tunnel t1(ApId{1});
  Tunnel t2(ApId{2});
  poller.attach(t1);
  poller.attach(t2);
  t1.enqueue(frame_report(report_for(1)));
  t2.enqueue(frame_report(report_for(2)));
  t2.enqueue(frame_report(report_for(2, 2000)));
  poller.poll_all();
  EXPECT_EQ(store.report_count(), 3u);
  EXPECT_EQ(store.reports_for(ApId{2}).size(), 2u);
  EXPECT_EQ(poller.stats().frames_harvested, 3u);
  EXPECT_EQ(poller.stats().corrupt_frames, 0u);
}

TEST(Poller, CorruptFramesCountedNotStored) {
  ReportStore store;
  Poller poller(store);
  Tunnel t(ApId{3});
  poller.attach(t);
  auto framed = frame_report(report_for(3));
  framed[framed.size() / 2] ^= 0xFF;  // corrupt mid-payload
  t.enqueue(std::move(framed));
  t.enqueue(frame_report(report_for(3)));
  poller.poll_all();
  EXPECT_EQ(store.report_count(), 1u);
  EXPECT_EQ(poller.stats().corrupt_frames, 1u);
}

TEST(Poller, MalformedReportInValidFrameCounted) {
  ReportStore store;
  Poller poller(store);
  Tunnel t(ApId{4});
  poller.attach(t);
  // A frame with valid CRC around garbage that is not an ApReport.
  std::vector<std::uint8_t> stream;
  const std::vector<std::uint8_t> junk{0x00, 0x13, 0x37};
  wire::append_frame(stream, junk);
  t.enqueue(std::move(stream));
  poller.poll_all();
  EXPECT_EQ(store.report_count(), 0u);
  EXPECT_EQ(poller.stats().malformed_reports, 1u);
}

TEST(Poller, BudgetRegulatesPerCycle) {
  ReportStore store;
  Poller poller(store);
  Tunnel t(ApId{5});
  poller.attach(t);
  for (int i = 0; i < 10; ++i) t.enqueue(frame_report(report_for(5, i)));
  poller.poll_all(3);
  EXPECT_EQ(store.report_count(), 3u);
  poller.poll_all(3);
  poller.poll_all(100);
  EXPECT_EQ(store.report_count(), 10u);
}

TEST(Poller, DisconnectedTunnelSkipped) {
  ReportStore store;
  Poller poller(store);
  Tunnel t(ApId{6});
  poller.attach(t);
  t.enqueue(frame_report(report_for(6)));
  t.disconnect();
  poller.poll_all();
  EXPECT_EQ(store.report_count(), 0u);
  t.reconnect();
  poller.poll_all();
  EXPECT_EQ(store.report_count(), 1u);
}

TEST(Poller, CorruptFrameNotCountedAsHarvested) {
  // A frame that failed its CRC delivered nothing: it must not inflate
  // frames_harvested or bytes_harvested.
  ReportStore store;
  Poller poller(store);
  Tunnel t(ApId{10});
  poller.attach(t);
  auto framed = frame_report(report_for(10));
  framed[framed.size() / 2] ^= 0x01;
  t.enqueue(std::move(framed));
  poller.poll_all();
  EXPECT_EQ(poller.stats().frames_harvested, 0u);
  EXPECT_EQ(poller.stats().bytes_harvested, 0u);
  EXPECT_EQ(poller.stats().corrupt_frames, 1u);
  EXPECT_EQ(poller.stats().reports_stored, 0u);
}

TEST(Poller, PerTunnelCountersAttributeDamage) {
  ReportStore store;
  Poller poller(store);
  Tunnel good(ApId{11});
  Tunnel bad(ApId{12});
  poller.attach(good);
  poller.attach(bad);
  good.enqueue(frame_report(report_for(11)));
  auto framed = frame_report(report_for(12));
  framed[framed.size() / 2] ^= 0x01;
  bad.enqueue(std::move(framed));
  poller.poll_all();
  const TunnelCounters* gc = poller.counters_for(ApId{11});
  const TunnelCounters* bc = poller.counters_for(ApId{12});
  ASSERT_NE(gc, nullptr);
  ASSERT_NE(bc, nullptr);
  EXPECT_EQ(gc->reports_stored, 1u);
  EXPECT_EQ(gc->corrupt_frames, 0u);
  EXPECT_EQ(gc->backoff_level, 0);
  EXPECT_EQ(bc->corrupt_frames, 1u);
  EXPECT_EQ(bc->reports_stored, 0u);
  EXPECT_EQ(bc->backoff_level, 1);
  EXPECT_EQ(poller.counters_for(ApId{999}), nullptr);
}

TEST(Poller, RepeatedCorruptionBacksOffThenQuarantines) {
  ReportStore store;
  Poller poller(store);
  Tunnel t(ApId{13});
  poller.attach(t);
  auto corrupt_frame = [] {
    auto framed = frame_report(report_for(13));
    framed[framed.size() / 2] ^= 0x01;
    return framed;
  };
  // Keep the device spewing garbage; the poller should poll it less and
  // less instead of hammering it every cycle.
  for (int cycle = 0; cycle < 40; ++cycle) {
    if (t.queued() == 0) t.enqueue(corrupt_frame());
    poller.poll_all();
  }
  const TunnelCounters* tc = poller.counters_for(ApId{13});
  ASSERT_NE(tc, nullptr);
  EXPECT_TRUE(tc->quarantined);
  EXPECT_EQ(tc->backoff_level, 4);
  EXPECT_GT(tc->cycles_backed_off, 10u);
  EXPECT_GT(poller.stats().polls_skipped_backoff, 10u);
  // One clean poll lifts the quarantine. Drain the stale corrupt frame the
  // quarantine left queued so the next poll sees only clean traffic.
  (void)t.poll();
  t.enqueue(frame_report(report_for(13)));
  poller.poll_all(/*per_tunnel_budget=*/64, /*ignore_backoff=*/true);
  EXPECT_FALSE(poller.counters_for(ApId{13})->quarantined);
  EXPECT_EQ(poller.counters_for(ApId{13})->backoff_level, 0);
}

TEST(Poller, QuarantineReleasePinsCounterSequence) {
  // Pins the exact backoff ladder through quarantine and release: each
  // corrupt poll doubles the punishment window ((1 << level) - 1 skipped
  // cycles), one clean poll resets everything, and none of the skip/backoff
  // counters move again after release.
  ReportStore store;
  Poller poller(store);
  Tunnel t(ApId{15});
  poller.attach(t);
  auto corrupt_frame = [] {
    auto framed = frame_report(report_for(15));
    framed[framed.size() / 2] ^= 0x01;
    return framed;
  };

  // Climb the ladder: feed one corrupt frame per *eligible* cycle (the
  // poller skips the tunnel while backing off, so eligible cycles are
  // spaced (1 << level) - 1 apart).
  int expected_skips = 0;
  for (int level = 1; level <= 4; ++level) {
    t.enqueue(corrupt_frame());
    poller.poll_all();
    const TunnelCounters* tc = poller.counters_for(ApId{15});
    ASSERT_NE(tc, nullptr);
    EXPECT_EQ(tc->backoff_level, level);
    EXPECT_EQ(tc->backoff_remaining, (1 << level) - 1);
    EXPECT_EQ(tc->quarantined, level >= 4);
    // Serve out this level's punishment window exactly.
    for (int skip = 0; skip < (1 << level) - 1; ++skip) poller.poll_all();
    expected_skips += (1 << level) - 1;
    EXPECT_EQ(poller.stats().polls_skipped_backoff,
              static_cast<std::uint64_t>(expected_skips));
    EXPECT_EQ(tc->backoff_remaining, 0);
  }
  EXPECT_EQ(poller.counters_for(ApId{15})->cycles_backed_off,
            static_cast<std::uint64_t>(expected_skips));

  // One clean poll releases the quarantine and zeroes the ladder.
  t.enqueue(frame_report(report_for(15)));
  poller.poll_all();
  const TunnelCounters* tc = poller.counters_for(ApId{15});
  EXPECT_FALSE(tc->quarantined);
  EXPECT_EQ(tc->backoff_level, 0);
  EXPECT_EQ(tc->backoff_remaining, 0);
  EXPECT_EQ(tc->reports_stored, 1u);

  // Post-release cycles poll normally: the skip counters must not move
  // again (a double-counted release would inflate them here).
  for (int i = 0; i < 5; ++i) poller.poll_all();
  EXPECT_EQ(poller.stats().polls_skipped_backoff,
            static_cast<std::uint64_t>(expected_skips));
  EXPECT_EQ(tc->cycles_backed_off, static_cast<std::uint64_t>(expected_skips));
  // And another corruption starts the ladder from the bottom, not from the
  // pre-release level.
  t.enqueue(corrupt_frame());
  poller.poll_all();
  EXPECT_EQ(tc->backoff_level, 1);
  EXPECT_FALSE(tc->quarantined);
}

TEST(Poller, IgnoreBackoffDrainsBackedOffTunnel) {
  ReportStore store;
  Poller poller(store);
  Tunnel t(ApId{14});
  poller.attach(t);
  auto framed = frame_report(report_for(14));
  framed[framed.size() / 2] ^= 0x01;
  t.enqueue(std::move(framed));
  poller.poll_all();  // corrupt -> backed off
  t.enqueue(frame_report(report_for(14, 2000)));
  poller.poll_all();  // skipped: still backing off
  EXPECT_EQ(store.report_count(), 0u);
  EXPECT_EQ(t.queued(), 1u);
  // The final harvest overrides backoff so nothing recoverable strands.
  poller.poll_all(/*per_tunnel_budget=*/64, /*ignore_backoff=*/true);
  EXPECT_EQ(store.report_count(), 1u);
}

TEST(FrameReport, RoundTripsThroughFraming) {
  const auto framed = frame_report(report_for(7, 424242));
  const auto decoded = wire::decode_stream(framed);
  ASSERT_EQ(decoded.payloads.size(), 1u);
  const auto report = wire::decode_report(decoded.payloads[0]);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->ap_id, 7u);
  EXPECT_EQ(report->timestamp_us, 424242);
}

}  // namespace
}  // namespace wlm::backend
