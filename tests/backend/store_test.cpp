#include "backend/store.hpp"

#include <gtest/gtest.h>

namespace wlm::backend {
namespace {

wire::ApReport make(std::uint32_t ap, std::int64_t ts) {
  wire::ApReport r;
  r.ap_id = ap;
  r.timestamp_us = ts;
  return r;
}

TEST(Store, CountsAndGroupsByAp) {
  ReportStore store;
  store.add(make(1, 100));
  store.add(make(1, 200));
  store.add(make(2, 100));
  EXPECT_EQ(store.report_count(), 3u);
  EXPECT_EQ(store.ap_count(), 2u);
  EXPECT_EQ(store.reports_for(ApId{1}).size(), 2u);
  EXPECT_TRUE(store.reports_for(ApId{99}).empty());
}

TEST(Store, ForEachVisitsAll) {
  ReportStore store;
  for (std::uint32_t ap = 1; ap <= 5; ++ap) {
    for (int i = 0; i < 3; ++i) store.add(make(ap, i * 1000));
  }
  int visits = 0;
  store.for_each([&](const wire::ApReport&) { ++visits; });
  EXPECT_EQ(visits, 15);
}

TEST(Store, TimeRangeFilterIsHalfOpen) {
  ReportStore store;
  store.add(make(1, 100));
  store.add(make(1, 200));
  store.add(make(1, 300));
  int visits = 0;
  store.for_each_in(SimTime::from_micros(100), SimTime::from_micros(300),
                    [&](const wire::ApReport&) { ++visits; });
  EXPECT_EQ(visits, 2);  // 100 and 200; 300 excluded
}

TEST(Store, ApsSorted) {
  ReportStore store;
  store.add(make(5, 1));
  store.add(make(1, 1));
  store.add(make(3, 1));
  const auto aps = store.aps();
  ASSERT_EQ(aps.size(), 3u);
  EXPECT_EQ(aps[0], ApId{1});
  EXPECT_EQ(aps[2], ApId{5});
}

TEST(Store, ArrivalOrderPreservedPerAp) {
  ReportStore store;
  store.add(make(1, 300));
  store.add(make(1, 100));  // out-of-order timestamps arrive as-is
  const auto& reports = store.reports_for(ApId{1});
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].timestamp_us, 300);
  EXPECT_EQ(reports[1].timestamp_us, 100);
}

TEST(Store, MergeAppendsAfterExistingPerAp) {
  ReportStore dst;
  dst.add(make(1, 100));
  ReportStore src;
  src.add(make(1, 200));
  src.add(make(1, 300));
  src.add(make(2, 400));
  dst.merge(std::move(src));
  EXPECT_EQ(dst.report_count(), 4u);
  const auto& ap1 = dst.reports_for(ApId{1});
  ASSERT_EQ(ap1.size(), 3u);
  EXPECT_EQ(ap1[0].timestamp_us, 100);
  EXPECT_EQ(ap1[1].timestamp_us, 200);
  EXPECT_EQ(ap1[2].timestamp_us, 300);
  EXPECT_EQ(dst.reports_for(ApId{2}).size(), 1u);
}

TEST(Store, MergeLeavesSourceEmpty) {
  ReportStore dst;
  ReportStore src;
  src.add(make(7, 1));
  dst.merge(std::move(src));
  EXPECT_EQ(src.report_count(), 0u);  // NOLINT(bugprone-use-after-move): documented post-state
  EXPECT_EQ(src.ap_count(), 0u);
  EXPECT_EQ(dst.report_count(), 1u);
}

TEST(Store, MergeEmptySourceIsNoOp) {
  ReportStore dst;
  dst.add(make(3, 50));
  dst.merge(ReportStore{});
  EXPECT_EQ(dst.report_count(), 1u);
  EXPECT_EQ(dst.reports_for(ApId{3}).size(), 1u);
}

TEST(Store, FixedMergeOrderGivesIdenticalContent) {
  // The sharded harvest merges shard stores in fleet order regardless of
  // which worker thread filled them; same inputs in the same merge order
  // must yield the same per-AP sequences.
  auto build = [](int salt) {
    ReportStore shard;
    shard.add(make(1, 10 + salt));
    shard.add(make(2, 20 + salt));
    return shard;
  };
  ReportStore a;
  a.merge(build(0));
  a.merge(build(100));
  ReportStore b;
  b.merge(build(0));
  b.merge(build(100));
  for (const auto ap : a.aps()) {
    const auto& ra = a.reports_for(ap);
    const auto& rb = b.reports_for(ap);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].timestamp_us, rb[i].timestamp_us);
    }
  }
}

}  // namespace
}  // namespace wlm::backend
