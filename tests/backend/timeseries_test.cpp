#include "backend/timeseries.hpp"

#include <gtest/gtest.h>

namespace wlm::backend {
namespace {

SeriesKey key(const char* metric, std::uint64_t entity = 1) {
  return SeriesKey{metric, entity};
}

SimTime at_hours(int h) { return SimTime::epoch() + Duration::hours(h); }

TEST(TimeSeries, AppendAndQueryRange) {
  TimeSeriesStore store;
  for (int h = 0; h < 10; ++h) store.append(key("util24"), at_hours(h), h * 0.1);
  const auto points = store.query(key("util24"), at_hours(2), at_hours(5));
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].value, 0.2);
  EXPECT_DOUBLE_EQ(points[2].value, 0.4);
}

TEST(TimeSeries, SeriesAreIndependent) {
  TimeSeriesStore store;
  store.append(key("util24", 1), at_hours(0), 1.0);
  store.append(key("util24", 2), at_hours(0), 2.0);
  store.append(key("util5", 1), at_hours(0), 3.0);
  EXPECT_EQ(store.series_count(), 3u);
  EXPECT_EQ(store.point_count(key("util24", 1)), 1u);
  EXPECT_DOUBLE_EQ(store.latest(key("util5", 1))->value, 3.0);
}

TEST(TimeSeries, OutOfOrderAppendsSorted) {
  // WAN catch-up after a tunnel outage delivers stale reports late.
  TimeSeriesStore store;
  store.append(key("m"), at_hours(5), 5.0);
  store.append(key("m"), at_hours(1), 1.0);
  store.append(key("m"), at_hours(3), 3.0);
  const auto points = store.query(key("m"), at_hours(0), at_hours(10));
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].value, 1.0);
  EXPECT_DOUBLE_EQ(points[1].value, 3.0);
  EXPECT_DOUBLE_EQ(points[2].value, 5.0);
}

TEST(TimeSeries, DownsampleMean) {
  TimeSeriesStore store;
  // Two samples per hour for four hours.
  for (int h = 0; h < 4; ++h) {
    store.append(key("m"), at_hours(h), 1.0);
    store.append(key("m"), at_hours(h) + Duration::minutes(30), 3.0);
  }
  const auto buckets =
      store.downsample(key("m"), at_hours(0), at_hours(4), Duration::hours(1), Agg::kMean);
  ASSERT_EQ(buckets.size(), 4u);
  for (const auto& b : buckets) {
    EXPECT_DOUBLE_EQ(b.value, 2.0);
    EXPECT_EQ(b.samples, 2u);
  }
}

TEST(TimeSeries, DownsampleAggregations) {
  TimeSeriesStore store;
  store.append(key("m"), at_hours(0), 1.0);
  store.append(key("m"), at_hours(0) + Duration::minutes(10), 5.0);
  const auto max_b =
      store.downsample(key("m"), at_hours(0), at_hours(1), Duration::hours(1), Agg::kMax);
  const auto min_b =
      store.downsample(key("m"), at_hours(0), at_hours(1), Duration::hours(1), Agg::kMin);
  const auto sum_b =
      store.downsample(key("m"), at_hours(0), at_hours(1), Duration::hours(1), Agg::kSum);
  const auto cnt_b =
      store.downsample(key("m"), at_hours(0), at_hours(1), Duration::hours(1), Agg::kCount);
  EXPECT_DOUBLE_EQ(max_b[0].value, 5.0);
  EXPECT_DOUBLE_EQ(min_b[0].value, 1.0);
  EXPECT_DOUBLE_EQ(sum_b[0].value, 6.0);
  EXPECT_DOUBLE_EQ(cnt_b[0].value, 2.0);
}

TEST(TimeSeries, EmptyBucketsOmitted) {
  TimeSeriesStore store;
  store.append(key("m"), at_hours(0), 1.0);
  store.append(key("m"), at_hours(5), 2.0);
  const auto buckets =
      store.downsample(key("m"), at_hours(0), at_hours(6), Duration::hours(1), Agg::kMean);
  EXPECT_EQ(buckets.size(), 2u);
}

TEST(TimeSeries, CompactRollsUpOldPoints) {
  Retention retention;
  retention.raw_horizon = Duration::days(1);
  retention.rollup_width = Duration::hours(1);
  TimeSeriesStore store(retention);
  // Four samples in one old hour, plus a fresh one.
  for (int m = 0; m < 4; ++m) {
    store.append(key("m"), at_hours(1) + Duration::minutes(m * 10), 1.0 + m);
  }
  store.append(key("m"), at_hours(47), 9.0);
  store.compact(at_hours(48));
  // The old hour collapsed into one rollup point; the fresh one survives raw.
  EXPECT_EQ(store.point_count(key("m")), 2u);
  const auto points = store.query(key("m"), SimTime::epoch(), at_hours(48));
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].value, 2.5);  // mean of 1..4
  EXPECT_DOUBLE_EQ(points[1].value, 9.0);
}

TEST(TimeSeries, CompactIsIdempotent) {
  TimeSeriesStore store;
  for (int h = 0; h < 24; ++h) store.append(key("m"), at_hours(h), h);
  store.compact(at_hours(24 * 30));
  const auto count = store.point_count(key("m"));
  store.compact(at_hours(24 * 30));
  EXPECT_EQ(store.point_count(key("m")), count);
}

TEST(TimeSeries, RollupsVisibleInQueries) {
  Retention retention;
  retention.raw_horizon = Duration::hours(1);
  TimeSeriesStore store(retention);
  store.append(key("m"), at_hours(0), 4.0);
  store.compact(at_hours(10));
  const auto points = store.query(key("m"), SimTime::epoch(), at_hours(10));
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].value, 4.0);
}

TEST(TimeSeries, KeysForMetric) {
  TimeSeriesStore store;
  store.append(key("util24", 1), at_hours(0), 0.1);
  store.append(key("util24", 2), at_hours(0), 0.2);
  store.append(key("bytes", 1), at_hours(0), 10.0);
  const auto keys = store.keys_for_metric("util24");
  EXPECT_EQ(keys.size(), 2u);
}

TEST(TimeSeries, LatestOnEmpty) {
  TimeSeriesStore store;
  EXPECT_FALSE(store.latest(key("missing")).has_value());
}

TEST(TimeSeriesMerge, MovesNewSeriesAndEmptiesSource) {
  TimeSeriesStore dst;
  TimeSeriesStore src;
  dst.append(key("a"), at_hours(0), 1.0);
  src.append(key("b"), at_hours(0), 2.0);
  dst.merge(std::move(src));
  EXPECT_EQ(dst.series_count(), 2u);
  EXPECT_EQ(src.series_count(), 0u);  // NOLINT(bugprone-use-after-move): spec'd
  EXPECT_DOUBLE_EQ(dst.latest(key("b"))->value, 2.0);
}

TEST(TimeSeriesMerge, InterleavesExistingRawPoints) {
  // Two shards observed the same link at alternating hours; the merged
  // series must read back in time order.
  TimeSeriesStore dst;
  TimeSeriesStore src;
  for (int h : {0, 2, 4}) dst.append(key("m"), at_hours(h), h);
  for (int h : {1, 3}) src.append(key("m"), at_hours(h), h);
  dst.merge(std::move(src));
  const auto points = dst.query(key("m"), at_hours(0), at_hours(5));
  ASSERT_EQ(points.size(), 5u);
  for (int h = 0; h < 5; ++h) EXPECT_DOUBLE_EQ(points[h].value, h);
}

TEST(TimeSeriesMerge, EqualTimestampsKeepDestinationFirst) {
  TimeSeriesStore dst;
  TimeSeriesStore src;
  dst.append(key("m"), at_hours(1), 1.0);
  src.append(key("m"), at_hours(1), 2.0);
  dst.merge(std::move(src));
  const auto points = dst.query(key("m"), at_hours(0), at_hours(2));
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].value, 1.0);
  EXPECT_DOUBLE_EQ(points[1].value, 2.0);
}

TEST(TimeSeriesMerge, CarriesRollupsAcross) {
  Retention retention;
  retention.raw_horizon = Duration::hours(1);
  TimeSeriesStore dst;
  TimeSeriesStore src(retention);
  src.append(key("m"), at_hours(0), 4.0);
  src.compact(at_hours(10));  // the source point now lives only as a rollup
  dst.append(key("m"), at_hours(9), 9.0);
  dst.merge(std::move(src));
  const auto points = dst.query(key("m"), SimTime::epoch(), at_hours(10));
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].value, 4.0);
  EXPECT_DOUBLE_EQ(points[1].value, 9.0);
}

TEST(TimeSeriesMerge, EquivalentToSingleStoreAppends) {
  TimeSeriesStore merged;
  TimeSeriesStore shard_a;
  TimeSeriesStore shard_b;
  TimeSeriesStore reference;
  for (int h = 0; h < 20; ++h) {
    TimeSeriesStore& shard = (h % 2 == 0) ? shard_a : shard_b;
    shard.append(key("m", static_cast<std::uint64_t>(h % 3)), at_hours(h), h * 0.5);
    reference.append(key("m", static_cast<std::uint64_t>(h % 3)), at_hours(h), h * 0.5);
  }
  merged.merge(std::move(shard_a));
  merged.merge(std::move(shard_b));
  EXPECT_EQ(merged.series_count(), reference.series_count());
  for (std::uint64_t entity = 0; entity < 3; ++entity) {
    const auto got = merged.query(key("m", entity), SimTime::epoch(), at_hours(20));
    const auto want = reference.query(key("m", entity), SimTime::epoch(), at_hours(20));
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].time.as_micros(), want[i].time.as_micros());
      EXPECT_DOUBLE_EQ(got[i].value, want[i].value);
    }
  }
}

}  // namespace
}  // namespace wlm::backend
