#include "backend/tunnel.hpp"

#include <gtest/gtest.h>

namespace wlm::backend {
namespace {

std::vector<std::uint8_t> frame(std::uint8_t tag) { return {tag, tag, tag}; }

TEST(Tunnel, DeliversInOrder) {
  Tunnel t(ApId{1});
  t.enqueue(frame(1));
  t.enqueue(frame(2));
  const auto out = t.poll();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], frame(1));
  EXPECT_EQ(out[1], frame(2));
  EXPECT_EQ(t.queued(), 0u);
}

TEST(Tunnel, DisconnectedPollReturnsNothing) {
  Tunnel t(ApId{2});
  t.enqueue(frame(1));
  t.disconnect();
  EXPECT_FALSE(t.connected());
  EXPECT_TRUE(t.poll().empty());
  EXPECT_EQ(t.queued(), 1u);  // still queued, not lost
}

TEST(Tunnel, QueuedDataSurvivesDisconnect) {
  // Paper SS2: "the backend polls for queued information when the
  // connection is reestablished".
  Tunnel t(ApId{3});
  t.disconnect();
  for (std::uint8_t i = 0; i < 10; ++i) t.enqueue(frame(i));
  t.reconnect();
  EXPECT_EQ(t.poll().size(), 10u);
  EXPECT_EQ(t.stats().frames_delivered, 10u);
  EXPECT_EQ(t.stats().frames_dropped, 0u);
}

TEST(Tunnel, BudgetedPollLeavesRemainder) {
  Tunnel t(ApId{4});
  for (std::uint8_t i = 0; i < 10; ++i) t.enqueue(frame(i));
  EXPECT_EQ(t.poll(4).size(), 4u);
  EXPECT_EQ(t.queued(), 6u);
  EXPECT_EQ(t.poll(100).size(), 6u);
}

TEST(Tunnel, BoundedQueueShedsOldest) {
  Tunnel t(ApId{5}, /*queue_limit=*/3);
  for (std::uint8_t i = 0; i < 5; ++i) t.enqueue(frame(i));
  EXPECT_EQ(t.stats().frames_dropped, 2u);
  const auto out = t.poll();
  ASSERT_EQ(out.size(), 3u);
  // Oldest (0 and 1) were shed; freshest survive.
  EXPECT_EQ(out[0], frame(2));
  EXPECT_EQ(out[2], frame(4));
}

TEST(Tunnel, StatsCountBytes) {
  Tunnel t(ApId{6});
  t.enqueue(std::vector<std::uint8_t>(100, 0));
  t.enqueue(std::vector<std::uint8_t>(50, 0));
  (void)t.poll();
  EXPECT_EQ(t.stats().bytes_delivered, 150u);
  EXPECT_EQ(t.stats().frames_queued, 2u);
}

TEST(Tunnel, FlushLosesEverythingQueued) {
  // A device restart drops the in-RAM queue (§6.1 OOM reboots lost exactly
  // this state); the loss is visible in frames_flushed, never silent.
  Tunnel t(ApId{8});
  for (std::uint8_t i = 0; i < 4; ++i) t.enqueue(frame(i));
  EXPECT_EQ(t.flush(), 4u);
  EXPECT_EQ(t.queued(), 0u);
  EXPECT_EQ(t.stats().frames_flushed, 4u);
  EXPECT_EQ(t.stats().frames_queued, 4u);  // generation counter unaffected
  EXPECT_TRUE(t.poll().empty());
  EXPECT_EQ(t.flush(), 0u);  // idempotent on an empty queue
}

TEST(Tunnel, OverflowShedsExactlyTheExcess) {
  Tunnel t(ApId{9}, /*queue_limit=*/4);
  for (std::uint8_t i = 0; i < 10; ++i) t.enqueue(frame(i));
  EXPECT_EQ(t.stats().frames_queued, 10u);
  EXPECT_EQ(t.stats().frames_dropped, 6u);
  EXPECT_EQ(t.queued(), 4u);
  const auto out = t.poll();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], frame(6));  // oldest six shed, freshest four kept
  EXPECT_EQ(out[3], frame(9));
  // Conservation at the tunnel: queued == delivered + dropped + flushed.
  EXPECT_EQ(t.stats().frames_queued,
            t.stats().frames_delivered + t.stats().frames_dropped +
                t.stats().frames_flushed);
}

TEST(Tunnel, DisconnectCountsOnce) {
  Tunnel t(ApId{7});
  t.disconnect();
  t.disconnect();  // idempotent while down
  EXPECT_EQ(t.stats().disconnects, 1u);
  t.reconnect();
  t.disconnect();
  EXPECT_EQ(t.stats().disconnects, 2u);
}

}  // namespace
}  // namespace wlm::backend
