// Adversarial checkpoint inputs (style of tests/wire/fuzz_test.cpp).
//
// A checkpoint file crosses a trust boundary: it may come from a different
// binary, a different scenario, a torn write, or a hostile hand. The
// restore path must answer every such input with a typed Error — never a
// crash, hang, out-of-bounds read (ASan/UBSan suites run this file), or a
// partially restored runner.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "ckpt/campaign.hpp"
#include "ckpt/container.hpp"
#include "ckpt/state.hpp"
#include "core/rng.hpp"

namespace wlm {
namespace {

std::vector<std::uint8_t> valid_checkpoint() {
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 3;
  config.fleet.seed = 31;
  config.seed = 32;
  config.client_scale = 0.2;
  config.faults.outage_rate_per_week = 2.0;
  config.faults.outage_mean_hours = 8.0;
  config.faults.corrupt_probability = 0.02;
  sim::FleetRunner runner(config);
  runner.run_usage_week();
  runner.harvest();
  ckpt::CampaignProgress progress;
  progress.label = "fuzz";
  progress.phases_done = {"usage_week", "harvest"};
  return ckpt::save_campaign(runner, progress);
}

/// The one assertion every adversarial case reduces to: restore either
/// succeeds or reports a typed error, and on error `out` stays empty.
void expect_typed_outcome(std::span<const std::uint8_t> bytes) {
  ckpt::RestoredCampaign out;
  const auto err = ckpt::restore_campaign(bytes, /*threads=*/1, out);
  if (err) {
    EXPECT_NE(err.status, ckpt::Status::kOk);
    EXPECT_EQ(out.runner, nullptr) << "partial restore leaked a runner";
  } else {
    EXPECT_NE(out.runner, nullptr);
  }
}

TEST(CkptFuzz, EveryTruncationFailsTyped) {
  const auto valid = valid_checkpoint();
  // Every prefix of a valid checkpoint, including the empty file. CRC-guarded
  // sections mean any cut lands in kTruncated/kBadCrc/kMalformed territory.
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const std::span<const std::uint8_t> prefix{valid.data(), cut};
    ckpt::RestoredCampaign out;
    const auto err = ckpt::restore_campaign(prefix, 1, out);
    EXPECT_TRUE(err) << "truncation at " << cut << " restored successfully";
    EXPECT_EQ(out.runner, nullptr);
  }
}

TEST(CkptFuzz, BitFlipsNeverCrash) {
  const auto valid = valid_checkpoint();
  Rng rng(101);
  for (int i = 0; i < 400; ++i) {
    auto mutated = valid;
    const int flips = 1 + static_cast<int>(rng.next_u64() % 8);
    for (int f = 0; f < flips; ++f) {
      mutated[rng.next_u64() % mutated.size()] ^=
          static_cast<std::uint8_t>(1 + rng.next_u64() % 255);
    }
    expect_typed_outcome(mutated);
  }
}

TEST(CkptFuzz, SingleBitFlipsInHeaderAndFirstSections) {
  const auto valid = valid_checkpoint();
  // Exhaustive single-bit flips over the structural front of the file:
  // magic, version, section count, first tags/lengths/CRCs.
  const std::size_t front = std::min<std::size_t>(valid.size(), 512);
  for (std::size_t byte = 0; byte < front; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = valid;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      expect_typed_outcome(mutated);
    }
  }
}

TEST(CkptFuzz, RandomGarbageFailsTyped) {
  Rng rng(102);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> junk(rng.next_u64() % 400);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    ckpt::RestoredCampaign out;
    const auto err = ckpt::restore_campaign(junk, 1, out);
    EXPECT_TRUE(err);
    EXPECT_EQ(out.runner, nullptr);
  }
}

TEST(CkptFuzz, WrongMagicAndVersionAreTypedErrors) {
  auto valid = valid_checkpoint();
  {
    auto mutated = valid;
    mutated[0] = 'X';
    ckpt::RestoredCampaign out;
    EXPECT_EQ(ckpt::restore_campaign(mutated, 1, out).status, ckpt::Status::kBadMagic);
  }
  {
    // Version bump: a future format must fail closed, not half-parse.
    auto mutated = valid;
    mutated[8] = 0xFF;
    ckpt::RestoredCampaign out;
    EXPECT_EQ(ckpt::restore_campaign(mutated, 1, out).status, ckpt::Status::kBadVersion);
  }
}

// Valid container framing around hostile payloads: the CRC passes, so the
// per-section loaders themselves must reject the content.
TEST(CkptFuzz, ValidCrcMalformedSectionsFailTyped) {
  Rng rng(103);
  for (int i = 0; i < 300; ++i) {
    ckpt::Writer w;
    const int sections = static_cast<int>(rng.next_u64() % 6);
    for (int s = 0; s < sections; ++s) {
      std::vector<std::uint8_t> payload(rng.next_u64() % 80);
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
      w.add_section(static_cast<ckpt::SectionTag>(rng.next_u64() % 8), std::move(payload));
    }
    expect_typed_outcome(w.finish());
  }
}

TEST(CkptFuzz, HugeCountsInsideSectionsDoNotAllocateOrSpin) {
  // A config section whose phase/shard counts claim 2^60 entries in a
  // 30-byte payload: plausible_count must reject before any loop trusts it.
  ckpt::Writer w;
  ckpt::Buf meta;
  meta.str("evil");
  meta.u64(1ULL << 60);  // phases_done count
  w.add_section(ckpt::SectionTag::kMeta, meta.take());
  ckpt::Buf config;
  config.u64(1ULL << 60);
  w.add_section(ckpt::SectionTag::kConfig, config.take());
  expect_typed_outcome(w.finish());
}

TEST(CkptFuzz, CrossScenarioResumeFailsClosed) {
  // A structurally perfect checkpoint from scenario A must not restore when
  // its own config is swapped for scenario B's (different seed -> different
  // world): the shard overlay or the ledger cross-check has to catch it.
  const auto valid = valid_checkpoint();
  ckpt::Reader r;
  ASSERT_FALSE(r.load(valid));

  const auto with_config = [&](const sim::WorldConfig& other) {
    ckpt::Writer w;
    for (const auto& section : r.sections()) {
      if (section.tag == ckpt::SectionTag::kConfig) {
        ckpt::Buf b;
        ckpt::save_world_config(b, other);
        w.add_section(ckpt::SectionTag::kConfig, b.take());
      } else {
        w.add_section(section.tag, {section.payload.begin(), section.payload.end()});
      }
    }
    return w.finish();
  };

  sim::WorldConfig base;
  base.fleet.epoch = deploy::Epoch::kJan2015;
  base.fleet.network_count = 3;
  base.fleet.seed = 31;
  base.seed = 32;
  base.client_scale = 0.2;
  base.faults.outage_rate_per_week = 2.0;
  base.faults.outage_mean_hours = 8.0;
  base.faults.corrupt_probability = 0.02;

  {
    // Wrong fleet size: the shard-section count check fails closed.
    sim::WorldConfig other = base;
    other.fleet.network_count = 4;
    ckpt::RestoredCampaign out;
    const auto err = ckpt::restore_campaign(with_config(other), 1, out);
    EXPECT_EQ(err.status, ckpt::Status::kBadConfig) << err.detail;
    EXPECT_EQ(out.runner, nullptr);
  }
  {
    // Same world, faults stripped: the rebuilt (disabled) injector rejects
    // the checkpoint's fault-schedule cursors.
    sim::WorldConfig other = base;
    other.faults = {};
    ckpt::RestoredCampaign out;
    const auto err = ckpt::restore_campaign(with_config(other), 1, out);
    EXPECT_TRUE(err) << "resumed a faulted checkpoint into a clean scenario";
    EXPECT_EQ(err.status, ckpt::Status::kBadConfig) << err.detail;
    EXPECT_EQ(out.runner, nullptr);
  }
}

// ---------------------------------------------------------------------------
// v5 mobility-block adversarial vectors. The shard sections now end with the
// walk state (rng, roster counts, per-client motion); every lie in that tail
// must die in the semantic validators, because the container CRC is honest.

std::vector<std::uint8_t> valid_mobility_checkpoint() {
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 3;
  config.fleet.seed = 31;
  config.seed = 32;
  config.client_scale = 0.2;
  config.mobility.enabled = true;
  config.mobility.steps_per_week = 24;
  sim::FleetRunner runner(config);
  runner.run_usage_week();
  runner.harvest();
  ckpt::CampaignProgress progress;
  progress.label = "fuzz-mobility";
  progress.phases_done = {"usage_week", "harvest"};
  return ckpt::save_campaign(runner, progress);
}

/// Rebuilds `bytes` with one shard section's payload transformed (Writer
/// recomputes the CRC, so only semantic validation can object).
std::vector<std::uint8_t> with_shard_payload(
    const std::vector<std::uint8_t>& bytes, std::size_t shard_index,
    const std::function<void(std::vector<std::uint8_t>&)>& mutate) {
  ckpt::Reader r;
  EXPECT_FALSE(r.load(bytes));
  ckpt::Writer w;
  std::size_t seen_shards = 0;
  for (const auto& section : r.sections()) {
    std::vector<std::uint8_t> payload{section.payload.begin(), section.payload.end()};
    if (section.tag == ckpt::SectionTag::kShard && seen_shards++ == shard_index) {
      mutate(payload);
    }
    w.add_section(section.tag, std::move(payload));
  }
  return w.finish();
}

TEST(CkptFuzz, TruncatedMobilityTailFailsTyped) {
  // The mobility block sits at the end of each shard section; cutting any
  // number of bytes off that tail (CRC re-stamped over the shorter payload)
  // must be caught by the loader's bounds checks, never by reading past the
  // cursor. Sweep the whole block depth on every shard.
  const auto valid = valid_mobility_checkpoint();
  for (std::size_t shard = 0; shard < 3; ++shard) {
    for (std::size_t cut = 1; cut <= 512; ++cut) {
      const auto mutated = with_shard_payload(
          valid, shard, [&](std::vector<std::uint8_t>& payload) {
            payload.resize(payload.size() - std::min(cut, payload.size()));
          });
      ckpt::RestoredCampaign out;
      const auto err = ckpt::restore_campaign(mutated, 1, out);
      EXPECT_TRUE(err) << "shard " << shard << " tail cut of " << cut
                       << " bytes restored successfully";
      EXPECT_EQ(out.runner, nullptr);
    }
  }
}

TEST(CkptFuzz, MobilityTailTamperWithRecomputedCrcFailsTyped) {
  // Random byte-level lies inside the mobility tail — which is where the
  // roster counts, serving indices, and waypoint coordinates live. A varint
  // flip here claims a different roster shape; the loader must cross-check
  // against the deterministically rebuilt roster and fail typed.
  const auto valid = valid_mobility_checkpoint();
  Rng rng(105);
  for (int i = 0; i < 200; ++i) {
    const std::size_t shard = rng.next_u64() % 3;
    const auto mutated = with_shard_payload(
        valid, shard, [&](std::vector<std::uint8_t>& payload) {
          const std::size_t tail = std::min<std::size_t>(payload.size(), 400);
          const std::size_t pos = payload.size() - 1 - rng.next_u64() % tail;
          payload[pos] ^= static_cast<std::uint8_t>(1 + rng.next_u64() % 255);
        });
    expect_typed_outcome(mutated);
  }
}

TEST(CkptFuzz, MobilityEnabledBitMismatchFailsClosed) {
  // A mobility checkpoint resumed into a mobility-off scenario (or the
  // reverse) would silently drop or invent walk state; both directions must
  // fail as kBadConfig, like any other cross-scenario resume.
  const auto swap_config = [](const std::vector<std::uint8_t>& bytes,
                              const sim::WorldConfig& other) {
    ckpt::Reader r;
    EXPECT_FALSE(r.load(bytes));
    ckpt::Writer w;
    for (const auto& section : r.sections()) {
      if (section.tag == ckpt::SectionTag::kConfig) {
        ckpt::Buf b;
        ckpt::save_world_config(b, other);
        w.add_section(ckpt::SectionTag::kConfig, b.take());
      } else {
        w.add_section(section.tag, {section.payload.begin(), section.payload.end()});
      }
    }
    return w.finish();
  };

  sim::WorldConfig base;
  base.fleet.epoch = deploy::Epoch::kJan2015;
  base.fleet.network_count = 3;
  base.fleet.seed = 31;
  base.seed = 32;
  base.client_scale = 0.2;

  {
    // Saved with mobility on, config says off.
    sim::WorldConfig off = base;
    off.mobility.enabled = false;
    off.mobility.steps_per_week = 24;
    ckpt::RestoredCampaign out;
    const auto err =
        ckpt::restore_campaign(swap_config(valid_mobility_checkpoint(), off), 1, out);
    EXPECT_EQ(err.status, ckpt::Status::kBadConfig) << err.detail;
    EXPECT_EQ(out.runner, nullptr);
  }
  {
    // Saved with mobility off, config claims on: the shard sections carry no
    // walk state for the rebuilt roster to restore from.
    sim::WorldConfig on = base;
    on.mobility.enabled = true;
    on.mobility.steps_per_week = 24;
    ckpt::RestoredCampaign out;
    const auto err = ckpt::restore_campaign(swap_config(valid_checkpoint(), on), 1, out);
    EXPECT_TRUE(err) << "mobility-off checkpoint restored into a mobility-on world";
    EXPECT_EQ(out.runner, nullptr);
  }
}

TEST(CkptFuzz, OutOfRangeMobilityKnobsInConfigSectionFailTyped) {
  // The loader validates every mobility knob against the same ranges
  // MobilityConfig::clamped() enforces; a hostile config section claiming
  // speed 500 m/s or 10^7 steps must not construct a world.
  const auto valid = valid_mobility_checkpoint();
  ckpt::Reader r;
  ASSERT_FALSE(r.load(valid));

  sim::WorldConfig hostile;
  hostile.fleet.epoch = deploy::Epoch::kJan2015;
  hostile.fleet.network_count = 3;
  hostile.fleet.seed = 31;
  hostile.seed = 32;
  hostile.client_scale = 0.2;
  hostile.mobility.enabled = true;
  hostile.mobility.steps_per_week = 24;

  const std::vector<std::function<void(mobility::MobilityConfig&)>> cases = {
      [](mobility::MobilityConfig& m) { m.speed_mps = 500.0; },
      [](mobility::MobilityConfig& m) { m.speed_mps = -1.0; },
      [](mobility::MobilityConfig& m) { m.pause_mean_s = 1e12; },
      [](mobility::MobilityConfig& m) { m.steps_per_week = 10'000'000; },
      [](mobility::MobilityConfig& m) { m.steps_per_week = 0; },
      [](mobility::MobilityConfig& m) { m.handoff_settle_steps = 5000; },
      [](mobility::MobilityConfig& m) { m.handoff_hysteresis_db = 400.0; },
      [](mobility::MobilityConfig& m) { m.band_steer_bonus_db = 99.0; },
      [](mobility::MobilityConfig& m) { m.roam_probability = 2.0; },
  };
  for (const auto& poison : cases) {
    sim::WorldConfig other = hostile;
    poison(other.mobility);
    ckpt::Writer w;
    for (const auto& section : r.sections()) {
      if (section.tag == ckpt::SectionTag::kConfig) {
        ckpt::Buf b;
        ckpt::save_world_config(b, other);
        w.add_section(ckpt::SectionTag::kConfig, b.take());
      } else {
        w.add_section(section.tag, {section.payload.begin(), section.payload.end()});
      }
    }
    ckpt::RestoredCampaign out;
    const auto err = ckpt::restore_campaign(w.finish(), 1, out);
    EXPECT_TRUE(err) << "out-of-range mobility knob restored successfully";
    EXPECT_EQ(out.runner, nullptr);
  }
}

// ---------------------------------------------------------------------------
// v6 mesh-block adversarial vectors. Shard sections now end with the mesh
// backhaul state (mesh rng, the phase's routing table, per-AP relay busy
// horizons, partition-drop count); the routing table is the juicy target —
// a dangling next-hop index would be an out-of-bounds read at relay time,
// a self-loop an infinite relay walk — so every such lie must die in the
// loader, CRC honesty notwithstanding.

sim::WorldConfig mesh_fuzz_config() {
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 3;
  config.fleet.seed = 31;
  config.seed = 32;
  config.client_scale = 0.2;
  config.mesh.mesh_fraction = 0.6;
  return config;
}

std::unique_ptr<sim::FleetRunner> run_mesh_campaign() {
  auto runner = std::make_unique<sim::FleetRunner>(mesh_fuzz_config());
  runner->run_usage_week();
  runner->harvest();
  return runner;
}

std::vector<std::uint8_t> save_mesh_campaign(sim::FleetRunner& runner) {
  ckpt::CampaignProgress progress;
  progress.label = "fuzz-mesh";
  progress.phases_done = {"usage_week", "harvest"};
  return ckpt::save_campaign(runner, progress);
}

std::vector<std::uint8_t> valid_mesh_checkpoint() {
  return save_mesh_campaign(*run_mesh_campaign());
}

TEST(CkptFuzz, TruncatedMeshTailFailsTyped) {
  // The mesh block is the last thing in each shard section; every cut depth
  // through it (CRC re-stamped over the shorter payload) must land in the
  // loader's bounds checks, never past the cursor.
  const auto valid = valid_mesh_checkpoint();
  for (std::size_t shard = 0; shard < 3; ++shard) {
    for (std::size_t cut = 1; cut <= 512; ++cut) {
      const auto mutated = with_shard_payload(
          valid, shard, [&](std::vector<std::uint8_t>& payload) {
            payload.resize(payload.size() - std::min(cut, payload.size()));
          });
      ckpt::RestoredCampaign out;
      const auto err = ckpt::restore_campaign(mutated, 1, out);
      EXPECT_TRUE(err) << "shard " << shard << " mesh tail cut of " << cut
                       << " bytes restored successfully";
      EXPECT_EQ(out.runner, nullptr);
    }
  }
}

TEST(CkptFuzz, MeshTailTamperWithRecomputedCrcFailsTyped) {
  // Random byte lies in the mesh tail — routing-table varints, busy
  // horizons, the partition count. Either the restore succeeds (the flip
  // produced an equally-valid value, e.g. a different partition count) or
  // it fails typed; it must never crash or leak a half-built runner.
  const auto valid = valid_mesh_checkpoint();
  Rng rng(106);
  for (int i = 0; i < 200; ++i) {
    const std::size_t shard = rng.next_u64() % 3;
    const auto mutated = with_shard_payload(
        valid, shard, [&](std::vector<std::uint8_t>& payload) {
          const std::size_t tail = std::min<std::size_t>(payload.size(), 400);
          const std::size_t pos = payload.size() - 1 - rng.next_u64() % tail;
          payload[pos] ^= static_cast<std::uint8_t>(1 + rng.next_u64() % 255);
        });
    expect_typed_outcome(mutated);
  }
}

TEST(CkptFuzz, PoisonedRoutingTableEntriesFailTyped) {
  // Surgical routing-table lies with an honest CRC: serialize a live
  // campaign whose in-memory routing table has been poisoned, then demand
  // the loader reject it. Covers the three classic relay-time disasters —
  // dangling AP index, self-loop, hop-count overflow — plus a gateway
  // mismatch against the deterministically rebuilt membership and a
  // negative relay busy horizon.
  struct Poison {
    const char* name;
    std::function<bool(sim::NetworkShard&)> apply;  // false = no target entry
  };
  const std::vector<Poison> poisons = {
      {"dangling next_hop", [](sim::NetworkShard& shard) {
         for (auto& r : shard.mesh_routes()) {
           if (!r.is_gateway && r.routable) { r.next_hop = 60'000; return true; }
         }
         return false;
       }},
      {"self-loop next_hop", [](sim::NetworkShard& shard) {
         auto& routes = shard.mesh_routes();
         for (std::size_t i = 0; i < routes.size(); ++i) {
           if (!routes[i].is_gateway && routes[i].routable) {
             routes[i].next_hop = static_cast<std::uint32_t>(i);
             return true;
           }
         }
         return false;
       }},
      {"hop-count overflow", [](sim::NetworkShard& shard) {
         for (auto& r : shard.mesh_routes()) {
           if (!r.is_gateway && r.routable) { r.hop_count = 1'000'000; return true; }
         }
         return false;
       }},
      {"path ends at a mesh AP", [](sim::NetworkShard& shard) {
         auto& routes = shard.mesh_routes();
         std::uint32_t mesh_ap = 0;
         bool found = false;
         for (std::size_t i = 0; i < routes.size(); ++i) {
           if (!routes[i].is_gateway) { mesh_ap = static_cast<std::uint32_t>(i); found = true; break; }
         }
         if (!found) return false;
         for (auto& r : routes) {
           if (!r.is_gateway && r.routable) { r.gateway = mesh_ap; return true; }
         }
         return false;
       }},
      {"gateway flag contradicts membership", [](sim::NetworkShard& shard) {
         for (auto& r : shard.mesh_routes()) {
           if (!r.is_gateway) { r.is_gateway = true; return true; }
         }
         return false;
       }},
      {"negative busy horizon", [](sim::NetworkShard& shard) {
         auto& busy = shard.mesh_busy_until_us();
         if (busy.empty()) return false;
         busy[0] = -5;
         return true;
       }},
  };

  for (const auto& poison : poisons) {
    const auto runner = run_mesh_campaign();
    bool applied = false;
    for (const auto& shard : runner->shards()) {
      if (poison.apply(*shard)) { applied = true; break; }
    }
    ASSERT_TRUE(applied) << poison.name << ": no entry to poison at this scale";
    ckpt::RestoredCampaign out;
    const auto err = ckpt::restore_campaign(save_mesh_campaign(*runner), 1, out);
    EXPECT_TRUE(err) << poison.name << " restored successfully";
    EXPECT_EQ(out.runner, nullptr) << poison.name;
  }
}

TEST(CkptFuzz, MeshEnabledBitMismatchFailsClosed) {
  // A mesh checkpoint resumed into a mesh-off scenario (or the reverse)
  // would drop or invent relay state; both directions fail kBadConfig.
  const auto swap_config = [](const std::vector<std::uint8_t>& bytes,
                              const sim::WorldConfig& other) {
    ckpt::Reader r;
    EXPECT_FALSE(r.load(bytes));
    ckpt::Writer w;
    for (const auto& section : r.sections()) {
      if (section.tag == ckpt::SectionTag::kConfig) {
        ckpt::Buf b;
        ckpt::save_world_config(b, other);
        w.add_section(ckpt::SectionTag::kConfig, b.take());
      } else {
        w.add_section(section.tag, {section.payload.begin(), section.payload.end()});
      }
    }
    return w.finish();
  };

  {
    // Saved with mesh on, config says off.
    sim::WorldConfig off = mesh_fuzz_config();
    off.mesh.mesh_fraction = 0.0;
    ckpt::RestoredCampaign out;
    const auto err =
        ckpt::restore_campaign(swap_config(valid_mesh_checkpoint(), off), 1, out);
    EXPECT_EQ(err.status, ckpt::Status::kBadConfig) << err.detail;
    EXPECT_EQ(out.runner, nullptr);
  }
  {
    // Saved with mesh off, config claims on: the shard sections carry no
    // relay state for the rebuilt topology to restore from.
    sim::WorldConfig on = mesh_fuzz_config();
    // valid_checkpoint() runs a faulted, mesh-off scenario; mirror it.
    on.faults.outage_rate_per_week = 2.0;
    on.faults.outage_mean_hours = 8.0;
    on.faults.corrupt_probability = 0.02;
    ckpt::RestoredCampaign out;
    const auto err = ckpt::restore_campaign(swap_config(valid_checkpoint(), on), 1, out);
    EXPECT_TRUE(err) << "mesh-off checkpoint restored into a mesh-on world";
    EXPECT_EQ(out.runner, nullptr);
  }
}

TEST(CkptFuzz, OutOfRangeMeshKnobsInConfigSectionFailTyped) {
  // The loader validates every mesh knob against the same ranges
  // MeshConfig::clamped() enforces; a hostile config section claiming a
  // 1.5 mesh fraction or 40 hops must not construct a world.
  const auto valid = valid_mesh_checkpoint();
  ckpt::Reader r;
  ASSERT_FALSE(r.load(valid));

  const std::vector<std::function<void(mesh::MeshConfig&)>> cases = {
      [](mesh::MeshConfig& m) { m.mesh_fraction = 1.5; },
      [](mesh::MeshConfig& m) { m.mesh_fraction = -0.1; },
      [](mesh::MeshConfig& m) { m.max_hops = 0; },
      [](mesh::MeshConfig& m) { m.max_hops = 40; },
      [](mesh::MeshConfig& m) { m.relay_floor_dbm = -200.0; },
      [](mesh::MeshConfig& m) { m.relay_floor_dbm = 0.0; },
      [](mesh::MeshConfig& m) { m.drift_sigma_db = -1.0; },
      [](mesh::MeshConfig& m) { m.drift_sigma_db = 100.0; },
  };
  for (const auto& poison : cases) {
    sim::WorldConfig other = mesh_fuzz_config();
    poison(other.mesh);
    ckpt::Writer w;
    for (const auto& section : r.sections()) {
      if (section.tag == ckpt::SectionTag::kConfig) {
        ckpt::Buf b;
        ckpt::save_world_config(b, other);
        w.add_section(ckpt::SectionTag::kConfig, b.take());
      } else {
        w.add_section(section.tag, {section.payload.begin(), section.payload.end()});
      }
    }
    ckpt::RestoredCampaign out;
    const auto err = ckpt::restore_campaign(w.finish(), 1, out);
    EXPECT_TRUE(err) << "out-of-range mesh knob restored successfully";
    EXPECT_EQ(out.runner, nullptr);
  }
}

TEST(CkptFuzz, TamperedSectionWithRecomputedCrcFailsTyped) {
  // Flip payload bytes but fix the CRC by re-framing through the Writer, so
  // only the semantic validators stand between the tamper and a restore.
  const auto valid = valid_checkpoint();
  ckpt::Reader r;
  ASSERT_FALSE(r.load(valid));
  Rng rng(104);
  for (int i = 0; i < 120; ++i) {
    ckpt::Writer w;
    const std::size_t victim = rng.next_u64() % r.sections().size();
    for (std::size_t s = 0; s < r.sections().size(); ++s) {
      std::vector<std::uint8_t> payload{r.sections()[s].payload.begin(),
                                        r.sections()[s].payload.end()};
      if (s == victim && !payload.empty()) {
        payload[rng.next_u64() % payload.size()] ^=
            static_cast<std::uint8_t>(1 + rng.next_u64() % 255);
      }
      w.add_section(r.sections()[s].tag, std::move(payload));
    }
    expect_typed_outcome(w.finish());
  }
}

}  // namespace
}  // namespace wlm
