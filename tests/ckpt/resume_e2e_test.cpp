// Kill-and-resume end-to-end: the tentpole guarantee of src/ckpt.
//
// A campaign that is checkpointed, killed (a real SIGKILL through fork —
// no destructors, no atexit, exactly like a preempted batch job), and
// resumed in a fresh process must produce byte-identical final reports,
// metrics, and loss accounting to a campaign that never died — at any
// --jobs on either side of the cut. The in-process matrix sweeps the
// cut-point × thread-count space; the fork test pins the real kill.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <iterator>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "ckpt/campaign.hpp"
#include "ckpt/state.hpp"
#include "telemetry/export.hpp"

namespace wlm {
namespace {

sim::WorldConfig e2e_config(int threads) {
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 6;
  config.fleet.seed = 2015;
  config.seed = 2016;
  config.client_scale = 0.25;
  config.threads = threads;
  config.faults.outage_rate_per_week = 2.0;
  config.faults.outage_mean_hours = 12.0;
  config.faults.reboot_rate_per_week = 1.0;
  config.faults.corrupt_probability = 0.01;
  config.faults.tunnel_queue_limit = 128;
  return config;
}

// Same campaign with the mobility walk enabled: checkpoints now carry the
// v5 shard mobility block (walk rng, per-client motion state, pending
// handoffs) and the resume must reproduce the walk's roaming byte-for-byte.
sim::WorldConfig mobile_e2e_config(int threads) {
  sim::WorldConfig config = e2e_config(threads);
  config.mobility.enabled = true;
  config.mobility.steps_per_week = 48;  // enough churn, tier-1 wall clock
  return config;
}

// Same campaign relaying over multi-hop mesh backhaul: checkpoints now
// carry the v6 shard mesh block (mesh rng, the phase's drifted routing
// table, per-AP relay busy horizons, partition-drop count) and the resume
// must relay the remaining phases over the identical topology. The fault
// mix keeps gateway outages in play, so lost_mesh_partition accounting
// crosses the cut too.
sim::WorldConfig mesh_e2e_config(int threads) {
  sim::WorldConfig config = e2e_config(threads);
  config.mesh.mesh_fraction = 0.5;
  config.mesh.drift_sigma_db = 3.0;
  return config;
}

// The campaign script: the same four phases wlmctl simulate runs.
constexpr const char* kPhases[] = {"usage_week", "mr16", "link_windows", "harvest"};

void run_phase(sim::FleetRunner& runner, const std::string& name,
               sim::HarvestMode mode) {
  const SimTime t = SimTime::epoch() + Duration::hours(14);
  if (name == "usage_week") {
    runner.run_usage_week();
  } else if (name == "mr16") {
    runner.run_mr16_interference(t);
  } else if (name == "link_windows") {
    runner.run_link_windows(t);
  } else if (name == "harvest") {
    runner.harvest(mode);
  } else {
    FAIL() << "unknown phase " << name;
  }
}

/// Everything the campaign produces, in comparable (byte-exact) form.
struct Outputs {
  std::string prometheus;
  std::vector<std::uint8_t> store;
  std::string ledger;
  std::vector<telemetry::TraceSpan> trace;

  bool operator==(const Outputs&) const = default;
};

Outputs outputs_of(sim::FleetRunner& runner) {
  Outputs out;
  out.prometheus = telemetry::to_prometheus(runner.metrics());
  ckpt::Buf b;
  ckpt::save_store(b, runner.store());
  out.store = b.take();
  out.ledger = runner.loss_ledger().render();
  out.trace = runner.trace();
  return out;
}

Outputs uninterrupted_run(int threads, sim::HarvestMode mode) {
  sim::FleetRunner runner(e2e_config(threads));
  for (const char* phase : kPhases) run_phase(runner, phase, mode);
  return outputs_of(runner);
}

TEST(ResumeE2E, InProcessCutMatrixIsByteIdentical) {
  const Outputs reference = uninterrupted_run(1, sim::HarvestMode::kFinal);

  struct Cell {
    int cut_after;    // checkpoint after this many phases
    int jobs_before;  // --jobs of the killed run
    int jobs_after;   // --jobs of the resuming run
  };
  // Every cut point, crossing the 1/2/8 thread counts both ways.
  const Cell cells[] = {{1, 1, 8}, {1, 8, 2}, {2, 2, 1}, {2, 8, 8}, {3, 1, 2}, {3, 2, 8}};

  for (const auto& cell : cells) {
    SCOPED_TRACE("cut_after=" + std::to_string(cell.cut_after) +
                 " jobs=" + std::to_string(cell.jobs_before) + "->" +
                 std::to_string(cell.jobs_after));
    sim::FleetRunner before(e2e_config(cell.jobs_before));
    ckpt::CampaignProgress progress;
    progress.label = "e2e";
    for (int i = 0; i < cell.cut_after; ++i) {
      run_phase(before, kPhases[i], sim::HarvestMode::kFinal);
      progress.phases_done.emplace_back(kPhases[i]);
    }
    const auto bytes = ckpt::save_campaign(before, progress);

    ckpt::RestoredCampaign restored;
    const auto err = ckpt::restore_campaign(bytes, cell.jobs_after, restored);
    ASSERT_FALSE(err) << err.detail;
    for (std::size_t i = restored.progress.phases_done.size(); i < std::size(kPhases);
         ++i) {
      run_phase(*restored.runner, kPhases[i], sim::HarvestMode::kFinal);
    }
    EXPECT_EQ(outputs_of(*restored.runner), reference);
  }
}

TEST(ResumeE2E, CheckpointBytesIndependentOfJobs) {
  // The checkpoint itself — not just the final outputs — must not encode
  // the thread count, or a resume would only be identical jobs-to-jobs.
  std::vector<std::uint8_t> reference;
  for (const int jobs : {1, 2, 8}) {
    sim::FleetRunner runner(e2e_config(jobs));
    run_phase(runner, "usage_week", sim::HarvestMode::kFinal);
    run_phase(runner, "mr16", sim::HarvestMode::kFinal);
    ckpt::CampaignProgress progress;
    progress.phases_done = {"usage_week", "mr16"};
    auto bytes = ckpt::save_campaign(runner, progress);
    if (reference.empty()) {
      reference = std::move(bytes);
    } else {
      EXPECT_EQ(bytes, reference) << "checkpoint differs at --jobs " << jobs;
    }
  }
}

TEST(ResumeE2E, SigkilledCampaignResumesByteIdentical) {
  const std::string path =
      "resume_e2e_" + std::to_string(::getpid()) + ".wlmckpt";
  std::remove(path.c_str());

  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // Child: run half the campaign at --jobs 2, checkpoint, die hard. No
    // gtest, no cleanup — SIGKILL gives destructors no chance to run, so
    // only the checkpoint file survives.
    sim::FleetRunner runner(e2e_config(2));
    ckpt::CampaignProgress progress;
    progress.label = "sigkill";
    for (const char* phase : {"usage_week", "mr16"}) {
      if (std::string(phase) == "usage_week") {
        runner.run_usage_week();
      } else {
        runner.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
      }
      progress.phases_done.emplace_back(phase);
    }
    if (ckpt::save_campaign_file(path, runner, progress)) _exit(3);
    ::raise(SIGKILL);
    _exit(4);  // unreachable
  }

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of dying by signal";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Parent: resume from the dead process's checkpoint at a different
  // --jobs and finish; every output must match the never-killed run.
  for (const int jobs : {1, 8}) {
    SCOPED_TRACE("resume jobs=" + std::to_string(jobs));
    ckpt::RestoredCampaign restored;
    const auto err = ckpt::restore_campaign_file(path, jobs, restored);
    ASSERT_FALSE(err) << err.detail;
    EXPECT_EQ(restored.progress.label, "sigkill");
    ASSERT_EQ(restored.progress.phases_done,
              (std::vector<std::string>{"usage_week", "mr16"}));
    for (std::size_t i = restored.progress.phases_done.size(); i < std::size(kPhases);
         ++i) {
      run_phase(*restored.runner, kPhases[i], sim::HarvestMode::kFinal);
    }
    EXPECT_EQ(outputs_of(*restored.runner), uninterrupted_run(1, sim::HarvestMode::kFinal));
  }
  std::remove(path.c_str());
}

TEST(ResumeE2E, MobilitySigkilledCampaignResumesByteIdentical) {
  // The roaming variant of the SIGKILL test: the checkpoint is cut after a
  // full mobility week, so it must carry every walker's motion state and the
  // walk rng mid-stream; the resumed run re-derives the remaining phases and
  // must match a never-killed mobility campaign at any --jobs split.
  const std::string path =
      "resume_mobility_" + std::to_string(::getpid()) + ".wlmckpt";
  std::remove(path.c_str());

  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    sim::FleetRunner runner(mobile_e2e_config(2));
    ckpt::CampaignProgress progress;
    progress.label = "sigkill-mobility";
    runner.run_usage_week();
    progress.phases_done.emplace_back("usage_week");
    runner.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
    progress.phases_done.emplace_back("mr16");
    if (ckpt::save_campaign_file(path, runner, progress)) _exit(3);
    ::raise(SIGKILL);
    _exit(4);  // unreachable
  }

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of dying by signal";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  const Outputs reference = [&] {
    sim::FleetRunner runner(mobile_e2e_config(1));
    for (const char* phase : kPhases) run_phase(runner, phase, sim::HarvestMode::kFinal);
    return outputs_of(runner);
  }();
  for (const int jobs : {1, 8}) {
    SCOPED_TRACE("resume jobs=" + std::to_string(jobs));
    ckpt::RestoredCampaign restored;
    const auto err = ckpt::restore_campaign_file(path, jobs, restored);
    ASSERT_FALSE(err) << err.detail;
    EXPECT_EQ(restored.progress.label, "sigkill-mobility");
    for (std::size_t i = restored.progress.phases_done.size(); i < std::size(kPhases);
         ++i) {
      run_phase(*restored.runner, kPhases[i], sim::HarvestMode::kFinal);
    }
    EXPECT_EQ(outputs_of(*restored.runner), reference);
  }
  std::remove(path.c_str());
}

TEST(ResumeE2E, MobilityCheckpointBytesIndependentOfJobs) {
  // The v5 mobility block serializes per-shard in network order, so the
  // checkpoint bytes — not just the resumed outputs — must be identical
  // whatever worker count produced them.
  std::vector<std::uint8_t> reference;
  for (const int jobs : {1, 2, 8}) {
    sim::FleetRunner runner(mobile_e2e_config(jobs));
    run_phase(runner, "usage_week", sim::HarvestMode::kFinal);
    ckpt::CampaignProgress progress;
    progress.phases_done = {"usage_week"};
    auto bytes = ckpt::save_campaign(runner, progress);
    if (reference.empty()) {
      reference = std::move(bytes);
    } else {
      EXPECT_EQ(bytes, reference) << "mobility checkpoint differs at --jobs " << jobs;
    }
  }
}

TEST(ResumeE2E, MeshSigkilledCampaignResumesByteIdentical) {
  // The mesh variant of the SIGKILL test: the checkpoint cuts mid-campaign
  // between route recomputations, so it must carry the drifted routing
  // tables, the relay busy horizons, and the partition-drop count; the
  // resumed run replays the remaining phases over the same topology and
  // must match a never-killed mesh campaign at any --jobs split.
  const std::string path = "resume_mesh_" + std::to_string(::getpid()) + ".wlmckpt";
  std::remove(path.c_str());

  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    sim::FleetRunner runner(mesh_e2e_config(2));
    ckpt::CampaignProgress progress;
    progress.label = "sigkill-mesh";
    runner.run_usage_week();
    progress.phases_done.emplace_back("usage_week");
    runner.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
    progress.phases_done.emplace_back("mr16");
    if (ckpt::save_campaign_file(path, runner, progress)) _exit(3);
    ::raise(SIGKILL);
    _exit(4);  // unreachable
  }

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of dying by signal";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  const Outputs reference = [&] {
    sim::FleetRunner runner(mesh_e2e_config(1));
    for (const char* phase : kPhases) run_phase(runner, phase, sim::HarvestMode::kFinal);
    return outputs_of(runner);
  }();
  for (const int jobs : {1, 8}) {
    SCOPED_TRACE("resume jobs=" + std::to_string(jobs));
    ckpt::RestoredCampaign restored;
    const auto err = ckpt::restore_campaign_file(path, jobs, restored);
    ASSERT_FALSE(err) << err.detail;
    EXPECT_EQ(restored.progress.label, "sigkill-mesh");
    for (std::size_t i = restored.progress.phases_done.size(); i < std::size(kPhases);
         ++i) {
      run_phase(*restored.runner, kPhases[i], sim::HarvestMode::kFinal);
    }
    EXPECT_EQ(outputs_of(*restored.runner), reference);
  }
  std::remove(path.c_str());
}

TEST(ResumeE2E, MeshCheckpointBytesIndependentOfJobs) {
  // The v6 mesh block serializes per-shard in network order, so the
  // checkpoint bytes — not just the resumed outputs — must be identical
  // whatever worker count produced them.
  std::vector<std::uint8_t> reference;
  for (const int jobs : {1, 2, 8}) {
    sim::FleetRunner runner(mesh_e2e_config(jobs));
    run_phase(runner, "usage_week", sim::HarvestMode::kFinal);
    ckpt::CampaignProgress progress;
    progress.phases_done = {"usage_week"};
    auto bytes = ckpt::save_campaign(runner, progress);
    if (reference.empty()) {
      reference = std::move(bytes);
    } else {
      EXPECT_EQ(bytes, reference) << "mesh checkpoint differs at --jobs " << jobs;
    }
  }
}

TEST(ResumeE2E, TornRewriteLeavesLastGoodCheckpoint) {
  // Checkpoint writes are temp+rename. A crash mid-*rewrite* leaves a
  // garbage .tmp next to the previous checkpoint; the previous checkpoint
  // must still restore.
  const std::string path =
      "resume_torn_" + std::to_string(::getpid()) + ".wlmckpt";
  sim::FleetRunner runner(e2e_config(1));
  run_phase(runner, "usage_week", sim::HarvestMode::kFinal);
  ckpt::CampaignProgress progress;
  progress.phases_done = {"usage_week"};
  ASSERT_FALSE(ckpt::save_campaign_file(path, runner, progress));

  std::FILE* torn = std::fopen((path + ".tmp").c_str(), "wb");
  ASSERT_NE(torn, nullptr);
  std::fputs("WLMCKPT\x01 torn half-write", torn);
  std::fclose(torn);

  ckpt::RestoredCampaign restored;
  const auto err = ckpt::restore_campaign_file(path, 2, restored);
  EXPECT_FALSE(err) << err.detail;
  EXPECT_NE(restored.runner, nullptr);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(ResumeE2E, WeekEndHarvestResumesByteIdentical) {
  // kWeekEnd leaves mid-outage APs offline with telemetry in flight — the
  // restore must reproduce that in-flight accounting too, not just kFinal's
  // fully-drained end state.
  const Outputs reference = uninterrupted_run(2, sim::HarvestMode::kWeekEnd);

  sim::FleetRunner before(e2e_config(1));
  run_phase(before, "usage_week", sim::HarvestMode::kWeekEnd);
  ckpt::CampaignProgress progress;
  progress.phases_done = {"usage_week"};
  const auto bytes = ckpt::save_campaign(before, progress);

  ckpt::RestoredCampaign restored;
  const auto err = ckpt::restore_campaign(bytes, 8, restored);
  ASSERT_FALSE(err) << err.detail;
  for (std::size_t i = 1; i < std::size(kPhases); ++i) {
    run_phase(*restored.runner, kPhases[i], sim::HarvestMode::kWeekEnd);
  }
  EXPECT_EQ(outputs_of(*restored.runner), reference);
}

}  // namespace
}  // namespace wlm
