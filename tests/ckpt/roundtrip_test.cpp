// Checkpoint round-trip properties.
//
// The contract under test is *identity*: save -> load -> save must emit the
// same bytes (the serializers are canonical), and a restored component must
// behave exactly like the original from the cut onward — same RNG draws,
// same ring-buffer overwrites, same campaign output. Byte equality is the
// strongest cheap oracle we have, and the bit-identical-resume guarantee of
// tests/ckpt/resume_e2e_test.cpp reduces to these pieces.
#include <gtest/gtest.h>

#include <cmath>

#include "ckpt/campaign.hpp"
#include "ckpt/container.hpp"
#include "ckpt/state.hpp"
#include "classify/tls.hpp"
#include "classify/verdict_cache.hpp"
#include "telemetry/export.hpp"

namespace wlm {
namespace {

TEST(CkptContainer, WriterReaderRoundTrip) {
  ckpt::Writer w;
  ckpt::Buf meta;
  meta.str("hello");
  meta.u64(42);
  w.add_section(ckpt::SectionTag::kMeta, meta.take());
  ckpt::Buf s1;
  s1.i64(-7);
  w.add_section(ckpt::SectionTag::kShard, s1.take());
  ckpt::Buf s2;
  s2.f64(2.5);
  w.add_section(ckpt::SectionTag::kShard, s2.take());

  ckpt::Reader r;
  const auto err = r.load(w.finish());
  ASSERT_FALSE(err) << err.detail;
  ASSERT_EQ(r.sections().size(), 3u);

  const auto found = r.find(ckpt::SectionTag::kMeta);
  ASSERT_TRUE(found.has_value());
  ckpt::Cursor c(*found);
  EXPECT_EQ(c.str(), "hello");
  EXPECT_EQ(c.u64(), 42u);
  EXPECT_TRUE(c.ok());
  EXPECT_TRUE(c.at_end());

  EXPECT_EQ(r.find_all(ckpt::SectionTag::kShard).size(), 2u);
  EXPECT_FALSE(r.find(ckpt::SectionTag::kConfig).has_value());
}

TEST(CkptContainer, CursorScalarRoundTrip) {
  ckpt::Buf b;
  b.u64(0);
  b.u64(UINT64_MAX);
  b.i64(INT64_MIN);
  b.f64(-0.0);
  b.f64(1.0 / 3.0);
  b.boolean(true);
  b.boolean(false);
  const auto bytes = b.take();
  ckpt::Cursor c(bytes);
  EXPECT_EQ(c.u64(), 0u);
  EXPECT_EQ(c.u64(), UINT64_MAX);
  EXPECT_EQ(c.i64(), INT64_MIN);
  // -0.0 must round-trip to the exact bit pattern, not just compare equal.
  EXPECT_TRUE(std::signbit(c.f64()));
  EXPECT_EQ(c.f64(), 1.0 / 3.0);
  EXPECT_TRUE(c.boolean());
  EXPECT_FALSE(c.boolean());
  EXPECT_TRUE(c.ok());
  EXPECT_TRUE(c.at_end());
}

// save -> load -> save emits identical bytes (serializer is canonical).
template <typename T, typename SaveFn, typename LoadFn>
void expect_save_load_save_identity(const T& value, T& fresh, SaveFn save, LoadFn load) {
  ckpt::Buf first;
  save(first, value);
  const auto bytes = first.take();
  ckpt::Cursor c(bytes);
  ASSERT_TRUE(load(c, fresh));
  ASSERT_TRUE(c.at_end());
  ckpt::Buf second;
  save(second, fresh);
  EXPECT_EQ(bytes, second.take());
}

TEST(CkptState, RngRestoreContinuesTheExactStream) {
  Rng original(1234);
  // Put the generator mid-phase: normal() caches its Box–Muller pair, and a
  // restore that loses the cache would shift every later normal by one.
  (void)original.next_u64();
  (void)original.normal();

  ckpt::Buf b;
  ckpt::save_rng(b, original.state());
  const auto bytes = b.take();
  ckpt::Cursor c(bytes);
  Rng::State loaded;
  ASSERT_TRUE(ckpt::load_rng(c, loaded));
  ASSERT_TRUE(c.at_end());
  Rng restored(1);
  restored.restore(loaded);

  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(original.next_u64(), restored.next_u64());
    EXPECT_EQ(original.normal(), restored.normal());
    EXPECT_EQ(original.poisson(3.5), restored.poisson(3.5));
  }
}

TEST(CkptState, TunnelRoundTripIsByteStable) {
  backend::Tunnel original(ApId{7}, /*queue_limit=*/4);
  original.enqueue({1, 2, 3});
  original.disconnect();
  original.enqueue({4, 5});
  original.enqueue({6});
  original.enqueue({7});
  original.enqueue({8, 9});  // overflows the 4-frame queue: a drop counts
  backend::Tunnel fresh(ApId{7}, /*queue_limit=*/4);
  expect_save_load_save_identity(
      original, fresh, [](ckpt::Buf& b, const backend::Tunnel& t) { ckpt::save_tunnel(b, t); },
      [](ckpt::Cursor& c, backend::Tunnel& t) { return ckpt::load_tunnel(c, t); });
  EXPECT_EQ(fresh.connected(), original.connected());
  EXPECT_EQ(fresh.pending(), original.pending());
  EXPECT_EQ(fresh.stats().frames_dropped, original.stats().frames_dropped);
}

TEST(CkptState, ClassifierRoundTripIsByteStable) {
  using classify::ClassifierMode;
  using classify::FlowKey;
  using classify::TwoTierClassifier;

  // Populate the cache through the real classify path: a few TLS flows with
  // distinct keys, some taken past the pin quota (so a hit is recorded) and
  // enough keys to force an eviction at capacity 3.
  TwoTierClassifier original(ClassifierMode::kIndexed, /*cache_capacity=*/3);
  classify::FlowSample sample;
  sample.dst_port = 443;
  sample.first_payload = classify::build_client_hello("www.netflix.com", 1);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const FlowKey key{0xBEEF'0000 + i, 10, 20, static_cast<std::uint16_t>(50'000 + i), 443, 6};
    (void)original.classify(key, sample);
    (void)original.classify(key, sample);  // second fragment: cache hit
  }
  ASSERT_GT(original.cache().stats().hits, 0u);
  ASSERT_GT(original.cache().stats().evictions, 0u);

  TwoTierClassifier fresh(ClassifierMode::kIndexed, /*cache_capacity=*/3);
  expect_save_load_save_identity(
      original, fresh,
      [](ckpt::Buf& b, const TwoTierClassifier& t) { ckpt::save_classifier(b, t); },
      [](ckpt::Cursor& c, TwoTierClassifier& t) { return ckpt::load_classifier(c, t); });
  EXPECT_EQ(fresh.cache().stats(), original.cache().stats());
  EXPECT_EQ(fresh.slow_path_calls(), original.slow_path_calls());
  EXPECT_EQ(fresh.cache().size(), original.cache().size());

  // The restored cache must behave identically: a pinned flow still hits...
  const FlowKey pinned{0xBEEF'0004, 10, 20, 50'004, 443, 6};
  const auto hits_before = fresh.cache().stats().hits;
  (void)fresh.classify(pinned, sample);
  EXPECT_EQ(fresh.cache().stats().hits, hits_before + 1);

  // ...and a mode mismatch is a config error (false), not corruption.
  ckpt::Buf b;
  ckpt::save_classifier(b, original);
  const auto bytes = b.take();
  ckpt::Cursor c(bytes);
  TwoTierClassifier wrong_mode(ClassifierMode::kReference);
  EXPECT_FALSE(ckpt::load_classifier(c, wrong_mode));
  EXPECT_TRUE(c.ok());
}

TEST(CkptState, StoreRoundTripIsByteStable) {
  backend::ReportStore original;
  for (std::uint32_t ap = 5; ap > 0; --ap) {
    wire::ApReport r;
    r.ap_id = ap;
    r.timestamp_us = 1000 * ap;
    r.usage.push_back(wire::ClientUsage{MacAddress::from_u64(ap), 6, 100, 200});
    original.add(r);
  }
  backend::ReportStore fresh;
  expect_save_load_save_identity(
      original, fresh,
      [](ckpt::Buf& b, const backend::ReportStore& s) { ckpt::save_store(b, s); },
      [](ckpt::Cursor& c, backend::ReportStore& s) { return ckpt::load_store(c, s); });
  EXPECT_EQ(fresh.report_count(), original.report_count());
}

TEST(CkptState, MetricsRoundTripIsByteStable) {
  telemetry::MetricsRegistry original;
  original.counter("requests_total").inc(41);
  original.counter("requests_total", 9).inc(1);
  original.gauge("depth", 3).set(-2.5);
  auto& h = original.histogram("latency", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(55.0);
  h.observe(1e9);
  telemetry::MetricsRegistry fresh;
  expect_save_load_save_identity(
      original, fresh,
      [](ckpt::Buf& b, const telemetry::MetricsRegistry& m) { ckpt::save_metrics(b, m); },
      [](ckpt::Cursor& c, telemetry::MetricsRegistry& m) {
        return ckpt::load_metrics(c, m);
      });
  EXPECT_EQ(telemetry::to_prometheus(fresh), telemetry::to_prometheus(original));
}

TEST(CkptState, RecorderRoundTripAfterRingWrap) {
  telemetry::FlightRecorder original(/*capacity=*/8);
  for (std::uint64_t i = 0; i < 21; ++i) {  // wraps the 8-slot ring twice
    telemetry::TraceSpan span;
    span.kind = telemetry::SpanKind::kPoll;
    span.entity = i;
    span.start_us = span.end_us = static_cast<std::int64_t>(i) * 10;
    original.record(span);
  }
  telemetry::FlightRecorder fresh(/*capacity=*/8);
  expect_save_load_save_identity(
      original, fresh,
      [](ckpt::Buf& b, const telemetry::FlightRecorder& r) { ckpt::save_recorder(b, r); },
      [](ckpt::Cursor& c, telemetry::FlightRecorder& r) {
        return ckpt::load_recorder(c, r);
      });
  // The restored ring must overwrite the same slots in the same order.
  for (std::uint64_t i = 21; i < 27; ++i) {
    telemetry::TraceSpan span;
    span.kind = telemetry::SpanKind::kReboot;
    span.entity = i;
    original.record(span);
    fresh.record(span);
    EXPECT_EQ(original.snapshot(), fresh.snapshot());
    EXPECT_EQ(original.dropped(), fresh.dropped());
  }
}

TEST(CkptState, WorldConfigRoundTripIsByteStable) {
  sim::WorldConfig original;
  original.fleet.epoch = deploy::Epoch::kJan2015;
  original.fleet.network_count = 17;
  original.fleet.seed = 99;
  original.seed = 100;
  original.client_scale = 0.37;
  original.wan_flap_fraction = 0.05;
  original.faults.outage_rate_per_week = 2.0;
  original.faults.corrupt_probability = 0.01;
  original.faults.tunnel_queue_limit = 64;
  sim::WorldConfig fresh;
  expect_save_load_save_identity(
      original, fresh,
      [](ckpt::Buf& b, const sim::WorldConfig& cfg) { ckpt::save_world_config(b, cfg); },
      [](ckpt::Cursor& c, sim::WorldConfig& cfg) {
        return ckpt::load_world_config(c, cfg);
      });
  EXPECT_EQ(fresh.fleet.network_count, 17);
  EXPECT_EQ(fresh.faults.tunnel_queue_limit, 64u);
}

sim::WorldConfig small_faulted_config(int threads) {
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 5;
  config.fleet.seed = 21;
  config.seed = 22;
  config.client_scale = 0.25;
  config.threads = threads;
  config.faults.outage_rate_per_week = 2.0;
  config.faults.outage_mean_hours = 10.0;
  config.faults.reboot_rate_per_week = 1.0;
  config.faults.corrupt_probability = 0.02;
  config.faults.tunnel_queue_limit = 64;
  return config;
}

TEST(CkptCampaign, SaveLoadSaveIsIdentity) {
  sim::FleetRunner runner(small_faulted_config(2));
  runner.run_usage_week();
  runner.harvest();
  ckpt::CampaignProgress progress;
  progress.label = "roundtrip";
  progress.phases_done = {"usage_week", "harvest"};
  const auto bytes = ckpt::save_campaign(runner, progress);

  ckpt::RestoredCampaign restored;
  const auto err = ckpt::restore_campaign(bytes, /*threads=*/3, restored);
  ASSERT_FALSE(err) << err.detail;
  EXPECT_EQ(restored.progress.label, "roundtrip");
  ASSERT_EQ(restored.progress.phases_done.size(), 2u);
  EXPECT_DOUBLE_EQ(restored.runner->campaign_sim_hours(), runner.campaign_sim_hours());

  // Identity: the restored runner re-serializes to the exact same container.
  EXPECT_EQ(ckpt::save_campaign(*restored.runner, restored.progress), bytes);
}

TEST(CkptCampaign, CheckpointBytesIdenticalAcrossJobs) {
  ckpt::CampaignProgress progress;
  progress.label = "jobs";
  progress.phases_done = {"usage_week"};
  std::vector<std::uint8_t> first;
  for (const int threads : {1, 4}) {
    sim::FleetRunner runner(small_faulted_config(threads));
    runner.run_usage_week();
    auto bytes = ckpt::save_campaign(runner, progress);
    if (first.empty()) {
      first = std::move(bytes);
    } else {
      EXPECT_EQ(bytes, first) << "checkpoint bytes differ between --jobs 1 and 4";
    }
  }
}

TEST(CkptCampaign, RestoredRunnerFinishesIdentically) {
  // Cut mid-campaign, then drive the original and the restored runner
  // through the same remaining phases: every simulated output must match.
  sim::FleetRunner original(small_faulted_config(1));
  original.run_usage_week();
  const auto bytes = ckpt::save_campaign(original, {});

  ckpt::RestoredCampaign restored;
  const auto err = ckpt::restore_campaign(bytes, /*threads=*/2, restored);
  ASSERT_FALSE(err) << err.detail;

  const SimTime t = SimTime::epoch() + Duration::hours(14);
  original.run_mr16_interference(t);
  original.harvest();
  restored.runner->run_mr16_interference(t);
  restored.runner->harvest();

  EXPECT_EQ(original.loss_ledger(), restored.runner->loss_ledger());
  EXPECT_EQ(telemetry::to_prometheus(original.metrics()),
            telemetry::to_prometheus(restored.runner->metrics()));
  EXPECT_EQ(original.trace(), restored.runner->trace());
  ckpt::Buf a;
  ckpt::save_store(a, original.store());
  ckpt::Buf b;
  ckpt::save_store(b, restored.runner->store());
  EXPECT_EQ(a.take(), b.take());
}

}  // namespace
}  // namespace wlm
