#include "classify/classifier.hpp"

#include <gtest/gtest.h>

#include "classify/dhcp_fingerprint.hpp"
#include "classify/dns.hpp"
#include "classify/http.hpp"
#include "classify/oui.hpp"
#include "classify/tls.hpp"
#include "classify/user_agent.hpp"
#include "core/rng.hpp"

namespace wlm::classify {
namespace {

ClientEvidence evidence_for(OsType os, bool with_ua = true) {
  ClientEvidence e;
  e.mac = MacAddress::from_u64(
      static_cast<std::uint64_t>(representative_oui(Vendor::kIntel)) << 24 | 1);
  e.dhcp_fingerprints.push_back(canonical_dhcp_params(os));
  if (with_ua) e.user_agents.push_back(canonical_user_agent(os));
  return e;
}

TEST(OsClassifier, ConsistentEvidence) {
  for (OsType os : {OsType::kWindows, OsType::kAppleIos, OsType::kMacOsX,
                    OsType::kAndroid, OsType::kChromeOs}) {
    EXPECT_EQ(classify_os(evidence_for(os)), os) << os_name(os);
  }
}

TEST(OsClassifier, ConflictingDhcpMeansUnknown) {
  // Dual-boot / VM host: two different stacks behind one MAC (paper SS3.2).
  ClientEvidence e;
  e.mac = MacAddress::from_u64(1);
  e.dhcp_fingerprints.push_back(canonical_dhcp_params(OsType::kWindows));
  e.dhcp_fingerprints.push_back(canonical_dhcp_params(OsType::kLinux));
  EXPECT_EQ(classify_os(e), OsType::kUnknown);
}

TEST(OsClassifier, UaOnlyEvidence) {
  ClientEvidence e;
  e.mac = MacAddress::from_u64(2);
  e.user_agents.push_back(canonical_user_agent(OsType::kAndroid));
  e.user_agents.push_back(canonical_user_agent(OsType::kAndroid, 1));
  EXPECT_EQ(classify_os(e), OsType::kAndroid);
}

TEST(OsClassifier, NoEvidenceFallsToVendorHint) {
  ClientEvidence e;
  e.mac = MacAddress::from_u64(
      static_cast<std::uint64_t>(representative_oui(Vendor::kSamsung)) << 24 | 9);
  EXPECT_EQ(classify_os(e, HeuristicsVersion::k2015), OsType::kAndroid);
  // The 2014 heuristics had no vendor fallback.
  EXPECT_EQ(classify_os(e, HeuristicsVersion::k2014), OsType::kUnknown);
}

TEST(OsClassifier, NothingAtAllIsUnknown) {
  ClientEvidence e;
  e.mac = MacAddress::from_u64(0x123456000001ULL);
  EXPECT_EQ(classify_os(e), OsType::kUnknown);
}

TEST(OsClassifier, Heuristics2014RejectPrefixMatches) {
  ClientEvidence e;
  e.mac = MacAddress::from_u64(3);
  auto params = canonical_dhcp_params(OsType::kWindows);
  params.push_back(224);  // vendor suffix
  e.dhcp_fingerprints.push_back(params);
  EXPECT_EQ(classify_os(e, HeuristicsVersion::k2014), OsType::kUnknown);
  EXPECT_EQ(classify_os(e, HeuristicsVersion::k2015), OsType::kWindows);
}

TEST(Entropy, DistinguishesTextFromRandom) {
  std::vector<std::uint8_t> text;
  for (int i = 0; i < 500; ++i) text.push_back("the quick brown fox "[i % 20]);
  EXPECT_FALSE(payload_high_entropy(text));

  Rng rng(1);
  std::vector<std::uint8_t> random(500);
  for (auto& b : random) b = static_cast<std::uint8_t>(rng.next_u64());
  EXPECT_TRUE(payload_high_entropy(random));
}

TEST(Entropy, ShortPayloadsNeverFlagged) {
  Rng rng(2);
  std::vector<std::uint8_t> tiny(32);
  for (auto& b : tiny) b = static_cast<std::uint8_t>(rng.next_u64());
  EXPECT_FALSE(payload_high_entropy(tiny));
}

TEST(MetadataExtraction, TlsFlow) {
  FlowSample s;
  s.transport = Transport::kTcp;
  s.dst_port = 443;
  s.first_payload = build_client_hello("play.spotify.com", 7);
  const auto meta = extract_metadata(s);
  EXPECT_TRUE(meta.saw_tls);
  EXPECT_EQ(meta.sni, "play.spotify.com");
  EXPECT_EQ(classify_flow(s), AppId::kSpotify);
}

TEST(MetadataExtraction, HttpFlow) {
  FlowSample s;
  s.transport = Transport::kTcp;
  s.dst_port = 80;
  const std::string req =
      build_http_request("GET", "www.hulu.com", "/watch", "UA/1", "video/mp4");
  s.first_payload.assign(req.begin(), req.end());
  const auto meta = extract_metadata(s);
  EXPECT_EQ(meta.http_host, "www.hulu.com");
  EXPECT_EQ(meta.http_content_type, "video/mp4");
  EXPECT_EQ(classify_flow(s), AppId::kHulu);
}

TEST(MetadataExtraction, DnsCorrelation) {
  FlowSample s;
  s.transport = Transport::kTcp;
  s.dst_port = 4070;  // spotify's port as secondary evidence
  s.dns_packet = encode_dns_query(1, "ap.spotify.com");
  const auto meta = extract_metadata(s);
  EXPECT_EQ(meta.dns_hostname, "ap.spotify.com");
  EXPECT_EQ(classify_flow(s), AppId::kSpotify);
}

TEST(MetadataExtraction, OpaquePayload) {
  FlowSample s;
  s.transport = Transport::kTcp;
  s.dst_port = 51413;
  Rng rng(5);
  s.first_payload.resize(256);
  for (auto& b : s.first_payload) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto meta = extract_metadata(s);
  EXPECT_TRUE(meta.high_entropy);
  EXPECT_FALSE(meta.saw_tls);
  EXPECT_EQ(classify_flow(s), AppId::kEncryptedP2p);
}

}  // namespace
}  // namespace wlm::classify
