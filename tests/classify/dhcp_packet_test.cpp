#include "classify/dhcp.hpp"

#include <gtest/gtest.h>

namespace wlm::classify {
namespace {

DhcpPacket sample(OsType os) {
  DhcpPacket p;
  p.type = DhcpMessageType::kDiscover;
  p.xid = 0xDEADBEEF;
  p.client_mac = MacAddress::from_u64(0x3c0754aabbccULL);
  p.parameter_request_list = canonical_dhcp_params(os);
  p.vendor_class = canonical_vendor_class(os);
  p.hostname = "client-host";
  return p;
}

TEST(DhcpWire, RoundTrip) {
  const DhcpPacket original = sample(OsType::kWindows);
  const auto bytes = encode_dhcp(original);
  const auto parsed = parse_dhcp(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, DhcpMessageType::kDiscover);
  EXPECT_EQ(parsed->xid, 0xDEADBEEF);
  EXPECT_EQ(parsed->client_mac, original.client_mac);
  EXPECT_EQ(parsed->parameter_request_list, original.parameter_request_list);
  EXPECT_EQ(parsed->vendor_class, "MSFT 5.0");
  EXPECT_EQ(parsed->hostname, "client-host");
}

TEST(DhcpWire, EmptyOptionsOmitted) {
  DhcpPacket p;
  p.client_mac = MacAddress::from_u64(1);
  const auto parsed = parse_dhcp(encode_dhcp(p));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->parameter_request_list.empty());
  EXPECT_TRUE(parsed->vendor_class.empty());
}

TEST(DhcpWire, RejectsMalformed) {
  EXPECT_FALSE(parse_dhcp({}).has_value());
  std::vector<std::uint8_t> short_pkt(100, 0);
  EXPECT_FALSE(parse_dhcp(short_pkt).has_value());
  auto bytes = encode_dhcp(sample(OsType::kAndroid));
  bytes[0] = 2;  // BOOTREPLY, not a client message
  EXPECT_FALSE(parse_dhcp(bytes).has_value());
  auto cookie = encode_dhcp(sample(OsType::kAndroid));
  cookie[236] = 0x00;  // break the magic cookie
  EXPECT_FALSE(parse_dhcp(cookie).has_value());
}

TEST(DhcpWire, TruncatedOptionsYieldPartialParse) {
  auto bytes = encode_dhcp(sample(OsType::kMacOsX));
  bytes.resize(bytes.size() - 6);  // cut into the hostname option
  const auto parsed = parse_dhcp(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->parameter_request_list, canonical_dhcp_params(OsType::kMacOsX));
}

class DhcpPacketOs : public ::testing::TestWithParam<OsType> {};

TEST_P(DhcpPacketOs, PacketRoundTripIdentifiesOs) {
  const OsType os = GetParam();
  const auto parsed = parse_dhcp(encode_dhcp(sample(os)));
  ASSERT_TRUE(parsed.has_value());
  const auto detected = os_from_dhcp_packet(*parsed);
  ASSERT_TRUE(detected.has_value());
  EXPECT_EQ(*detected, os) << os_name(os);
}

INSTANTIATE_TEST_SUITE_P(AllFingerprintedOses, DhcpPacketOs,
                         ::testing::Values(OsType::kWindows, OsType::kMacOsX,
                                           OsType::kAppleIos, OsType::kAndroid,
                                           OsType::kChromeOs, OsType::kLinux,
                                           OsType::kWindowsMobile, OsType::kXbox));

TEST(DhcpWire, VendorClassRescuesUnknownParamList) {
  DhcpPacket p;
  p.client_mac = MacAddress::from_u64(5);
  p.parameter_request_list = {99, 98};  // unrecognized
  p.vendor_class = "android-dhcp-9";
  EXPECT_EQ(os_from_dhcp_packet(p), OsType::kAndroid);
}

TEST(DhcpWire, ParamListBreaksVendorClassTie) {
  // Windows Mobile shares "MSFT 5.0" with desktop Windows; the option-55
  // list is the discriminator.
  DhcpPacket p;
  p.client_mac = MacAddress::from_u64(6);
  p.parameter_request_list = canonical_dhcp_params(OsType::kWindowsMobile);
  p.vendor_class = "MSFT 5.0";
  EXPECT_EQ(os_from_dhcp_packet(p), OsType::kWindowsMobile);
}

TEST(DhcpWire, AppleSendsNoVendorClass) {
  EXPECT_TRUE(canonical_vendor_class(OsType::kAppleIos).empty());
  EXPECT_TRUE(canonical_vendor_class(OsType::kMacOsX).empty());
}

}  // namespace
}  // namespace wlm::classify
