#include "classify/dhcp_fingerprint.hpp"

#include <gtest/gtest.h>

namespace wlm::classify {
namespace {

class DhcpRoundTrip : public ::testing::TestWithParam<OsType> {};

TEST_P(DhcpRoundTrip, CanonicalParamsIdentifyOs) {
  const OsType os = GetParam();
  const auto params = canonical_dhcp_params(os);
  const auto detected = os_from_dhcp(params);
  ASSERT_TRUE(detected.has_value());
  EXPECT_EQ(*detected, os);
}

INSTANTIATE_TEST_SUITE_P(AllFingerprintedOses, DhcpRoundTrip,
                         ::testing::Values(OsType::kWindows, OsType::kMacOsX,
                                           OsType::kAppleIos, OsType::kAndroid,
                                           OsType::kChromeOs, OsType::kLinux,
                                           OsType::kBlackberry, OsType::kPlaystation,
                                           OsType::kWindowsMobile, OsType::kXbox));

TEST(Dhcp, EmptyListUnidentified) {
  EXPECT_FALSE(os_from_dhcp({}).has_value());
}

TEST(Dhcp, UnknownSequenceUnidentified) {
  const DhcpParams junk{99, 98, 97, 96};
  EXPECT_FALSE(os_from_dhcp(junk).has_value());
}

TEST(Dhcp, PrefixMatchWithVendorSuffix) {
  // Clients sometimes append vendor options after the canonical list.
  auto params = canonical_dhcp_params(OsType::kAndroid);
  params.push_back(224);
  params.push_back(225);
  const auto detected = os_from_dhcp(params);
  ASSERT_TRUE(detected.has_value());
  EXPECT_EQ(*detected, OsType::kAndroid);
}

TEST(Dhcp, ShortPrefixDoesNotMatch) {
  // Three options alone are too generic to identify anything.
  const DhcpParams generic{1, 3, 6};
  EXPECT_FALSE(os_from_dhcp(generic).has_value());
}

TEST(Dhcp, GenericFallbackParamsForUnfingerprinted) {
  const auto params = canonical_dhcp_params(OsType::kUnknown);
  EXPECT_EQ(params, (DhcpParams{1, 3, 6}));
}

}  // namespace
}  // namespace wlm::classify
