#include "classify/dns.hpp"

#include <gtest/gtest.h>

namespace wlm::classify {
namespace {

TEST(Dns, QueryRoundTrip) {
  const auto packet = encode_dns_query(0x1234, "www.Netflix.COM");
  const auto msg = parse_dns(packet);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->id, 0x1234);
  EXPECT_FALSE(msg->is_response);
  ASSERT_EQ(msg->questions.size(), 1u);
  EXPECT_EQ(msg->questions[0].qname, "www.netflix.com");  // lowercased
  EXPECT_EQ(msg->questions[0].qtype, 1);
  EXPECT_EQ(msg->questions[0].qclass, 1);
}

TEST(Dns, SingleLabelName) {
  const auto msg = parse_dns(encode_dns_query(1, "localhost"));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->questions[0].qname, "localhost");
}

TEST(Dns, DeepSubdomain) {
  const std::string name = "a.b.c.d.e.example.com";
  const auto msg = parse_dns(encode_dns_query(2, name));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->questions[0].qname, name);
}

TEST(Dns, TruncatedHeaderRejected) {
  std::vector<std::uint8_t> short_packet(11, 0);
  EXPECT_FALSE(parse_dns(short_packet).has_value());
  EXPECT_FALSE(parse_dns({}).has_value());
}

TEST(Dns, TruncatedQuestionRejected) {
  auto packet = encode_dns_query(7, "example.com");
  packet.resize(packet.size() - 3);
  EXPECT_FALSE(parse_dns(packet).has_value());
}

TEST(Dns, CompressionPointerFollowed) {
  // Hand-build a response whose question name is a pointer to offset 12...
  // Instead: message with name at offset 12 and a second question pointing
  // back at it.
  auto packet = encode_dns_query(9, "ptr.example.org");
  packet[5] = 2;  // QDCOUNT = 2
  // Second question: pointer to offset 12, qtype/qclass.
  packet.push_back(0xC0);
  packet.push_back(12);
  packet.push_back(0x00);
  packet.push_back(0x01);
  packet.push_back(0x00);
  packet.push_back(0x01);
  const auto msg = parse_dns(packet);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->questions.size(), 2u);
  EXPECT_EQ(msg->questions[1].qname, "ptr.example.org");
}

TEST(Dns, PointerLoopRejected) {
  auto packet = encode_dns_query(9, "x.example.org");
  packet[5] = 2;
  // A pointer pointing at itself.
  const auto self_offset = packet.size();
  packet.push_back(0xC0);
  packet.push_back(static_cast<std::uint8_t>(self_offset));
  packet.push_back(0x00);
  packet.push_back(0x01);
  packet.push_back(0x00);
  packet.push_back(0x01);
  EXPECT_FALSE(parse_dns(packet).has_value());
  // Regression: the loop must be reported as kPointerLoop (the old 16-hop
  // bound also misfiled deep-but-legal chains; see kDnsMaxPointerHops).
  EXPECT_EQ(parse_dns_ex(packet).error, ParseError::kPointerLoop);
}

TEST(Dns, ResponseFlagParsed) {
  auto packet = encode_dns_query(5, "example.net");
  packet[2] |= 0x80;  // QR bit
  const auto msg = parse_dns(packet);
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->is_response);
}

TEST(Dns, LongLabelTruncatedTo63) {
  const std::string monster(100, 'a');
  const auto packet = encode_dns_query(1, monster + ".example.com");
  const auto msg = parse_dns(packet);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->questions[0].qname, std::string(63, 'a') + ".example.com");
}

}  // namespace
}  // namespace wlm::classify
