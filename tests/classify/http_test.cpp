#include "classify/http.hpp"

#include <gtest/gtest.h>

namespace wlm::classify {
namespace {

TEST(Http, ParsesSimpleGet) {
  const auto head = parse_http_request(
      "GET /index.html HTTP/1.1\r\nHost: www.Example.COM\r\nUser-Agent: TestUA/1.0\r\n\r\n");
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->method, "GET");
  EXPECT_EQ(head->target, "/index.html");
  EXPECT_EQ(head->version, "HTTP/1.1");
  EXPECT_EQ(head->host, "www.example.com");  // lowercased
  EXPECT_EQ(head->user_agent, "TestUA/1.0");
}

TEST(Http, BuildParseRoundTrip) {
  const std::string req =
      build_http_request("POST", "api.dropbox.com", "/upload", "Client/2", "video/mp4");
  const auto head = parse_http_request(req);
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->method, "POST");
  EXPECT_EQ(head->host, "api.dropbox.com");
  EXPECT_EQ(head->content_type, "video/mp4");
}

TEST(Http, StripsPortFromHost) {
  const auto head =
      parse_http_request("GET / HTTP/1.1\r\nHost: example.com:8080\r\n\r\n");
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->host, "example.com");
}

TEST(Http, HeaderNamesCaseInsensitive) {
  const auto head = parse_http_request(
      "GET / HTTP/1.0\r\nHOST: a.example\r\nuser-agent: UA\r\nCONTENT-TYPE: Audio/MPEG\r\n\r\n");
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->host, "a.example");
  EXPECT_EQ(head->user_agent, "UA");
  EXPECT_EQ(head->content_type, "audio/mpeg");  // value lowercased
}

TEST(Http, ToleratesBareLfLineEndings) {
  const auto head = parse_http_request("GET / HTTP/1.1\nHost: lf.example\n\n");
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->host, "lf.example");
}

TEST(Http, TruncatedHeadersStillYieldRequestLine) {
  const auto head = parse_http_request("GET /path HTTP/1.1\r\nHost: trunc.exam");
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->target, "/path");
  // The cut-off host is parsed from what arrived (classification uses the
  // first packet and must tolerate split headers).
  EXPECT_EQ(head->host, "trunc.exam");
}

TEST(Http, RejectsNonHttpPayloads) {
  EXPECT_FALSE(parse_http_request("").has_value());
  EXPECT_FALSE(parse_http_request("\x16\x03\x01 binary").has_value());
  EXPECT_FALSE(parse_http_request("NOSPACE").has_value());
  EXPECT_FALSE(parse_http_request("GET /only-two-tokens").has_value());
  EXPECT_FALSE(parse_http_request("GET / NOTHTTP/1.1").has_value());
}

TEST(Http, JunkHeaderLinesIgnored) {
  const auto head = parse_http_request(
      "GET / HTTP/1.1\r\ngarbage line without colon\r\nHost: ok.example\r\n\r\n");
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->host, "ok.example");
}

TEST(Http, WhitespaceTrimmed) {
  const auto head =
      parse_http_request("GET / HTTP/1.1\r\nHost:   spaced.example   \r\n\r\n");
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->host, "spaced.example");
}

TEST(Http, BodyAfterHeadersIgnored) {
  const auto head = parse_http_request(
      "POST /x HTTP/1.1\r\nHost: b.example\r\n\r\nHost: fake.example\r\n");
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->host, "b.example");
}

}  // namespace
}  // namespace wlm::classify
