// Differential harness for the allocation-free `_into` variants the
// hot-path rewrite added: builders must emit byte-identical packets, parsers
// must populate identical structures, and — critically — reused scratch
// slots must not leak state from a previous (larger) input into the next
// parse. Every check runs the by-value original as the oracle.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "classify/classifier.hpp"
#include "classify/dns.hpp"
#include "classify/http.hpp"
#include "classify/tls.hpp"
#include "classify/user_agent.hpp"

namespace wlm::classify {
namespace {

TEST(IntoVariants, DnsEncodeMatchesByValue) {
  std::vector<std::uint8_t> out;
  for (const auto* qname : {"netflix.com", "a.b.c.example", "x", ""}) {
    for (const std::uint16_t id : {0u, 1u, 0xBEEFu}) {
      encode_dns_query_into(id, qname, out);
      EXPECT_EQ(out, encode_dns_query(id, qname)) << qname << "/" << id;
    }
  }
}

TEST(IntoVariants, DnsParseReusesSlotsWithoutLeakingState) {
  DnsMessage scratch;
  // Parse a long name first so the scratch question's string has stale
  // capacity, then a short one: results must still equal the fresh parse.
  const auto long_pkt = encode_dns_query(7, "very-long-subdomain.of.some.example.net");
  const auto short_pkt = encode_dns_query(9, "io.io");
  ASSERT_EQ(parse_dns_into(long_pkt, scratch), ParseError::kNone);
  ASSERT_EQ(parse_dns_into(short_pkt, scratch), ParseError::kNone);
  const auto fresh = parse_dns(short_pkt);
  ASSERT_TRUE(fresh.has_value());
  ASSERT_EQ(scratch.questions.size(), fresh->questions.size());
  for (std::size_t i = 0; i < fresh->questions.size(); ++i) {
    EXPECT_EQ(scratch.questions[i].qname, fresh->questions[i].qname);
  }
  EXPECT_EQ(scratch.id, fresh->id);
}

TEST(IntoVariants, TlsBuildMatchesByValue) {
  std::vector<std::uint8_t> out;
  for (const auto* sni : {"www.netflix.com", "a", ""}) {
    for (const std::uint64_t rnd : {0ULL, 0x0123456789abcdefULL, ~0ULL}) {
      build_client_hello_into(sni, rnd, out);
      EXPECT_EQ(out, build_client_hello(sni, rnd)) << sni << "/" << rnd;
    }
  }
}

TEST(IntoVariants, TlsParseResetsScratchBetweenCalls) {
  ClientHelloInfo scratch;
  const auto with_sni = build_client_hello("stale.example.com", 42);
  const auto without_sni = build_client_hello("", 43);
  ASSERT_EQ(parse_client_hello_into(with_sni, scratch), ParseError::kNone);
  EXPECT_EQ(scratch.sni, "stale.example.com");
  ASSERT_EQ(parse_client_hello_into(without_sni, scratch), ParseError::kNone);
  const auto fresh = parse_client_hello(without_sni);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(scratch.sni, fresh->sni);
  EXPECT_TRUE(scratch.sni.empty()) << "stale SNI leaked through scratch reuse";
  EXPECT_EQ(scratch.cipher_suite_count, fresh->cipher_suite_count);
  EXPECT_EQ(scratch.legacy_version, fresh->legacy_version);
}

TEST(IntoVariants, HttpBuildMatchesByValue) {
  std::string out;
  build_http_request_into("GET", "youtube.com", "/watch?v=1",
                          canonical_user_agent(OsType::kAndroid), "", out);
  EXPECT_EQ(out, build_http_request("GET", "youtube.com", "/watch?v=1",
                                    canonical_user_agent(OsType::kAndroid)));
  build_http_request_into("POST", "x.io", "/", "", "application/json", out);
  EXPECT_EQ(out, build_http_request("POST", "x.io", "/", "", "application/json"));
}

TEST(IntoVariants, HttpParseClearsAllHeadFields) {
  HttpRequestHead scratch;
  const std::string rich = build_http_request("GET", "host-one.example", "/a",
                                              canonical_user_agent(OsType::kWindows));
  ASSERT_EQ(parse_http_request_into(rich, scratch), ParseError::kNone);
  ASSERT_FALSE(scratch.user_agent.empty());
  const std::string bare = "GET /b HTTP/1.1\r\n\r\n";
  ASSERT_EQ(parse_http_request_into(bare, scratch), ParseError::kNone);
  const auto fresh = parse_http_request(bare);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(scratch.method, fresh->method);
  EXPECT_EQ(scratch.target, fresh->target);
  EXPECT_EQ(scratch.host, fresh->host);
  EXPECT_EQ(scratch.user_agent, fresh->user_agent);
  EXPECT_EQ(scratch.content_type, fresh->content_type);
  EXPECT_TRUE(scratch.host.empty()) << "stale host leaked through scratch reuse";
  EXPECT_TRUE(scratch.user_agent.empty()) << "stale UA leaked through scratch reuse";
}

TEST(IntoVariants, CanonicalUserAgentViewMatchesString) {
  for (int os = 0; os < kOsTypeCount; ++os) {
    for (unsigned variant = 0; variant < 4; ++variant) {
      const auto type = static_cast<OsType>(os);
      EXPECT_EQ(std::string(canonical_user_agent_view(type, variant)),
                canonical_user_agent(type, variant))
          << os << "/" << variant;
    }
  }
}

TEST(IntoVariants, ExtractMetadataFastIntoMatchesByValueAcrossReuse) {
  // One FlowMetadata reused across heterogeneous samples (DNS+TLS, then
  // HTTP, then raw) must equal a fresh extraction every time.
  std::vector<FlowSample> samples;
  {
    FlowSample s;
    s.transport = Transport::kTcp;
    s.dst_port = 443;
    s.dns_packet = encode_dns_query(1, "api.dropbox.com");
    s.first_payload = build_client_hello("api.dropbox.com", 99);
    samples.push_back(s);
  }
  {
    FlowSample s;
    s.transport = Transport::kTcp;
    s.dst_port = 80;
    const std::string req = build_http_request("GET", "www.espn.com", "/feed",
                                               canonical_user_agent(OsType::kMacOsX));
    s.first_payload.assign(req.begin(), req.end());
    samples.push_back(s);
  }
  {
    FlowSample s;
    s.transport = Transport::kUdp;
    s.dst_port = 6881;
    for (int i = 0; i < 256; ++i)
      s.first_payload.push_back(static_cast<std::uint8_t>((i * 131) & 0xFF));
    samples.push_back(s);
  }
  FlowMetadata reused;
  for (const auto& sample : samples) {
    extract_metadata_fast_into(sample, reused);
    const FlowMetadata fresh = extract_metadata_fast(sample);
    EXPECT_EQ(reused.transport, fresh.transport);
    EXPECT_EQ(reused.dst_port, fresh.dst_port);
    EXPECT_EQ(reused.dns_hostname, fresh.dns_hostname);
    EXPECT_EQ(reused.sni, fresh.sni);
    EXPECT_EQ(reused.http_host, fresh.http_host);
    EXPECT_EQ(reused.http_content_type, fresh.http_content_type);
    EXPECT_EQ(reused.saw_tls, fresh.saw_tls);
    EXPECT_EQ(reused.high_entropy, fresh.high_entropy);
  }
}

}  // namespace
}  // namespace wlm::classify
