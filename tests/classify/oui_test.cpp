#include "classify/oui.hpp"

#include <gtest/gtest.h>

namespace wlm::classify {
namespace {

TEST(Oui, KnownVendors) {
  EXPECT_EQ(vendor_for(MacAddress::from_u64(0x3C0754000001ULL)), Vendor::kApple);
  EXPECT_EQ(vendor_for(MacAddress::from_u64(0x001B21000001ULL)), Vendor::kIntel);
  EXPECT_EQ(vendor_for(MacAddress::from_u64(0x001529000001ULL)), Vendor::kNovatel);
  EXPECT_EQ(vendor_for(MacAddress::from_u64(0x88154E000001ULL)), Vendor::kCisco);
}

TEST(Oui, UnknownOui) {
  EXPECT_EQ(vendor_for(MacAddress::from_u64(0x123456000001ULL)), Vendor::kUnknown);
}

TEST(Oui, LocallyAdministeredIsAlwaysUnknown) {
  // Randomized MACs defeat OUI lookup even if bits collide with a vendor.
  EXPECT_EQ(vendor_for(MacAddress::from_u64(0x0218AA000001ULL)), Vendor::kUnknown);
}

TEST(Oui, HotspotVendors) {
  EXPECT_TRUE(is_hotspot_vendor(Vendor::kNovatel));
  EXPECT_TRUE(is_hotspot_vendor(Vendor::kSierraWireless));
  EXPECT_TRUE(is_hotspot_vendor(Vendor::kPantech));
  EXPECT_FALSE(is_hotspot_vendor(Vendor::kApple));
  EXPECT_FALSE(is_hotspot_vendor(Vendor::kCisco));
}

TEST(Oui, OsHints) {
  EXPECT_EQ(os_hint_from_vendor(Vendor::kSamsung), OsType::kAndroid);
  EXPECT_EQ(os_hint_from_vendor(Vendor::kRim), OsType::kBlackberry);
  EXPECT_EQ(os_hint_from_vendor(Vendor::kSony), OsType::kPlaystation);
  // Apple is deliberately ambiguous (iOS vs Mac OS X).
  EXPECT_FALSE(os_hint_from_vendor(Vendor::kApple).has_value());
  EXPECT_FALSE(os_hint_from_vendor(Vendor::kIntel).has_value());
}

TEST(Oui, RegistryIsSortedForBinarySearch) {
  const auto reg = oui_registry();
  for (std::size_t i = 1; i < reg.size(); ++i) {
    EXPECT_LT(reg[i - 1].oui, reg[i].oui);
  }
}

TEST(Oui, RepresentativeOuiRoundTrips) {
  for (Vendor v : {Vendor::kApple, Vendor::kSamsung, Vendor::kNovatel, Vendor::kDropcam}) {
    const std::uint32_t oui = representative_oui(v);
    const auto mac = MacAddress::from_u64(static_cast<std::uint64_t>(oui) << 24 | 0x42);
    EXPECT_EQ(vendor_for(mac), v);
  }
}

TEST(Oui, VendorNames) {
  EXPECT_EQ(vendor_name(Vendor::kSierraWireless), "Sierra Wireless");
  EXPECT_EQ(vendor_name(Vendor::kUnknown), "Unknown");
}

}  // namespace
}  // namespace wlm::classify
