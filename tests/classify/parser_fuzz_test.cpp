// Structure-aware fuzz harness for the slow-path protocol parsers.
//
// Each corpus starts from syntactically valid packets built by the repo's
// own encoders, then applies protocol-shaped mutations: truncations at every
// boundary, lying length fields, compression-pointer loops, zero-length
// options, bit flips, and random splices. The contract under test:
//
//   1. no parser ever crashes or reads out of bounds (the sanitizer lanes
//      in tools/ci.sh run this suite under ASan/UBSan/TSan);
//   2. every rejection is typed — Parsed.error is a named ParseError, never
//      an unexplained nullopt;
//   3. parsing is deterministic: same bytes, same result, twice;
//   4. the legacy optional wrappers agree with the _ex variants;
//   5. extract_metadata_fast stays metadata-identical to extract_metadata
//      on arbitrary (not just well-formed) payload bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "classify/classifier.hpp"
#include "classify/dhcp.hpp"
#include "classify/dns.hpp"
#include "classify/http.hpp"
#include "classify/parse_error.hpp"
#include "classify/tls.hpp"
#include "core/rng.hpp"

namespace wlm::classify {
namespace {

using Bytes = std::vector<std::uint8_t>;

constexpr int kMutationsPerSeed = 400;

/// One protocol-shaped mutation of `base`; always returns a packet (maybe
/// identical) and never draws more than a few values from the rng.
Bytes mutate(const Bytes& base, Rng& rng) {
  Bytes out = base;
  switch (rng.uniform_int(0, 6)) {
    case 0:  // truncate anywhere, including to empty
      out.resize(static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(out.size()))));
      break;
    case 1:  // single byte flip
      if (!out.empty()) {
        out[static_cast<std::size_t>(rng.next_u64() % out.size())] ^=
            static_cast<std::uint8_t>(1u << (rng.next_u64() % 8));
      }
      break;
    case 2:  // length-field lie: overwrite a byte with an extreme value
      if (!out.empty()) {
        out[static_cast<std::size_t>(rng.next_u64() % out.size())] =
            rng.chance(0.5) ? 0xFF : 0x00;
      }
      break;
    case 3: {  // splice a window of random bytes
      if (!out.empty()) {
        const auto at = static_cast<std::size_t>(rng.next_u64() % out.size());
        const auto len = std::min<std::size_t>(out.size() - at,
                                               static_cast<std::size_t>(rng.uniform_int(1, 8)));
        for (std::size_t i = 0; i < len; ++i) {
          out[at + i] = static_cast<std::uint8_t>(rng.next_u64());
        }
      }
      break;
    }
    case 4:  // duplicate a tail (nested/overlapping structures)
      if (out.size() >= 2) {
        const auto at = static_cast<std::size_t>(rng.next_u64() % (out.size() / 2));
        out.insert(out.end(), out.begin() + static_cast<std::ptrdiff_t>(at), out.end());
      }
      break;
    case 5:  // prepend garbage (mis-framed capture)
      out.insert(out.begin(), static_cast<std::uint8_t>(rng.next_u64()));
      break;
    default:  // pure random packet of similar size
      out.assign(base.size(), 0);
      for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
      break;
  }
  return out;
}

/// The typed-failure contract shared by all parsers.
template <typename T>
void expect_typed_and_deterministic(const Parsed<T>& first, const Parsed<T>& second) {
  // A result either carries a value with kNone, or no value with a reason.
  EXPECT_EQ(first.value.has_value(), first.error == ParseError::kNone);
  EXPECT_LE(static_cast<int>(first.error), static_cast<int>(ParseError::kPointerLoop));
  EXPECT_FALSE(parse_error_name(first.error).empty());
  // Same bytes, same outcome.
  EXPECT_EQ(first.error, second.error);
  EXPECT_EQ(first.value.has_value(), second.value.has_value());
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, DnsSurvivesMutations) {
  Rng rng{GetParam() ^ 0xD45ULL};
  const Bytes base = encode_dns_query(0x4242, "deep.api.files.example-service.com");
  for (int i = 0; i < kMutationsPerSeed; ++i) {
    const Bytes packet = mutate(base, rng);
    const auto a = parse_dns_ex(packet);
    const auto b = parse_dns_ex(packet);
    expect_typed_and_deterministic(a, b);
    EXPECT_EQ(parse_dns(packet).has_value(), a.ok());
  }
}

// Hand-built compression-pointer attacks: self-loops, mutual loops, and
// chains hugging the hop cap from both sides.
TEST(ParserFuzzDns, PointerLoopsFailTyped) {
  auto header = [] {
    Bytes p(12, 0);
    p[5] = 1;  // QDCOUNT = 1
    return p;
  };

  {  // pointer to itself
    Bytes p = header();
    p.push_back(0xC0);
    p.push_back(12);
    p.push_back(0);  // qtype/qclass space (never reached)
    const auto r = parse_dns_ex(p);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.error, ParseError::kPointerLoop);
  }
  {  // two pointers pointing at each other
    Bytes p = header();
    p.push_back(0xC0);
    p.push_back(14);  // at 12 -> 14
    p.push_back(0xC0);
    p.push_back(12);  // at 14 -> 12
    const auto r = parse_dns_ex(p);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.error, ParseError::kPointerLoop);
  }

  // A linear chain of N pointers ending in a real name: N hops. The bound
  // admits exactly kDnsMaxPointerHops and rejects one more. Layout: the
  // QNAME at offset 12 is a lone pointer, QTYPE/QCLASS at 14, and the rest
  // of the chain plus the terminal label live past the question at 18+.
  auto chain = [&](int hops) {
    Bytes p = header();
    const std::size_t rest = 18;  // chain continuation area
    const std::size_t terminal = rest + 2 * static_cast<std::size_t>(hops - 1);
    auto push_ptr = [&](std::size_t target) {
      p.push_back(static_cast<std::uint8_t>(0xC0 | (target >> 8)));
      p.push_back(static_cast<std::uint8_t>(target & 0xFF));
    };
    push_ptr(hops == 1 ? terminal : rest);          // pointer #1, at offset 12
    p.insert(p.end(), {0x00, 0x01, 0x00, 0x01});    // QTYPE/QCLASS
    for (int h = 2; h <= hops; ++h) {               // pointers #2..#N
      const std::size_t next = rest + 2 * static_cast<std::size_t>(h - 1);
      push_ptr(h == hops ? terminal : next);
    }
    p.push_back(1);
    p.push_back('a');
    p.push_back(0);
    return p;
  };

  const auto at_cap = parse_dns_ex(chain(kDnsMaxPointerHops));
  EXPECT_TRUE(at_cap.ok()) << parse_error_name(at_cap.error);
  ASSERT_EQ(at_cap.value->questions.size(), 1u);
  EXPECT_EQ(at_cap.value->questions[0].qname, "a");

  const auto past_cap = parse_dns_ex(chain(kDnsMaxPointerHops + 1));
  EXPECT_FALSE(past_cap.ok());
  EXPECT_EQ(past_cap.error, ParseError::kPointerLoop);
}

TEST_P(ParserFuzz, TlsSurvivesMutations) {
  Rng rng{GetParam() ^ 0x715ULL};
  const Bytes base = build_client_hello("login.fuzz-corpus.example.net", GetParam());
  // Every truncation boundary, deterministically.
  for (std::size_t n = 0; n <= base.size(); ++n) {
    const Bytes prefix(base.begin(), base.begin() + static_cast<std::ptrdiff_t>(n));
    const auto r = parse_client_hello_ex(prefix);
    expect_typed_and_deterministic(r, parse_client_hello_ex(prefix));
    if (n < base.size()) {
      EXPECT_FALSE(r.ok()) << "truncation at " << n << " accepted";
    }
  }
  for (int i = 0; i < kMutationsPerSeed; ++i) {
    const Bytes packet = mutate(base, rng);
    const auto a = parse_client_hello_ex(packet);
    expect_typed_and_deterministic(a, parse_client_hello_ex(packet));
    EXPECT_EQ(parse_client_hello(packet).has_value(), a.ok());
  }
}

TEST_P(ParserFuzz, HttpSurvivesMutations) {
  Rng rng{GetParam() ^ 0x477ULL};
  const std::string request = build_http_request(
      "GET", "cdn.fuzz-corpus.example.net", "/stream/v1?id=42",
      "Mozilla/5.0 (X11; Linux x86_64)", "video/mp4");
  const Bytes base(request.begin(), request.end());
  for (int i = 0; i < kMutationsPerSeed; ++i) {
    const Bytes packet = mutate(base, rng);
    const std::string_view text(reinterpret_cast<const char*>(packet.data()), packet.size());
    const auto a = parse_http_request_ex(text);
    expect_typed_and_deterministic(a, parse_http_request_ex(text));
    EXPECT_EQ(parse_http_request(text).has_value(), a.ok());
  }
}

TEST_P(ParserFuzz, DhcpSurvivesMutations) {
  Rng rng{GetParam() ^ 0xD4C9ULL};
  DhcpPacket packet;
  packet.type = DhcpMessageType::kRequest;
  packet.xid = 0xFEEDF00D;
  packet.client_mac = MacAddress::from_u64(0x0011'2233'4455ULL);
  packet.parameter_request_list = canonical_dhcp_params(OsType::kWindows);
  packet.vendor_class = "MSFT 5.0";
  packet.hostname = "fuzz-host";
  const Bytes base = encode_dhcp(packet);

  for (int i = 0; i < kMutationsPerSeed; ++i) {
    const Bytes mutated = mutate(base, rng);
    const auto a = parse_dhcp_ex(mutated);
    expect_typed_and_deterministic(a, parse_dhcp_ex(mutated));
    EXPECT_EQ(parse_dhcp(mutated).has_value(), a.ok());
  }

  {  // zero-length options followed by garbage must parse (options tolerate)
    Bytes zeros = base;
    zeros.pop_back();           // drop the end marker
    zeros.push_back(55);        // option with len 0
    zeros.push_back(0);
    zeros.push_back(60);        // option whose length lies past the buffer
    zeros.push_back(200);
    const auto r = parse_dhcp_ex(zeros);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.value->parameter_request_list.empty());  // len-0 overwrite
  }
}

// The first-byte dispatch must be behavior-identical to the reference
// cascade on arbitrary bytes, not only on well-formed packets.
TEST_P(ParserFuzz, FastMetadataMatchesReferenceOnArbitraryBytes) {
  Rng rng{GetParam() ^ 0xFA57ULL};
  const Bytes tls = build_client_hello("a.example.com", 1);
  const std::string http_str = build_http_request("POST", "b.example.org", "/x", "curl/7.0");
  const Bytes http(http_str.begin(), http_str.end());
  const Bytes dns = encode_dns_query(7, "c.example.net");

  for (int i = 0; i < kMutationsPerSeed; ++i) {
    FlowSample sample;
    sample.transport = rng.chance(0.5) ? Transport::kTcp : Transport::kUdp;
    sample.dst_port = static_cast<std::uint16_t>(rng.next_u64());
    switch (rng.uniform_int(0, 3)) {
      case 0:
        sample.first_payload = mutate(tls, rng);
        break;
      case 1:
        sample.first_payload = mutate(http, rng);
        break;
      case 2:
        sample.first_payload.resize(static_cast<std::size_t>(rng.uniform_int(0, 300)));
        for (auto& b : sample.first_payload) b = static_cast<std::uint8_t>(rng.next_u64());
        break;
      default:
        break;  // empty payload
    }
    if (rng.chance(0.5)) sample.dns_packet = mutate(dns, rng);

    const FlowMetadata ref = extract_metadata(sample);
    const FlowMetadata fast = extract_metadata_fast(sample);
    ASSERT_EQ(ref.dns_hostname, fast.dns_hostname) << "iteration " << i;
    ASSERT_EQ(ref.http_host, fast.http_host) << "iteration " << i;
    ASSERT_EQ(ref.http_content_type, fast.http_content_type) << "iteration " << i;
    ASSERT_EQ(ref.sni, fast.sni) << "iteration " << i;
    ASSERT_EQ(ref.saw_tls, fast.saw_tls) << "iteration " << i;
    ASSERT_EQ(ref.high_entropy, fast.high_entropy) << "iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1ULL, 7ULL, 42ULL, 1337ULL, 2015ULL, 99991ULL));

}  // namespace
}  // namespace wlm::classify
