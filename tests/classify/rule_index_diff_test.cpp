// Differential harness: the compiled RuleIndex + VerdictCache fast path
// must be verdict-identical to the legacy linear engine on every input —
// per-flow, per-fragment, per-evidence-lookup, and all the way up to the
// rendered Table 3/5/6 rollups. The reference engine is the oracle; any
// divergence is a fast-path bug by definition.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "classify/classifier.hpp"
#include "classify/dhcp_fingerprint.hpp"
#include "classify/rule_index.hpp"
#include "classify/rules.hpp"
#include "classify/user_agent.hpp"
#include "classify/verdict_cache.hpp"
#include "core/rng.hpp"
#include "traffic/flowgen.hpp"

namespace wlm::classify {
namespace {

void expect_metadata_equal(const FlowMetadata& a, const FlowMetadata& b,
                           const std::string& context) {
  EXPECT_EQ(a.transport, b.transport) << context;
  EXPECT_EQ(a.dst_port, b.dst_port) << context;
  EXPECT_EQ(a.dns_hostname, b.dns_hostname) << context;
  EXPECT_EQ(a.http_host, b.http_host) << context;
  EXPECT_EQ(a.http_content_type, b.http_content_type) << context;
  EXPECT_EQ(a.sni, b.sni) << context;
  EXPECT_EQ(a.saw_tls, b.saw_tls) << context;
  EXPECT_EQ(a.high_entropy, b.high_entropy) << context;
}

class SeededDiff : public ::testing::TestWithParam<std::uint64_t> {};

// The core sweep: >= 20k generated flows per seed (5 seeds = >= 100k total),
// every app x OS combination, real wire bytes. Checks three layers at once:
// metadata extraction, the stateless rule match, and the stateful two-tier
// classifier against the always-slow reference.
TEST_P(SeededDiff, GeneratedFlowsClassifyIdentically) {
  const std::uint64_t seed = GetParam();
  traffic::FlowGenerator gen{Rng{seed}};
  Rng volumes{seed ^ 0xD1FFULL};

  const auto& catalog = app_catalog();
  const auto& reference = RuleSet::standard();
  const auto& index = RuleIndex::standard();
  TwoTierClassifier fast(ClassifierMode::kIndexed, /*cache_capacity=*/1024);
  TwoTierClassifier slow(ClassifierMode::kReference);

  constexpr int kFlowsPerSeed = 20'000;
  int flows = 0;
  std::uint32_t salt = 0;
  while (flows < kFlowsPerSeed) {
    for (const auto& app : catalog) {
      if (flows >= kFlowsPerSeed) break;
      const auto os = static_cast<OsType>(flows % kOsTypeCount);
      const auto up = volumes.next_u64() % (8u << 20);
      const auto down = volumes.next_u64() % (64u << 20);
      const auto flow = gen.make_flow(app.id, os, up, down);
      ++flows;
      ++salt;

      const FlowMetadata ref_meta = extract_metadata(flow.sample);
      const FlowMetadata fast_meta = extract_metadata_fast(flow.sample);
      const std::string context = "seed=" + std::to_string(seed) +
                                  " app=" + std::string(app.name) + " flow=" +
                                  std::to_string(flows);
      expect_metadata_equal(ref_meta, fast_meta, context);

      const AppId ref_verdict = reference.classify(ref_meta);
      ASSERT_EQ(index.classify(ref_meta), ref_verdict) << context;

      // Fragment-by-fragment: the cached verdict stream must equal the
      // reference's reparse-every-time stream.
      const FlowKey key{0x00112233'44550000ULL + salt, salt % 7, flow.dst_host,
                        flow.src_port, flow.sample.dst_port,
                        flow.sample.transport == Transport::kUdp ? std::uint8_t{17}
                                                                 : std::uint8_t{6}};
      for (std::uint16_t frag = 0; frag < flow.fragments; ++frag) {
        ASSERT_EQ(fast.classify(key, flow.sample), slow.classify(key, flow.sample))
            << context << " frag=" << frag;
      }
      ASSERT_EQ(ref_verdict, slow.classify_slow(flow.sample)) << context;
    }
  }

  // The sweep must actually have exercised the cache fast path.
  EXPECT_GT(fast.cache().stats().hits, 0u);
  EXPECT_LT(fast.slow_path_calls(), slow.slow_path_calls());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededDiff,
                         ::testing::Values(1ULL, 7ULL, 42ULL, 1337ULL, 2015ULL));

// Every port x transport: the dispatch tables against the linear scan,
// via the only public entry point (classify with port-only metadata).
TEST(RuleIndexDiff, PortTablesMatchLinearScanExhaustively) {
  const auto& reference = RuleSet::standard();
  const auto& index = RuleIndex::standard();
  for (int t = 0; t < 2; ++t) {
    const Transport transport = t == 0 ? Transport::kTcp : Transport::kUdp;
    for (std::uint32_t port = 0; port <= 65535; ++port) {
      FlowMetadata meta;
      meta.transport = transport;
      meta.dst_port = static_cast<std::uint16_t>(port);
      ASSERT_EQ(index.classify(meta), reference.classify(meta))
          << "transport=" << t << " port=" << port;
    }
  }
}

// Hostname edge cases around the suffix trie: nested suffixes, lookalike
// non-matches, label-boundary traps, empty and degenerate names.
TEST(RuleIndexDiff, DomainTrieMatchesLinearScanOnEdgeCases) {
  const auto& reference = RuleSet::standard();
  const auto& index = RuleIndex::standard();

  std::vector<std::string> hosts;
  for (const auto& app : app_catalog()) {
    for (const auto& d : app.domains) {
      const std::string base(d);
      hosts.push_back(base);
      hosts.push_back("www." + base);
      hosts.push_back("deep.nested.cdn." + base);
      hosts.push_back("not" + base);       // byte suffix, not a label suffix
      hosts.push_back(base + ".evil.example");
      hosts.push_back("." + base);
      hosts.push_back(base + ".");
      if (const auto dot = base.find('.'); dot != std::string::npos) {
        hosts.push_back(base.substr(dot + 1));  // parent zone only
      }
    }
  }
  hosts.insert(hosts.end(), {"", ".", "..", "localhost", "a", "com",
                             "x.y.z.w.v.u.t.s.r.q", std::string(300, 'a') + ".com"});

  for (const auto& host : hosts) {
    FlowMetadata meta;
    meta.dst_port = 443;
    meta.sni = host;
    ASSERT_EQ(index.classify(meta), reference.classify(meta)) << "host='" << host << "'";
  }
}

// Evidence buckets: exact hits and fallback scans agree with the reference
// matchers for every canonical and mutated User-Agent / DHCP fingerprint.
TEST(RuleIndexDiff, EvidenceBucketsMatchReferenceMatchers) {
  const auto& index = RuleIndex::standard();
  for (int i = 0; i < kOsTypeCount; ++i) {
    const auto os = static_cast<OsType>(i);
    for (unsigned variant = 0; variant < 6; ++variant) {
      const std::string ua = canonical_user_agent(os, variant);
      EXPECT_EQ(index.os_from_user_agent(ua), os_from_user_agent(ua))
          << "os=" << i << " variant=" << variant;
      EXPECT_EQ(index.os_from_user_agent(ua + " (modified)"),
                os_from_user_agent(ua + " (modified)"));
    }
    const DhcpParams params = canonical_dhcp_params(os);
    EXPECT_EQ(index.os_from_dhcp(params), os_from_dhcp(params)) << "os=" << i;
    DhcpParams extended = params;
    extended.push_back(252);  // vendor suffix: exercises the prefix fallback
    EXPECT_EQ(index.os_from_dhcp(extended), os_from_dhcp(extended)) << "os=" << i;
    if (!params.empty()) {
      DhcpParams truncated(params.begin(), params.end() - 1);
      EXPECT_EQ(index.os_from_dhcp(truncated), os_from_dhcp(truncated)) << "os=" << i;
    }
  }
  EXPECT_EQ(index.os_from_user_agent(""), os_from_user_agent(""));
  EXPECT_EQ(index.os_from_dhcp({}), os_from_dhcp({}));
}

// classify_os routed through the index must equal the plain decision for
// randomized evidence mixes (including the conflict -> Unknown paths).
TEST(RuleIndexDiff, ClassifyOsWithIndexMatchesWithout) {
  Rng rng{99991};
  const auto& index = RuleIndex::standard();
  for (int trial = 0; trial < 2'000; ++trial) {
    ClientEvidence evidence;
    evidence.mac = MacAddress::from_u64(rng.next_u64() & 0xFFFFFFFFFFFFULL);
    const int fingerprints = static_cast<int>(rng.uniform_int(0, 2));
    for (int f = 0; f < fingerprints; ++f) {
      const auto os = static_cast<OsType>(rng.uniform_int(0, kOsTypeCount - 1));
      auto params = canonical_dhcp_params(os);
      if (rng.chance(0.3)) params.push_back(static_cast<std::uint8_t>(rng.next_u64()));
      evidence.dhcp_fingerprints.push_back(std::move(params));
    }
    const int uas = static_cast<int>(rng.uniform_int(0, 3));
    for (int u = 0; u < uas; ++u) {
      const auto os = static_cast<OsType>(rng.uniform_int(0, kOsTypeCount - 1));
      evidence.user_agents.push_back(
          canonical_user_agent(os, static_cast<unsigned>(rng.next_u64() & 3)));
    }
    for (const auto version : {HeuristicsVersion::k2014, HeuristicsVersion::k2015}) {
      ASSERT_EQ(classify_os(evidence, version, &index), classify_os(evidence, version))
          << "trial=" << trial;
    }
  }
}

// End to end: the rendered usage tables are byte-identical whether the
// fleet ran the fast path or the reference engine.
TEST(RuleIndexDiff, UsageTablesAreByteIdenticalAcrossModes) {
  analysis::ScenarioScale scale;
  scale.networks = 10;
  scale.seed = 20150806;

  scale.classifier = ClassifierMode::kIndexed;
  const auto indexed = analysis::run_usage_study(scale);
  scale.classifier = ClassifierMode::kReference;
  const auto reference = analysis::run_usage_study(scale);

  EXPECT_EQ(analysis::render_table3(indexed), analysis::render_table3(reference));
  EXPECT_EQ(analysis::render_table5(indexed), analysis::render_table5(reference));
  EXPECT_EQ(analysis::render_table6(indexed), analysis::render_table6(reference));
  EXPECT_EQ(indexed.flows_classified, reference.flows_classified);
  EXPECT_EQ(indexed.flows_misclassified, reference.flows_misclassified);
}

}  // namespace
}  // namespace wlm::classify
