#include "classify/rules.hpp"

#include <gtest/gtest.h>

namespace wlm::classify {
namespace {

FlowMetadata tls_flow(std::string sni, std::uint16_t port = 443) {
  FlowMetadata m;
  m.transport = Transport::kTcp;
  m.dst_port = port;
  m.sni = std::move(sni);
  m.saw_tls = true;
  return m;
}

TEST(Rules, RuleCountNearPaper) {
  // Paper SS2.1: "about 200 application identification rules".
  const auto n = RuleSet::standard().rule_count();
  EXPECT_GE(n, 150u);
  EXPECT_LE(n, 260u);
}

TEST(DomainSuffix, MatchesOnLabelBoundary) {
  EXPECT_TRUE(domain_suffix_match("netflix.com", "netflix.com"));
  EXPECT_TRUE(domain_suffix_match("api.netflix.com", "netflix.com"));
  EXPECT_FALSE(domain_suffix_match("notnetflix.com", "netflix.com"));
  EXPECT_FALSE(domain_suffix_match("netflix.com.evil.example", "netflix.com"));
  EXPECT_FALSE(domain_suffix_match("com", "netflix.com"));
}

TEST(Rules, SniIdentifiesApp) {
  EXPECT_EQ(RuleSet::standard().classify(tls_flow("www.netflix.com")), AppId::kNetflix);
  EXPECT_EQ(RuleSet::standard().classify(tls_flow("edge.dropbox.com")), AppId::kDropbox);
  EXPECT_EQ(RuleSet::standard().classify(tls_flow("i.instagram.com")), AppId::kInstagram);
}

TEST(Rules, LongestSuffixWins) {
  // drive.google.com must classify as Google Drive, not generic Google.
  EXPECT_EQ(RuleSet::standard().classify(tls_flow("drive.google.com")),
            AppId::kGoogleDrive);
  EXPECT_EQ(RuleSet::standard().classify(tls_flow("www.google.com")), AppId::kGoogle);
  EXPECT_EQ(RuleSet::standard().classify(tls_flow("mail.google.com")), AppId::kGmail);
}

TEST(Rules, HostnamePrecedenceOverPort) {
  // A known hostname on an odd port still wins.
  FlowMetadata m = tls_flow("www.youtube.com", 8443);
  EXPECT_EQ(RuleSet::standard().classify(m), AppId::kYouTube);
}

TEST(Rules, DnsHostnameUsedWhenNoSni) {
  FlowMetadata m;
  m.transport = Transport::kTcp;
  m.dst_port = 80;
  m.dns_hostname = "cdn.spotify.com";
  EXPECT_EQ(RuleSet::standard().classify(m), AppId::kSpotify);
}

TEST(Rules, PortRules) {
  FlowMetadata smb;
  smb.transport = Transport::kTcp;
  smb.dst_port = 445;
  EXPECT_EQ(RuleSet::standard().classify(smb), AppId::kWindowsFileSharing);

  FlowMetadata rtmp;
  rtmp.transport = Transport::kTcp;
  rtmp.dst_port = 1935;
  EXPECT_EQ(RuleSet::standard().classify(rtmp), AppId::kRtmp);

  FlowMetadata torrent;
  torrent.transport = Transport::kTcp;
  torrent.dst_port = 6881;
  EXPECT_EQ(RuleSet::standard().classify(torrent), AppId::kBitTorrent);
}

TEST(Rules, FallbackBuckets) {
  FlowMetadata web;
  web.transport = Transport::kTcp;
  web.dst_port = 80;
  web.http_host = "random-site.example";
  EXPECT_EQ(RuleSet::standard().classify(web), AppId::kMiscWeb);

  FlowMetadata secure;
  secure.transport = Transport::kTcp;
  secure.dst_port = 443;
  secure.saw_tls = true;
  EXPECT_EQ(RuleSet::standard().classify(secure), AppId::kMiscSecureWeb);

  FlowMetadata udp;
  udp.transport = Transport::kUdp;
  udp.dst_port = 33333;
  EXPECT_EQ(RuleSet::standard().classify(udp), AppId::kUdp);

  FlowMetadata tcp;
  tcp.transport = Transport::kTcp;
  tcp.dst_port = 12345;
  EXPECT_EQ(RuleSet::standard().classify(tcp), AppId::kNonWebTcp);
}

TEST(Rules, ContentTypeBuckets) {
  FlowMetadata video;
  video.transport = Transport::kTcp;
  video.dst_port = 80;
  video.http_host = "unknown-cdn.example";
  video.http_content_type = "video/mp4";
  EXPECT_EQ(RuleSet::standard().classify(video), AppId::kMiscVideo);

  FlowMetadata audio = video;
  audio.http_content_type = "audio/aac";
  EXPECT_EQ(RuleSet::standard().classify(audio), AppId::kMiscAudio);

  FlowMetadata hls = video;
  hls.http_content_type = "application/vnd.apple.mpegurl";
  EXPECT_EQ(RuleSet::standard().classify(hls), AppId::kMiscVideo);
}

TEST(Rules, EncryptedBuckets) {
  FlowMetadata tls_odd;
  tls_odd.transport = Transport::kTcp;
  tls_odd.dst_port = 8765;
  tls_odd.saw_tls = true;
  EXPECT_EQ(RuleSet::standard().classify(tls_odd), AppId::kEncryptedTcp);

  FlowMetadata p2p;
  p2p.transport = Transport::kTcp;
  p2p.dst_port = 54321;
  p2p.high_entropy = true;
  EXPECT_EQ(RuleSet::standard().classify(p2p), AppId::kEncryptedP2p);
}

TEST(Rules, NeverReturnsUnclassified) {
  // Sweep ports and transports: every flow lands in some bucket.
  for (int port : {0, 80, 443, 445, 6881, 9999, 65535}) {
    for (auto transport : {Transport::kTcp, Transport::kUdp}) {
      FlowMetadata m;
      m.transport = transport;
      m.dst_port = static_cast<std::uint16_t>(port);
      EXPECT_NE(RuleSet::standard().classify(m), AppId::kUnclassified);
    }
  }
}

TEST(Metadata, HostnamePrecedence) {
  FlowMetadata m;
  m.dns_hostname = "dns.example";
  EXPECT_EQ(m.best_hostname(), "dns.example");
  m.http_host = "http.example";
  EXPECT_EQ(m.best_hostname(), "http.example");
  m.sni = "sni.example";
  EXPECT_EQ(m.best_hostname(), "sni.example");
}

}  // namespace
}  // namespace wlm::classify
