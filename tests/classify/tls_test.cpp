#include "classify/tls.hpp"

#include <gtest/gtest.h>

namespace wlm::classify {
namespace {

TEST(Tls, ClientHelloRoundTripWithSni) {
  const auto record = build_client_hello("www.Netflix.com", 42);
  const auto info = parse_client_hello(record);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->sni, "www.netflix.com");  // lowercased
  EXPECT_EQ(info->legacy_version, 0x0303);
  EXPECT_GT(info->cipher_suite_count, 0u);
}

TEST(Tls, NoSniExtension) {
  const auto record = build_client_hello("", 1);
  const auto info = parse_client_hello(record);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->sni.empty());
}

TEST(Tls, DifferentSeedsDifferentRandoms) {
  const auto a = build_client_hello("x.example", 1);
  const auto b = build_client_hello("x.example", 2);
  EXPECT_NE(a, b);
  // But both parse to the same SNI.
  EXPECT_EQ(parse_client_hello(a)->sni, parse_client_hello(b)->sni);
}

TEST(Tls, RejectsNonHandshakeRecord) {
  auto record = build_client_hello("a.example", 3);
  record[0] = 0x17;  // application data
  EXPECT_FALSE(parse_client_hello(record).has_value());
}

TEST(Tls, RejectsNonClientHello) {
  auto record = build_client_hello("a.example", 3);
  record[5] = 0x02;  // server_hello
  EXPECT_FALSE(parse_client_hello(record).has_value());
}

TEST(Tls, RejectsTruncated) {
  const auto record = build_client_hello("host.example.com", 9);
  for (std::size_t cut : {3u, 9u, 20u, 40u}) {
    std::vector<std::uint8_t> partial(record.begin(), record.begin() + cut);
    EXPECT_FALSE(parse_client_hello(partial).has_value()) << "cut " << cut;
  }
}

TEST(Tls, RejectsEmptyAndGarbage) {
  EXPECT_FALSE(parse_client_hello({}).has_value());
  const std::vector<std::uint8_t> garbage{0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_FALSE(parse_client_hello(garbage).has_value());
}

TEST(Tls, LongHostname) {
  const std::string host = "very-long-subdomain-label-for-testing.some-quite-long-domain-"
                           "name-indeed.example.org";
  const auto info = parse_client_hello(build_client_hello(host, 5));
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->sni, host);
}

TEST(Tls, HttpPayloadIsNotClientHello) {
  const std::string http = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
  const std::vector<std::uint8_t> bytes(http.begin(), http.end());
  EXPECT_FALSE(parse_client_hello(bytes).has_value());
}

}  // namespace
}  // namespace wlm::classify
