#include "classify/user_agent.hpp"

#include <gtest/gtest.h>

namespace wlm::classify {
namespace {

class UaRoundTrip : public ::testing::TestWithParam<OsType> {};

TEST_P(UaRoundTrip, CanonicalUaIdentifiesOs) {
  const OsType os = GetParam();
  for (unsigned variant = 0; variant < 3; ++variant) {
    const auto detected = os_from_user_agent(canonical_user_agent(os, variant));
    ASSERT_TRUE(detected.has_value()) << os_name(os) << " v" << variant;
    EXPECT_EQ(*detected, os) << os_name(os) << " v" << variant;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDetectableOses, UaRoundTrip,
                         ::testing::Values(OsType::kWindows, OsType::kAppleIos,
                                           OsType::kMacOsX, OsType::kAndroid,
                                           OsType::kChromeOs, OsType::kPlaystation,
                                           OsType::kLinux, OsType::kBlackberry,
                                           OsType::kWindowsMobile, OsType::kXbox));

TEST(UserAgent, EmptyAndUnknownStrings) {
  EXPECT_FALSE(os_from_user_agent("").has_value());
  EXPECT_FALSE(os_from_user_agent("curl/7.68.0").has_value());
  EXPECT_FALSE(os_from_user_agent("EmbeddedClient/1.0").has_value());
}

TEST(UserAgent, IosBeatsMacToken) {
  // iOS UAs contain "like Mac OS X" but must classify as iOS.
  const auto detected = os_from_user_agent(
      "Mozilla/5.0 (iPhone; CPU iPhone OS 8_1 like Mac OS X) AppleWebKit/600.1.4");
  ASSERT_TRUE(detected.has_value());
  EXPECT_EQ(*detected, OsType::kAppleIos);
}

TEST(UserAgent, XboxBeatsWindowsToken) {
  const auto detected = os_from_user_agent(
      "Mozilla/5.0 (Windows NT 6.2; Trident/7.0; Xbox; Xbox One) like Gecko");
  ASSERT_TRUE(detected.has_value());
  EXPECT_EQ(*detected, OsType::kXbox);
}

TEST(UserAgent, WindowsPhoneBeatsAndroidToken) {
  const auto detected = os_from_user_agent(
      "Mozilla/5.0 (Mobile; Windows Phone 8.1; Android 4.0; ARM; Trident/7.0)");
  ASSERT_TRUE(detected.has_value());
  EXPECT_EQ(*detected, OsType::kWindowsMobile);
}

TEST(UserAgent, CaseInsensitive) {
  const auto detected = os_from_user_agent("mozilla (WINDOWS NT 10.0)");
  ASSERT_TRUE(detected.has_value());
  EXPECT_EQ(*detected, OsType::kWindows);
}

}  // namespace
}  // namespace wlm::classify
