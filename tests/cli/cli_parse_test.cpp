// Strict flag parsing: the cli::parse_* whitelist contract, plus a
// table-driven rejection sweep over EVERY numeric wlmctl flag. The latter
// runs the real binary: the regression this guards was not in any parser
// but in a command forgetting to check one flag's parse result, so only an
// end-to-end exit-code check holds the line as flags accrete.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <sys/wait.h>

#include "cli/parse.hpp"

namespace wlm {
namespace {

TEST(CliParse, AcceptsPlainIntegers) {
  EXPECT_EQ(cli::parse_int("0"), 0);
  EXPECT_EQ(cli::parse_int("42"), 42);
  EXPECT_EQ(cli::parse_int("-7"), -7);
  EXPECT_EQ(cli::parse_int("+13"), 13);
  EXPECT_EQ(cli::parse_int("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(cli::parse_int("-9223372036854775808"), INT64_MIN);
}

TEST(CliParse, RejectsNonIntegers) {
  for (const char* bad :
       {"", "+", "-", " 1", "1 ", "1.5", "1e3", "0x10", "abc", "12abc", "--3",
        "nan", "inf", "9223372036854775808", "-9223372036854775809",
        "99999999999999999999999999"}) {
    EXPECT_FALSE(cli::parse_int(bad).has_value()) << "'" << bad << "'";
  }
}

TEST(CliParse, HonorsCallerRange) {
  EXPECT_TRUE(cli::parse_int("100", 0, 100).has_value());
  EXPECT_FALSE(cli::parse_int("101", 0, 100).has_value());
  EXPECT_FALSE(cli::parse_int("-1", 0, 100).has_value());
}

TEST(CliParse, AcceptsPlainDecimals) {
  EXPECT_EQ(cli::parse_double("0"), 0.0);
  EXPECT_EQ(cli::parse_double("0.5"), 0.5);
  EXPECT_EQ(cli::parse_double("-2.25"), -2.25);
  EXPECT_EQ(cli::parse_double("+3."), 3.0);
  EXPECT_EQ(cli::parse_double(".5"), 0.5);
  EXPECT_EQ(cli::parse_double("1e3"), 1000.0);
  EXPECT_EQ(cli::parse_double("2.5E-2"), 0.025);
}

TEST(CliParse, RejectsEveryNonFiniteSpelling) {
  for (const char* bad : {"nan", "NaN", "NAN", "nan(123)", "inf", "INF",
                          "Infinity", "-inf", "+inf", "-nan"}) {
    EXPECT_FALSE(cli::parse_double(bad).has_value()) << "'" << bad << "'";
  }
}

TEST(CliParse, RejectsJunkHexAndOverflow) {
  for (const char* bad : {"", ".", "+", "-", "e3", "1e", "1e+", " 1.0", "1.0 ",
                          "1.0x", "0x1p4", "0x10", "1.2.3", "1e999", "-1e999"}) {
    EXPECT_FALSE(cli::parse_double(bad).has_value()) << "'" << bad << "'";
  }
  // Underflow-to-zero is legal input, not an error.
  EXPECT_EQ(cli::parse_double("1e-999"), 0.0);
}

#ifdef WLMCTL_BIN

/// Runs wlmctl with one poisoned flag; returns its exit code.
int wlmctl_exit(const std::string& cmdline) {
  const std::string full = std::string(WLMCTL_BIN) + " " + cmdline +
                           " >/dev/null 2>/dev/null";
  const int status = std::system(full.c_str());
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

TEST(WlmctlFlagValidation, EveryNumericFlagRejectsHostileValues) {
  // One row per numeric flag, paired with the cheapest subcommand that
  // reads it. A hostile value must exit 2 (usage error) — never run the
  // scenario with a silently substituted fallback. This is the sweep that
  // caught the post-PR-7 flags (--mem-ceiling-mb, --roam-prob,
  // --mobility-speed, ...) accepting "nan"/"inf" through strtod.
  struct Row {
    const char* command;  // subcommand plus any required scaffolding
    const char* flag;
  };
  const Row rows[] = {
      {"simulate", "--networks"},
      {"simulate", "--seed"},
      {"simulate", "--jobs"},
      {"simulate", "--flap"},
      {"simulate", "--mem-ceiling-mb"},
      {"simulate", "--max-shard-retries"},
      {"simulate", "--shard-deadline"},
      {"simulate --checkpoint-out /tmp/x.wlmckpt", "--checkpoint-every"},
      {"simulate", "--roam-prob"},
      {"simulate", "--mobility-speed"},
      {"simulate", "--mobility-steps"},
      {"simulate", "--mesh-fraction"},
      {"simulate", "--mesh-max-hops"},
      {"simulate", "--mesh-floor-dbm"},
      {"simulate", "--mesh-drift-db"},
      {"report table2", "--networks"},
      {"report table2", "--seed"},
      {"report table2", "--jobs"},
      {"report table2", "--mem-ceiling-mb"},
      {"report meshdelivery", "--mesh-fraction"},
      {"health", "--networks"},
      {"health", "--flap"},
      {"stats", "--seed"},
      {"pcap /tmp/x.pcap", "--flows"},
      {"pcap /tmp/x.pcap", "--seed"},
      {"spectrum", "--seed"},
      {"export /tmp", "--networks"},
  };
  const char* const poisons[] = {"nan",   "iNf",  "infinity", "1e999", "abc",
                                 "12abc", "0x10", "",         "1.2.3"};
  for (const Row& row : rows) {
    for (const char* poison : poisons) {
      std::string cmd = std::string(row.command) + " " + row.flag + " '" +
                        poison + "'";
      // Keep accidental acceptance cheap — unless --networks is the flag
      // under test (duplicate options overwrite, which would heal it).
      if (std::string(row.flag) != "--networks") cmd += " --networks 2";
      EXPECT_EQ(wlmctl_exit(cmd), 2) << "wlmctl " << cmd;
    }
  }
}

TEST(WlmctlFlagValidation, OutOfRangeMeshKnobsAreUsageErrors) {
  struct Row {
    const char* flag;
    const char* value;
  };
  const Row rows[] = {
      {"--mesh-fraction", "-0.1"}, {"--mesh-fraction", "0.96"},
      {"--mesh-max-hops", "0"},    {"--mesh-max-hops", "17"},
      {"--mesh-floor-dbm", "-101"}, {"--mesh-floor-dbm", "-39"},
      {"--mesh-drift-db", "-1"},   {"--mesh-drift-db", "10.5"},
  };
  for (const Row& row : rows) {
    const std::string cmd =
        std::string("simulate --networks 2 ") + row.flag + " " + row.value;
    EXPECT_EQ(wlmctl_exit(cmd), 2) << "wlmctl " << cmd;
  }
}

#endif  // WLMCTL_BIN

}  // namespace
}  // namespace wlm
