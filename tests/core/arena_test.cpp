// Bump-arena semantics: alignment, growth, wholesale reset with chunk
// recycling, and the std-allocator adapter (see DESIGN.md §4f lifetime
// rules — memory is valid until reset(), deallocate() is a no-op).
#include "core/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

namespace wlm::core {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(256);
  auto* a = static_cast<std::uint8_t*>(arena.allocate(10, 1));
  auto* b = static_cast<std::uint8_t*>(arena.allocate(16, 8));
  auto* c = static_cast<std::uint8_t*>(arena.allocate(1, 64));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  // Write patterns and confirm no overlap clobbers them.
  std::memset(a, 0xAA, 10);
  std::memset(b, 0xBB, 16);
  std::memset(c, 0xCC, 1);
  EXPECT_EQ(a[0], 0xAA);
  EXPECT_EQ(a[9], 0xAA);
  EXPECT_EQ(b[0], 0xBB);
  EXPECT_EQ(b[15], 0xBB);
  EXPECT_EQ(c[0], 0xCC);
  EXPECT_EQ(arena.bytes_served(), 27u);
}

TEST(Arena, GrowsBeyondInitialChunk) {
  Arena arena(64);
  // Far more than one chunk's worth; every allocation must still be usable.
  for (int i = 0; i < 100; ++i) {
    auto* p = static_cast<std::uint8_t*>(arena.allocate(40));
    std::memset(p, static_cast<int>(i & 0xFF), 40);
    EXPECT_EQ(p[39], static_cast<std::uint8_t>(i & 0xFF));
  }
  EXPECT_GE(arena.capacity(), 100u * 40u);
}

TEST(Arena, OversizeRequestGetsDedicatedChunk) {
  Arena arena(64);
  auto* p = arena.allocate(10'000);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5A, 10'000);
  EXPECT_GE(arena.capacity(), 10'000u);
}

TEST(Arena, ResetRecyclesLargestChunk) {
  Arena arena(64);
  for (int i = 0; i < 50; ++i) (void)arena.allocate(100);
  const std::size_t grown_capacity = arena.capacity();
  arena.reset();
  EXPECT_EQ(arena.resets(), 1u);
  // Reset keeps only the newest (largest) chunk — capacity shrinks to it,
  // but stays big enough that a steady-state window re-runs allocation-free.
  EXPECT_LE(arena.capacity(), grown_capacity);
  EXPECT_GT(arena.capacity(), 0u);
  const std::size_t kept = arena.capacity();
  // A same-sized second window must run entirely inside the kept chunk.
  std::size_t burst = 0;
  while (burst + 100 <= kept) {
    (void)arena.allocate(100, 1);
    burst += 100;
  }
  EXPECT_EQ(arena.capacity(), kept);
}

TEST(Arena, ArenaVectorUsesArenaMemory) {
  Arena arena(1024);
  const std::uint64_t before = arena.bytes_served();
  ArenaVector<int> v{ArenaAllocator<int>(arena)};
  v.reserve(100);
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_GT(arena.bytes_served(), before);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(v[i], i);
  // Lifetime rule: containers are destroyed/cleared before reset().
  v = ArenaVector<int>{ArenaAllocator<int>(arena)};
  arena.reset();
}

TEST(Arena, AllocatorEqualityFollowsArenaIdentity) {
  Arena a(64);
  Arena b(64);
  EXPECT_TRUE(ArenaAllocator<int>(a) == ArenaAllocator<int>(a));
  EXPECT_FALSE(ArenaAllocator<int>(a) == ArenaAllocator<int>(b));
  // Rebinding (e.g. int -> long) keeps pointing at the same arena.
  const ArenaAllocator<long> rebound{ArenaAllocator<int>(a)};
  EXPECT_EQ(rebound.arena(), &a);
}

}  // namespace
}  // namespace wlm::core
