#include "core/chart.hpp"

#include <gtest/gtest.h>

namespace wlm {
namespace {

TEST(LineChart, ContainsTitleAxesAndLegend) {
  Series s1{"alpha", {{0.0, 0.0}, {1.0, 1.0}}};
  Series s2{"beta", {{0.0, 1.0}, {1.0, 0.0}}};
  ChartOptions opt;
  opt.title = "test chart";
  opt.x_label = "x-axis";
  opt.y_label = "y-axis";
  const std::string out = render_line_chart({s1, s2}, opt);
  EXPECT_NE(out.find("test chart"), std::string::npos);
  EXPECT_NE(out.find("x-axis"), std::string::npos);
  EXPECT_NE(out.find("y-axis"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(LineChart, SingleSeriesHasNoLegend) {
  Series s{"only", {{0.0, 0.5}, {1.0, 0.5}}};
  const std::string out = render_line_chart({s}, ChartOptions{});
  EXPECT_EQ(out.find("legend"), std::string::npos);
}

TEST(LineChart, FixedRangeClipsOutliers) {
  Series s{"s", {{0.5, 0.5}, {99.0, 99.0}}};
  ChartOptions opt;
  opt.fix_x = true;
  opt.x_min = 0.0;
  opt.x_max = 1.0;
  opt.fix_y = true;
  opt.y_min = 0.0;
  opt.y_max = 1.0;
  const std::string out = render_line_chart({s}, opt);
  // Exactly one plotted glyph: the in-range point.
  EXPECT_EQ(std::count(out.begin(), out.end(), '*'), 1);
}

TEST(Scatter, DensityRampEscalates) {
  Series s{"dense", {}};
  for (int i = 0; i < 500; ++i) s.points.emplace_back(0.5, 0.5);
  s.points.emplace_back(0.9, 0.9);
  ChartOptions opt;
  opt.fix_x = true;
  opt.x_max = 1.0;
  opt.fix_y = true;
  opt.y_max = 1.0;
  const std::string out = render_scatter(s, opt);
  EXPECT_NE(out.find('#'), std::string::npos);  // hot cell
  EXPECT_NE(out.find('.'), std::string::npos);  // lone point
}

TEST(Bars, ProportionalLengths) {
  const std::string out =
      render_bars({{"big", 100.0}, {"half", 50.0}, {"zero", 0.0}}, "bars", 20);
  EXPECT_NE(out.find("bars"), std::string::npos);
  // The 100-value bar renders 20 hashes, the 50-value bar 10.
  EXPECT_NE(out.find(std::string(20, '#')), std::string::npos);
  EXPECT_EQ(out.find(std::string(21, '#')), std::string::npos);
}

TEST(Psd, MapsLevelsToRamp) {
  std::vector<double> psd(64, -100.0);
  for (std::size_t i = 24; i < 40; ++i) psd[i] = -60.0;
  const std::string strip = render_psd(psd, -100.0, -60.0, 32);
  ASSERT_EQ(strip.size(), 32u);
  // Center columns saturate, edges stay quiet.
  EXPECT_EQ(strip[16], '@');
  EXPECT_EQ(strip.front(), ' ');
  EXPECT_EQ(strip.back(), ' ');
}

TEST(Psd, EmptyInputs) {
  EXPECT_TRUE(render_psd({}, -100, -60, 32).empty());
  EXPECT_TRUE(render_psd({-80.0}, -100, -60, 0).empty());
}

}  // namespace
}  // namespace wlm
