#include "core/checksum.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace wlm {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Crc32, KnownVector) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto all = bytes_of("the quick brown fox jumps over the lazy dog");
  const auto part1 = bytes_of("the quick brown fox ");
  const auto part2 = bytes_of("jumps over the lazy dog");
  const std::uint32_t inc = crc32_update(crc32(part1), part2);
  EXPECT_EQ(inc, crc32(all));
}

TEST(Crc32, DetectsSingleBitFlip) {
  auto data = bytes_of("telemetry payload");
  const std::uint32_t original = crc32(data);
  data[5] ^= 0x01;
  EXPECT_NE(crc32(data), original);
}

TEST(Fnv1a, KnownVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Fnv1a, SpanAndStringAgree) {
  const std::string s = "network";
  EXPECT_EQ(fnv1a64(s), fnv1a64(bytes_of(s)));
}

}  // namespace
}  // namespace wlm
