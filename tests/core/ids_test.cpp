#include "core/ids.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace wlm {
namespace {

TEST(MacAddress, ParsesAndFormats) {
  const auto mac = MacAddress::parse("00:18:0a:2b:3c:4d");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "00:18:0a:2b:3c:4d");
}

TEST(MacAddress, ParseIsCaseInsensitive) {
  const auto upper = MacAddress::parse("AA:BB:CC:DD:EE:FF");
  ASSERT_TRUE(upper.has_value());
  EXPECT_EQ(upper->to_string(), "aa:bb:cc:dd:ee:ff");
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("").has_value());
  EXPECT_FALSE(MacAddress::parse("00:18:0a:2b:3c").has_value());
  EXPECT_FALSE(MacAddress::parse("00:18:0a:2b:3c:4d:5e").has_value());
  EXPECT_FALSE(MacAddress::parse("00-18-0a-2b-3c-4d").has_value());
  EXPECT_FALSE(MacAddress::parse("g0:18:0a:2b:3c:4d").has_value());
  EXPECT_FALSE(MacAddress::parse("00:18:0a:2b:3c:4").has_value());
}

TEST(MacAddress, U64RoundTrip) {
  const std::uint64_t v = 0x00180a2b3c4dULL;
  EXPECT_EQ(MacAddress::from_u64(v).to_u64(), v);
}

TEST(MacAddress, OuiIsTopThreeOctets) {
  EXPECT_EQ(MacAddress::from_u64(0x00180a2b3c4dULL).oui(), 0x00180au);
}

TEST(MacAddress, LocallyAdministeredBit) {
  EXPECT_TRUE(MacAddress::from_u64(0x020000000001ULL).locally_administered());
  EXPECT_FALSE(MacAddress::from_u64(0x00180a000001ULL).locally_administered());
}

TEST(MacAddress, BroadcastIsMulticast) {
  EXPECT_TRUE(broadcast_mac().multicast());
  EXPECT_EQ(broadcast_mac().to_u64(), 0xFFFFFFFFFFFFULL);
}

TEST(MacAddress, HashDistinguishesValues) {
  std::unordered_set<MacAddress> set;
  for (std::uint64_t i = 0; i < 1000; ++i) set.insert(MacAddress::from_u64(i));
  EXPECT_EQ(set.size(), 1000u);
}

TEST(TypedIds, CompareAndHash) {
  EXPECT_EQ(ApId{7}, ApId{7});
  EXPECT_NE(ApId{7}, ApId{8});
  EXPECT_LT(NetworkId{1}, NetworkId{2});
  std::unordered_set<ClientId> set{ClientId{1}, ClientId{2}, ClientId{1}};
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace wlm
