#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace wlm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(13);
  for (double mean : {0.5, 3.68, 55.47, 200.0}) {
    double total = 0.0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) total += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(total / n, mean, mean * 0.05 + 0.05) << "mean " << mean;
  }
}

TEST(Rng, PoissonZeroForNonPositiveMean) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double total = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) total += rng.exponential(2.0);
  EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(19);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(rng.pareto(0.01, 1.5), 0.01);
}

TEST(Rng, LognormalMeanMatchesFormula) {
  Rng rng(23);
  const double mu = 1.0;
  const double sigma = 0.5;
  double total = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) total += rng.lognormal(mu, sigma);
  EXPECT_NEAR(total / n, std::exp(mu + sigma * sigma / 2.0), 0.05);
}

TEST(Rng, RayleighIsPositive) {
  Rng rng(27);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.rayleigh(1.0), 0.0);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(29);
  const double weights[] = {1.0, 3.0, 0.0, 6.0};
  int counts[4] = {0, 0, 0, 0};
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[2], 0);  // zero weight never picked
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.6, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.fork();
  // Child stream differs from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SubstreamIsReproducible) {
  Rng a = Rng::substream(2015, 42);
  Rng b = Rng::substream(2015, 42);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SubstreamsAreMutuallyIndependent) {
  // Adjacent stream ids (the common case: consecutive network ids) must not
  // produce correlated streams.
  Rng a = Rng::substream(7, 1);
  Rng b = Rng::substream(7, 2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SubstreamSeedsAreDistinct) {
  // No collisions across a fleet-sized id range, and the derivation depends
  // on the base seed too.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t id = 0; id < 4096; ++id) seeds.push_back(substream_seed(5, id));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  EXPECT_NE(substream_seed(5, 9), substream_seed(6, 9));
}

TEST(Rng, ChanceExtremes) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, FillUniformMatchesScalarSequenceExactly) {
  // Batched fills are a pure hot-path optimization: same values, same
  // order, same generator state afterwards as the scalar calls.
  Rng scalar(777);
  Rng batched(777);
  std::vector<double> expected(1000);
  for (auto& v : expected) v = scalar.uniform();
  std::vector<double> got(1000);
  batched.fill_uniform(got);
  for (std::size_t i = 0; i < expected.size(); ++i) ASSERT_EQ(got[i], expected[i]) << i;
  EXPECT_EQ(batched.state(), scalar.state());
}

TEST(Rng, FillNormalMatchesScalarSequenceIncludingBoxMullerCache) {
  // Odd-length fills leave a cached second variate; the batch must honor
  // and produce the identical cache phase. Start from a primed cache too.
  for (const std::size_t len : {1u, 2u, 7u, 64u, 101u}) {
    Rng scalar(909);
    Rng batched(909);
    (void)scalar.normal();  // prime the Box-Muller cache...
    (void)batched.normal();  // ...identically on both generators
    std::vector<double> expected(len);
    for (auto& v : expected) v = scalar.normal();
    std::vector<double> got(len);
    batched.fill_normal(got);
    for (std::size_t i = 0; i < len; ++i) ASSERT_EQ(got[i], expected[i]) << len << ":" << i;
    ASSERT_EQ(batched.state(), scalar.state()) << len;
  }
}

TEST(Rng, FillNormalScaledMatchesScalar) {
  Rng scalar(31337);
  Rng batched(31337);
  std::vector<double> expected(99);
  for (auto& v : expected) v = scalar.normal(-2.5, 0.75);
  std::vector<double> got(99);
  batched.fill_normal(got, -2.5, 0.75);
  for (std::size_t i = 0; i < expected.size(); ++i) ASSERT_EQ(got[i], expected[i]) << i;
  EXPECT_EQ(batched.state(), scalar.state());
}

TEST(Rng, FillUniformEmptyIsANoOp) {
  Rng rng(5);
  const auto before = rng.state();
  rng.fill_uniform({});
  rng.fill_normal({});
  EXPECT_EQ(rng.state(), before);
}

}  // namespace
}  // namespace wlm
