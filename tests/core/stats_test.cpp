#include "core/stats.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace wlm {
namespace {

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(EmpiricalCdf, StepFunction) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(99.0), 1.0);
}

TEST(EmpiricalCdf, QuantileInterpolates) {
  EmpiricalCdf cdf({0.0, 10.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 10.0);
}

TEST(EmpiricalCdf, QuantileClampsP) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(2.0), 3.0);
}

TEST(EmpiricalCdf, EmptyIsSafe) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_TRUE(cdf.curve().empty());
}

TEST(EmpiricalCdf, CurveIsMonotonic) {
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.normal(10.0, 3.0));
  EmpiricalCdf cdf(std::move(samples));
  const auto curve = cdf.curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(QuantileFreeFunction, MatchesCdf) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Histogram, ConservesTotalWeight) {
  Histogram h(0.0, 1.0, 10);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform(-0.5, 1.5));  // incl. out of range
  EXPECT_DOUBLE_EQ(h.total_weight(), 1000.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < h.bin_count(); ++i) sum += h.bin_weight(i);
  EXPECT_DOUBLE_EQ(sum, 1000.0);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  h.add(1.0);
  h.add(1.5);
  h.add(9.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(4), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 2.0 / 3.0);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(3), 1.0);
}

TEST(PearsonCorrelation, PerfectAndNone) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> pos{2.0, 4.0, 6.0, 8.0};
  const std::vector<double> neg{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson_correlation(xs, pos), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(xs, neg), -1.0, 1e-12);
  const std::vector<double> flat{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(xs, flat), 0.0);
}

TEST(PearsonCorrelation, IndependentIsNearZero) {
  Rng rng(17);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20'000; ++i) {
    xs.push_back(rng.normal());
    ys.push_back(rng.normal());
  }
  EXPECT_NEAR(pearson_correlation(xs, ys), 0.0, 0.03);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.2);
  EXPECT_FALSE(e.initialized());
  for (int i = 0; i < 200; ++i) e.add(7.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma e(0.5);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.add(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

}  // namespace
}  // namespace wlm
