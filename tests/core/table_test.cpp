#include "core/table.hpp"

#include <gtest/gtest.h>

namespace wlm {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Name", "Count"}, {Align::kLeft, Align::kRight});
  t.add_row({"Education", "4,075"});
  t.add_row({"Retail", "2,355"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Name      |"), std::string::npos);
  EXPECT_NE(out.find("| 4,075 |"), std::string::npos);
  EXPECT_NE(out.find("| Retail    |"), std::string::npos);
  // Right-aligned separator carries the markdown colon.
  EXPECT_NE(out.find(":|"), std::string::npos);
}

TEST(TextTable, DefaultsToLeftAlignment) {
  TextTable t({"A"});
  t.add_row({"x"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(t.render().find("| x |"), std::string::npos);
}

TEST(TextTable, WideCellsStretchColumn) {
  TextTable t({"H"});
  t.add_row({"a-much-longer-cell"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| a-much-longer-cell |"), std::string::npos);
}

TEST(WithCommas, GroupsThousands) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(5'578'126), "5,578,126");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

TEST(Fixed, Precision) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(55.47, 2), "55.47");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Pct, AdaptivePrecision) {
  EXPECT_EQ(pct(0.25), "25%");
  EXPECT_EQ(pct(0.091), "9.1%");
  EXPECT_EQ(pct(0.0042), "0.42%");
  EXPECT_EQ(pct(-0.092), "-9.2%");
}

}  // namespace
}  // namespace wlm
