#include "core/time.hpp"

#include <gtest/gtest.h>

namespace wlm {
namespace {

TEST(Duration, FactoryUnits) {
  EXPECT_EQ(Duration::millis(1).as_micros(), 1000);
  EXPECT_EQ(Duration::seconds(15).as_micros(), 15'000'000);
  EXPECT_EQ(Duration::minutes(3).as_micros(), 180'000'000);
  EXPECT_EQ(Duration::days(7).as_micros(), 604'800'000'000LL);
}

TEST(Duration, Arithmetic) {
  const auto d = Duration::seconds(300) / 20;
  EXPECT_EQ(d, Duration::seconds(15));
  EXPECT_EQ(Duration::seconds(10) + Duration::seconds(5), Duration::seconds(15));
  EXPECT_EQ(Duration::minutes(2) - Duration::seconds(30), Duration::seconds(90));
  EXPECT_EQ(Duration::seconds(15) * 4, Duration::minutes(1));
  EXPECT_EQ(Duration::minutes(5) / Duration::seconds(15), 20);
}

TEST(Duration, ConversionsToDouble) {
  EXPECT_DOUBLE_EQ(Duration::millis(2500).as_seconds(), 2.5);
  EXPECT_DOUBLE_EQ(Duration::hours(36).as_hours(), 36.0);
  EXPECT_DOUBLE_EQ(Duration::micros(102'400).as_millis(), 102.4);
}

TEST(SimTime, EpochAndAdvance) {
  SimTime t = SimTime::epoch();
  EXPECT_EQ(t.as_micros(), 0);
  t += Duration::hours(25);
  EXPECT_EQ(t.day_index(), 1);
  EXPECT_DOUBLE_EQ(t.hour_of_day(), 1.0);
}

TEST(SimTime, DifferenceIsDuration) {
  const SimTime a = SimTime::epoch() + Duration::seconds(100);
  const SimTime b = SimTime::epoch() + Duration::seconds(40);
  EXPECT_EQ(a - b, Duration::seconds(60));
}

TEST(SimTime, HourOfDayWrapsAtMidnight) {
  const SimTime t = SimTime::epoch() + Duration::days(3) + Duration::hours(23) +
                    Duration::minutes(30);
  EXPECT_NEAR(t.hour_of_day(), 23.5, 1e-9);
  EXPECT_EQ(t.day_index(), 3);
}

TEST(SimTime, ToStringFormat) {
  const SimTime t = SimTime::epoch() + Duration::days(2) + Duration::hours(7) +
                    Duration::minutes(15) + Duration::millis(250);
  EXPECT_EQ(t.to_string(), "d2 07:15:00.250");
}

TEST(SimTime, Ordering) {
  const SimTime early = SimTime::epoch() + Duration::seconds(1);
  const SimTime late = SimTime::epoch() + Duration::seconds(2);
  EXPECT_LT(early, late);
  EXPECT_GE(late, early);
}

}  // namespace
}  // namespace wlm
