#include "core/units.hpp"

#include <gtest/gtest.h>

namespace wlm {
namespace {

TEST(PowerDbm, ConvertsToMilliwatts) {
  EXPECT_DOUBLE_EQ(PowerDbm{0.0}.milliwatts(), 1.0);
  EXPECT_DOUBLE_EQ(PowerDbm{10.0}.milliwatts(), 10.0);
  EXPECT_NEAR(PowerDbm{-30.0}.milliwatts(), 0.001, 1e-12);
}

TEST(PowerDbm, RoundTripsThroughMilliwatts) {
  for (double dbm : {-90.0, -62.0, -30.0, 0.0, 23.0}) {
    EXPECT_NEAR(PowerDbm::from_milliwatts(PowerDbm{dbm}.milliwatts()).dbm(), dbm, 1e-9);
  }
}

TEST(PowerDbm, GainAndLossAreDb) {
  const PowerDbm p{-40.0};
  EXPECT_DOUBLE_EQ((p + 3.0).dbm(), -37.0);
  EXPECT_DOUBLE_EQ((p - 20.0).dbm(), -60.0);
  EXPECT_DOUBLE_EQ(PowerDbm{-40.0} - PowerDbm{-70.0}, 30.0);
}

TEST(PowerDbm, CombineAddsLinearPower) {
  // Two equal sources combine to +3 dB.
  const PowerDbm sum = combine_power(PowerDbm{-60.0}, PowerDbm{-60.0});
  EXPECT_NEAR(sum.dbm(), -56.99, 0.01);
  // A vastly weaker source changes nothing measurable.
  EXPECT_NEAR(combine_power(PowerDbm{-40.0}, PowerDbm{-120.0}).dbm(), -40.0, 1e-3);
}

TEST(PowerDbm, DefaultIsNoSignal) {
  EXPECT_LT(PowerDbm{}.dbm(), -150.0);
}

TEST(FrequencyMhz, BandClassification) {
  EXPECT_TRUE(FrequencyMhz{2437.0}.is_2_4ghz());
  EXPECT_FALSE(FrequencyMhz{2437.0}.is_5ghz());
  EXPECT_TRUE(FrequencyMhz{5250.0}.is_5ghz());
  EXPECT_FALSE(FrequencyMhz{5250.0}.is_2_4ghz());
  EXPECT_DOUBLE_EQ(FrequencyMhz{2437.0}.hz(), 2.437e9);
}

TEST(DataRate, ExactKbpsForHalfMegabitRates) {
  EXPECT_EQ(DataRate::mbps(5.5).kbps(), 5500);
  EXPECT_EQ(DataRate::mbps(1).kbps(), 1000);
  EXPECT_DOUBLE_EQ(DataRate::mbps(54).as_mbps(), 54.0);
}

TEST(DataRate, MicrosForBitsCeils) {
  // 480 bits at 1 Mb/s is exactly 480 us.
  EXPECT_EQ(DataRate::mbps(1).micros_for_bits(480), 480);
  // 481 bits must round up.
  EXPECT_EQ(DataRate::mbps(1).micros_for_bits(481), 481);
  // 100 bits at 6 Mb/s: 16.67 -> 17 us.
  EXPECT_EQ(DataRate::mbps(6).micros_for_bits(100), 17);
}

TEST(Bytes, HumanFormatting) {
  EXPECT_EQ(Bytes::gb(1.2).human(), "1.20 GB");
  EXPECT_EQ(Bytes::mb(367).human(), "367 MB");
  EXPECT_EQ(Bytes::tb(1.95).human(), "1.95 TB");
  EXPECT_EQ(Bytes{512}.human(), "512 B");
}

TEST(Bytes, Arithmetic) {
  Bytes b = Bytes::mb(1);
  b += Bytes::mb(2);
  EXPECT_EQ(b.count(), 3'000'000);
  EXPECT_EQ((Bytes::gb(1) - Bytes::mb(250)).count(), 750'000'000);
  EXPECT_NEAR(Bytes::tb(2).as_gb(), 2000.0, 1e-9);
}

TEST(Ratio, ClampsToUnitInterval) {
  EXPECT_DOUBLE_EQ(Ratio{1.5}.value(), 1.0);
  EXPECT_DOUBLE_EQ(Ratio{-0.5}.value(), 0.0);
  EXPECT_DOUBLE_EQ(Ratio{0.25}.percent(), 25.0);
}

TEST(PercentIncrease, MatchesPaperFormatting) {
  EXPECT_EQ(percent_increase(100.0, 162.0), "62%");
  EXPECT_EQ(percent_increase(100.0, 90.8), "-9.2%");
  EXPECT_EQ(percent_increase(0.0, 10.0), "n/a");
  EXPECT_EQ(percent_increase(100.0, 711.0), "611%");
}

}  // namespace
}  // namespace wlm
