#include "deploy/capabilities.hpp"

#include <gtest/gtest.h>

namespace wlm::deploy {
namespace {

TEST(Capabilities, StreamsFromBits) {
  Capabilities c;
  EXPECT_EQ(c.spatial_streams(), 1);
  c.bits |= kCapTwoStreams;
  EXPECT_EQ(c.spatial_streams(), 2);
  c.bits |= kCapFourStreams;
  EXPECT_EQ(c.spatial_streams(), 4);  // highest wins
}

TEST(Capabilities, ToStringSummarizes) {
  Capabilities c;
  c.bits = kCap11g | kCap11n | kCap5GHz | kCap40MHz | kCapTwoStreams;
  const auto s = c.to_string();
  EXPECT_NE(s.find("11n"), std::string::npos);
  EXPECT_NE(s.find("dual-band"), std::string::npos);
  EXPECT_NE(s.find("2ss"), std::string::npos);
}

TEST(CapabilityTargets, MatchTable4) {
  const auto t14 = capability_targets(Epoch::kJan2014);
  EXPECT_DOUBLE_EQ(t14.p_11ac, 0.025);
  EXPECT_DOUBLE_EQ(t14.p_5ghz, 0.489);
  const auto t15 = capability_targets(Epoch::kJan2015);
  EXPECT_DOUBLE_EQ(t15.p_11ac, 0.180);
  EXPECT_DOUBLE_EQ(t15.p_40mhz, 0.638);
  // July interpolates.
  const auto mid = capability_targets(Epoch::kJul2014);
  EXPECT_NEAR(mid.p_11ac, (0.025 + 0.180) / 2.0, 1e-12);
}

class CapabilityMarginals : public ::testing::TestWithParam<Epoch> {};

TEST_P(CapabilityMarginals, SampledFractionsHitTargets) {
  const Epoch epoch = GetParam();
  const auto targets = capability_targets(epoch);
  Rng rng(7);
  const int n = 60'000;
  int n11n = 0;
  int n5 = 0;
  int n40 = 0;
  int nac = 0;
  int ss2 = 0;
  int ss3 = 0;
  int ss4 = 0;
  for (int i = 0; i < n; ++i) {
    const auto c = sample_capabilities(epoch, rng);
    n11n += c.has(kCap11n);
    n5 += c.has(kCap5GHz);
    n40 += c.has(kCap40MHz);
    nac += c.has(kCap11ac);
    ss2 += c.has(kCapTwoStreams);
    ss3 += c.has(kCapThreeStreams);
    ss4 += c.has(kCapFourStreams);
  }
  const double dn = n;
  EXPECT_NEAR(n11n / dn, targets.p_11n, 0.01);
  EXPECT_NEAR(n5 / dn, targets.p_5ghz, 0.01);
  EXPECT_NEAR(n40 / dn, targets.p_40mhz, 0.015);
  EXPECT_NEAR(nac / dn, targets.p_11ac, 0.01);
  EXPECT_NEAR(ss2 / dn, targets.p_two_streams, 0.01);
  EXPECT_NEAR(ss3 / dn, targets.p_three_streams, 0.005);
  EXPECT_NEAR(ss4 / dn, targets.p_four_streams, 0.005);
}

INSTANTIATE_TEST_SUITE_P(BothSurveyWeeks, CapabilityMarginals,
                         ::testing::Values(Epoch::kJan2014, Epoch::kJan2015));

TEST(CapabilitySampling, ImplicationsHold) {
  Rng rng(13);
  for (int i = 0; i < 20'000; ++i) {
    const auto c = sample_capabilities(Epoch::kJan2015, rng);
    if (c.has(kCap11ac)) {
      EXPECT_TRUE(c.has(kCap5GHz));
      EXPECT_TRUE(c.has(kCap11n));
      EXPECT_TRUE(c.has(kCap40MHz));
    }
    if (c.spatial_streams() > 1) {
      EXPECT_TRUE(c.has(kCap11n));
    }
    if (c.has(kCap40MHz)) {
      EXPECT_TRUE(c.has(kCap11n));
    }
  }
}

TEST(CapabilitySampling, GrowthDirectionAcrossEpochs) {
  Rng rng(17);
  auto frac_ac = [&](Epoch e) {
    int count = 0;
    for (int i = 0; i < 30'000; ++i) count += sample_capabilities(e, rng).has(kCap11ac);
    return count / 30'000.0;
  };
  EXPECT_LT(frac_ac(Epoch::kJan2014), frac_ac(Epoch::kJan2015));
}

}  // namespace
}  // namespace wlm::deploy
