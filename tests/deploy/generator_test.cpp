#include "deploy/generator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wlm::deploy {
namespace {

FleetConfig small_config() {
  FleetConfig cfg;
  cfg.network_count = 100;
  cfg.seed = 11;
  return cfg;
}

TEST(Generator, DeterministicForSeed) {
  const Fleet a = generate_fleet(small_config());
  const Fleet b = generate_fleet(small_config());
  ASSERT_EQ(a.networks.size(), b.networks.size());
  EXPECT_EQ(a.total_aps(), b.total_aps());
  for (std::size_t i = 0; i < a.networks.size(); ++i) {
    EXPECT_EQ(a.networks[i].industry, b.networks[i].industry);
    ASSERT_EQ(a.networks[i].aps.size(), b.networks[i].aps.size());
    for (std::size_t j = 0; j < a.networks[i].aps.size(); ++j) {
      EXPECT_EQ(a.networks[i].aps[j].channel_24, b.networks[i].aps[j].channel_24);
      EXPECT_DOUBLE_EQ(a.networks[i].aps[j].position.x, b.networks[i].aps[j].position.x);
    }
  }
}

TEST(Generator, EveryNetworkHasAtLeastTwoAps) {
  // The paper's data set filters for networks with >= 2 APs.
  const Fleet fleet = generate_fleet(small_config());
  for (const auto& net : fleet.networks) {
    EXPECT_GE(net.aps.size(), 2u) << "network " << net.id.value();
  }
}

TEST(Generator, ApIdsGloballyUnique) {
  const Fleet fleet = generate_fleet(small_config());
  std::set<std::uint32_t> ids;
  for (const auto& net : fleet.networks) {
    for (const auto& ap : net.aps) ids.insert(ap.id.value());
  }
  EXPECT_EQ(static_cast<int>(ids.size()), fleet.total_aps());
}

TEST(Generator, ChannelsFromUsPlan) {
  const Fleet fleet = generate_fleet(small_config());
  const auto& plan = phy::ChannelPlan::us();
  for (const auto& net : fleet.networks) {
    for (const auto& ap : net.aps) {
      EXPECT_TRUE(plan.find(phy::Band::k2_4GHz, ap.channel_24).has_value());
      EXPECT_TRUE(plan.find(phy::Band::k5GHz, ap.channel_5).has_value());
    }
  }
}

TEST(Generator, TxPowerMatchesModel) {
  auto cfg = small_config();
  cfg.model = ApModel::kMr16;
  for (const auto& net : generate_fleet(cfg).networks) {
    for (const auto& ap : net.aps) {
      EXPECT_DOUBLE_EQ(ap.tx_power_24_dbm, 23.0);  // Table 1
      EXPECT_DOUBLE_EQ(ap.tx_power_5_dbm, 24.0);
    }
  }
  cfg.model = ApModel::kMr18;
  for (const auto& net : generate_fleet(cfg).networks) {
    for (const auto& ap : net.aps) {
      EXPECT_DOUBLE_EQ(ap.tx_power_24_dbm, 24.0);
    }
  }
}

TEST(Generator, SomeNetworksShareChannels) {
  // The mesh-measurable population: same-channel AP pairs must exist.
  const Fleet fleet = generate_fleet(small_config());
  int shared = 0;
  for (const auto& net : fleet.networks) {
    std::set<int> channels;
    for (const auto& ap : net.aps) channels.insert(ap.channel_24);
    if (channels.size() == 1 && net.aps.size() >= 2) ++shared;
  }
  EXPECT_GT(shared, 20);
}

TEST(Generator, ClientsPerApByIndustry) {
  EXPECT_GT(clients_per_ap(Industry::kEducation), clients_per_ap(Industry::kLegal));
}

TEST(Generator, EnvironmentsPopulated) {
  const Fleet fleet = generate_fleet(small_config());
  std::size_t with_neighbors = 0;
  std::size_t total = 0;
  for (const auto& net : fleet.networks) {
    for (const auto& ap : net.aps) {
      ++total;
      with_neighbors += !ap.environment.neighbors.empty();
    }
  }
  EXPECT_GT(static_cast<double>(with_neighbors) / static_cast<double>(total), 0.9);
}

}  // namespace
}  // namespace wlm::deploy
