#include "deploy/industry.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace wlm::deploy {
namespace {

TEST(Industry, Table2TotalIs20667) {
  EXPECT_EQ(total_network_count(), 20'667);
}

TEST(Industry, KnownCounts) {
  const auto counts = industry_network_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(Industry::kEducation)], 4075);
  EXPECT_EQ(counts[static_cast<std::size_t>(Industry::kRetail)], 2355);
  EXPECT_EQ(counts[static_cast<std::size_t>(Industry::kLegal)], 264);
  EXPECT_EQ(counts[static_cast<std::size_t>(Industry::kVarSystemIntegrator)], 2876);
}

TEST(Industry, NamesMatchEnumOrder) {
  EXPECT_EQ(industry_name(Industry::kEducation), "Education");
  EXPECT_EQ(industry_name(Industry::kOther), "Other");
  EXPECT_EQ(industry_name(Industry::kGovernment), "Government/Public Sector");
}

TEST(Industry, SamplerTracksTable2Mix) {
  Rng rng(42);
  std::vector<int> counts(static_cast<std::size_t>(kIndustryCount), 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(sample_industry(rng))];
  const auto expected = industry_network_counts();
  for (int i = 0; i < kIndustryCount; ++i) {
    const double want = static_cast<double>(expected[static_cast<std::size_t>(i)]) /
                        total_network_count();
    const double got = static_cast<double>(counts[static_cast<std::size_t>(i)]) / n;
    EXPECT_NEAR(got, want, 0.01) << industry_name(static_cast<Industry>(i));
  }
}

}  // namespace
}  // namespace wlm::deploy
