#include "deploy/neighbors.hpp"

#include <gtest/gtest.h>

#include <map>

#include "classify/oui.hpp"

namespace wlm::deploy {
namespace {

TEST(NeighborParams, Table7Calibration) {
  const auto now = neighbor_params(Epoch::kJan2015);
  EXPECT_NEAR(now.mean_24, 55.47, 0.01);
  EXPECT_NEAR(now.mean_5, 3.68, 0.01);
  const auto before = neighbor_params(Epoch::kJul2014);
  EXPECT_NEAR(before.mean_24, 28.60, 0.01);
  EXPECT_NEAR(before.mean_5, 2.47, 0.01);
  EXPECT_GT(before.hotspot_frac_24, now.hotspot_frac_24);  // share shrank
}

TEST(Channel24Sampler, OneSixElevenDominateWithCh1Lead) {
  Rng rng(3);
  std::map<int, int> counts;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[sample_channel_24(rng)];
  const double c1 = counts[1];
  const double c6 = counts[6];
  const double c11 = counts[11];
  // Figure 2: channel 1 carries ~37% more networks than 6/11.
  EXPECT_NEAR(c1 / ((c6 + c11) / 2.0), 1.37, 0.08);
  // The trio holds the overwhelming majority.
  EXPECT_GT((c1 + c6 + c11) / n, 0.85);
  for (int ch = 1; ch <= 11; ++ch) EXPECT_GT(counts[ch], 0) << "channel " << ch;
}

TEST(Channel5Sampler, UniiBandShares) {
  Rng rng(5);
  std::map<int, int> counts;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[sample_channel_5(rng)];
  double unii1 = 0;
  double unii2 = 0;
  double unii2e = 0;
  double unii3 = 0;
  for (const auto& [ch, c] : counts) {
    if (ch <= 48) unii1 += c;
    else if (ch <= 64) unii2 += c;
    else if (ch <= 140) unii2e += c;
    else unii3 += c;
  }
  // DFS-free bands dominate; the extended band is nearly empty (Figure 2).
  EXPECT_GT(unii1 / n, 0.35);
  EXPECT_GT(unii3 / n, 0.30);
  EXPECT_LT(unii2e / n, 0.10);
  EXPECT_LT(unii2 / n, 0.15);
}

TEST(NeighborGenerator, MeansTrackEpochCalibration) {
  // Suburban at multiplier 0.40: expect 0.40 * 55.47 neighbors at 2.4 GHz.
  const NeighborGenerator gen(Epoch::kJan2015, Density::kSuburban);
  Rng rng(7);
  double total24 = 0;
  double total5 = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const auto env = gen.generate(rng);
    for (const auto& nb : env.neighbors) {
      (nb.band == phy::Band::k2_4GHz ? total24 : total5) += 1.0;
    }
  }
  const double mult = NeighborGenerator::density_multiplier(Density::kSuburban);
  EXPECT_NEAR(total24 / n, 55.47 * mult, 55.47 * mult * 0.15);
  EXPECT_NEAR(total5 / n, 3.68 * mult, 3.68 * mult * 0.25);
}

TEST(NeighborGenerator, EpochGrowth) {
  Rng rng(9);
  auto mean_count = [&](Epoch e) {
    const NeighborGenerator gen(e, Density::kUrban);
    double total = 0;
    for (int i = 0; i < 2000; ++i) total += gen.generate(rng).neighbors.size();
    return total / 2000.0;
  };
  EXPECT_GT(mean_count(Epoch::kJan2015), mean_count(Epoch::kJul2014) * 1.5);
}

TEST(NeighborGenerator, HotspotBssidsCarryHotspotOuis) {
  const NeighborGenerator gen(Epoch::kJan2015, Density::kUrban);
  Rng rng(11);
  int hotspots = 0;
  int correct_oui = 0;
  for (int i = 0; i < 300; ++i) {
    for (const auto& nb : gen.generate(rng).neighbors) {
      if (!nb.is_hotspot) continue;
      ++hotspots;
      correct_oui += classify::is_hotspot_vendor(classify::vendor_for(nb.bssid));
    }
  }
  ASSERT_GT(hotspots, 50);
  EXPECT_EQ(correct_oui, hotspots);  // OUI-based detection must recover all
}

TEST(NeighborGenerator, DayDutyAtLeastNightDuty) {
  const NeighborGenerator gen(Epoch::kJan2015, Density::kSuburban);
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    for (const auto& nb : gen.generate(rng).neighbors) {
      EXPECT_GE(nb.day_duty, nb.night_duty);
      EXPECT_GE(nb.day_duty, 0.0);
      EXPECT_LE(nb.day_duty, 0.45);
    }
  }
}

TEST(NeighborGenerator, LegacyBeaconsOnly24GHz) {
  const NeighborGenerator gen(Epoch::kJan2015, Density::kDenseUrban);
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    for (const auto& nb : gen.generate(rng).neighbors) {
      if (nb.band == phy::Band::k5GHz) {
        EXPECT_FALSE(nb.legacy_11b);
      }
    }
  }
}

TEST(NeighborGenerator, InterferersMostly24GHz) {
  const NeighborGenerator gen(Epoch::kJan2015, Density::kUrban);
  Rng rng(17);
  int total = 0;
  int on5 = 0;
  for (int i = 0; i < 500; ++i) {
    for (const auto& intf : gen.generate(rng).interferers) {
      ++total;
      on5 += intf.band == phy::Band::k5GHz;
    }
  }
  ASSERT_GT(total, 100);
  EXPECT_EQ(on5, 0);  // Bluetooth and microwaves live in the ISM band
}

TEST(NeighborGenerator, HeavyTailExists) {
  // Some AP must hear several times the mean (the skyscraper effect).
  const NeighborGenerator gen(Epoch::kJan2015, Density::kDenseUrban);
  Rng rng(19);
  std::size_t max_seen = 0;
  for (int i = 0; i < 2000; ++i) {
    max_seen = std::max(max_seen, gen.generate(rng).neighbors.size());
  }
  EXPECT_GT(max_seen, 400u);
}

}  // namespace
}  // namespace wlm::deploy
