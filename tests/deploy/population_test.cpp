#include "deploy/population.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <set>

#include "classify/oui.hpp"

namespace wlm::deploy {
namespace {

TEST(Population, TotalClientsMatchPaper) {
  EXPECT_NEAR(total_clients(Epoch::kJan2015), 5.67e6, 0.05e6);
  EXPECT_NEAR(total_clients(Epoch::kJan2014), 4.1e6, 0.2e6);
}

TEST(Population, OsMixTracksTable3) {
  const PopulationModel model(Epoch::kJan2015);
  Rng rng(3);
  std::map<classify::OsType, int> counts;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    ++counts[model.sample(ClientId{static_cast<std::uint32_t>(i)}, rng).os];
  }
  const auto weights = os_client_weights(Epoch::kJan2015);
  const double total = total_clients(Epoch::kJan2015);
  // The two largest populations.
  EXPECT_NEAR(counts[classify::OsType::kAppleIos] / static_cast<double>(n),
              weights[static_cast<std::size_t>(classify::OsType::kAppleIos)] / total, 0.01);
  EXPECT_NEAR(counts[classify::OsType::kAndroid] / static_cast<double>(n),
              weights[static_cast<std::size_t>(classify::OsType::kAndroid)] / total, 0.01);
  // iOS outnumbers Windows ~3x (paper SS3.2).
  EXPECT_GT(counts[classify::OsType::kAppleIos], counts[classify::OsType::kWindows] * 2);
}

TEST(Population, VendorConsistentWithOs) {
  const PopulationModel model(Epoch::kJan2015);
  Rng rng(5);
  for (int i = 0; i < 20'000; ++i) {
    const auto dev = model.sample(ClientId{static_cast<std::uint32_t>(i)}, rng);
    const auto vendor = classify::vendor_for(dev.mac);
    switch (dev.os) {
      case classify::OsType::kAppleIos:
      case classify::OsType::kMacOsX:
        EXPECT_EQ(vendor, classify::Vendor::kApple);
        break;
      case classify::OsType::kPlaystation:
        EXPECT_EQ(vendor, classify::Vendor::kSony);
        break;
      case classify::OsType::kBlackberry:
        EXPECT_EQ(vendor, classify::Vendor::kRim);
        break;
      default:
        break;
    }
  }
}

TEST(Population, ConsolesNeverGain11ac) {
  const PopulationModel model(Epoch::kJan2015);
  Rng rng(7);
  for (int i = 0; i < 50'000; ++i) {
    const auto dev = model.sample(ClientId{static_cast<std::uint32_t>(i)}, rng);
    if (dev.os == classify::OsType::kPlaystation ||
        dev.os == classify::OsType::kBlackberry) {
      EXPECT_FALSE(dev.caps.has(kCap11ac));
    }
  }
}

TEST(Population, OnlyMobileDevicesRoam) {
  const PopulationModel model(Epoch::kJan2015);
  Rng rng(9);
  int mobile_roamers = 0;
  for (int i = 0; i < 20'000; ++i) {
    const auto dev = model.sample(ClientId{static_cast<std::uint32_t>(i)}, rng);
    if (dev.roams) {
      EXPECT_EQ(classify::device_class(dev.os), classify::DeviceClass::kMobile);
      ++mobile_roamers;
    }
  }
  EXPECT_GT(mobile_roamers, 1000);
}

TEST(Population, RoamProbabilityClampsToLegalRange) {
  // The knob replaced a hard-coded 0.6; hostile values degrade, not explode.
  EXPECT_DOUBLE_EQ(PopulationModel(Epoch::kJan2015).roam_probability(), 0.6);
  EXPECT_DOUBLE_EQ(PopulationModel(Epoch::kJan2015, 0.25).roam_probability(), 0.25);
  EXPECT_DOUBLE_EQ(PopulationModel(Epoch::kJan2015, -1.0).roam_probability(), 0.0);
  EXPECT_DOUBLE_EQ(PopulationModel(Epoch::kJan2015, 7.0).roam_probability(), 1.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(PopulationModel(Epoch::kJan2015, nan).roam_probability(), 0.6);
}

TEST(Population, RoamProbabilityExtremesRespected) {
  Rng rng0(13);
  const PopulationModel never(Epoch::kJan2015, 0.0);
  Rng rng1(13);
  const PopulationModel always(Epoch::kJan2015, 1.0);
  int mobile = 0;
  for (int i = 0; i < 20'000; ++i) {
    const auto id = ClientId{static_cast<std::uint32_t>(i)};
    EXPECT_FALSE(never.sample(id, rng0).roams);
    const auto dev = always.sample(id, rng1);
    const bool is_mobile =
        classify::device_class(dev.os) == classify::DeviceClass::kMobile;
    EXPECT_EQ(dev.roams, is_mobile);
    mobile += is_mobile ? 1 : 0;
  }
  EXPECT_GT(mobile, 1000);
}

TEST(Population, RoamSettingNeverShiftsOtherSampledFields) {
  // Rng::chance consumes exactly one draw for any probability, so the roam
  // knob must not perturb MAC/OS/caps — the guarantee that keeps historical
  // campaigns byte-identical when a scenario overrides the probability.
  const PopulationModel a(Epoch::kJan2015, 0.0);
  const PopulationModel b(Epoch::kJan2015, 1.0);
  Rng rng_a(17);
  Rng rng_b(17);
  for (int i = 0; i < 20'000; ++i) {
    const auto id = ClientId{static_cast<std::uint32_t>(i)};
    const auto da = a.sample(id, rng_a);
    const auto db = b.sample(id, rng_b);
    ASSERT_EQ(da.mac.to_u64(), db.mac.to_u64()) << "client " << i;
    ASSERT_EQ(da.os, db.os) << "client " << i;
    ASSERT_EQ(da.caps.bits, db.caps.bits) << "client " << i;
  }
}

TEST(Population, MacsMostlyUnique) {
  const PopulationModel model(Epoch::kJan2015);
  Rng rng(11);
  std::set<std::uint64_t> macs;
  const int n = 30'000;
  for (int i = 0; i < n; ++i) {
    macs.insert(model.sample(ClientId{static_cast<std::uint32_t>(i)}, rng).mac.to_u64());
  }
  // Vendor-OUI MACs embed the unique client id; only randomized ones can
  // ever collide, and then only with vanishing probability.
  EXPECT_GT(macs.size(), static_cast<std::size_t>(n) - 5);
}

TEST(Population, WeightsShrinkFor2014) {
  const auto w15 = os_client_weights(Epoch::kJan2015);
  const auto w14 = os_client_weights(Epoch::kJan2014);
  // Growing platforms had fewer clients in 2014...
  EXPECT_LT(w14[static_cast<std::size_t>(classify::OsType::kAppleIos)],
            w15[static_cast<std::size_t>(classify::OsType::kAppleIos)]);
  // ...while shrinking ones (BlackBerry) had more.
  EXPECT_GT(w14[static_cast<std::size_t>(classify::OsType::kBlackberry)],
            w15[static_cast<std::size_t>(classify::OsType::kBlackberry)]);
}

}  // namespace
}  // namespace wlm::deploy
