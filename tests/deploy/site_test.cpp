#include "deploy/site.hpp"

#include <gtest/gtest.h>

namespace wlm::deploy {
namespace {

TEST(Site, ApPositionsInBounds) {
  SiteConfig cfg;
  cfg.width_m = 80.0;
  cfg.height_m = 40.0;
  cfg.ap_count = 9;
  Rng rng(3);
  Site site(SiteId{1}, cfg, rng);
  EXPECT_EQ(site.ap_positions().size(), 9u);
  for (const auto& p : site.ap_positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, cfg.width_m);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, cfg.height_m);
  }
}

TEST(Site, ApsAreSpreadOut) {
  SiteConfig cfg;
  cfg.width_m = 100.0;
  cfg.height_m = 100.0;
  cfg.ap_count = 4;
  Rng rng(5);
  Site site(SiteId{1}, cfg, rng);
  // Grid placement: no two APs land on top of each other.
  const auto& aps = site.ap_positions();
  for (std::size_t i = 0; i < aps.size(); ++i) {
    for (std::size_t j = i + 1; j < aps.size(); ++j) {
      EXPECT_GT(phy::distance_m(aps[i], aps[j]), 10.0);
    }
  }
}

TEST(Site, RandomPositionsInBounds) {
  SiteConfig cfg;
  Rng rng(7);
  Site site(SiteId{2}, cfg, rng);
  for (int i = 0; i < 1000; ++i) {
    const auto p = site.random_position(rng);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, cfg.width_m);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, cfg.height_m);
  }
}

TEST(Site, WallsScaleWithDistance) {
  SiteConfig cfg;
  cfg.walls_per_10m = 2.0;
  Rng rng(9);
  Site site(SiteId{3}, cfg, rng);
  EXPECT_EQ(site.walls_between({0.0, 0.0}, {0.0, 0.0}), 0);
  EXPECT_EQ(site.walls_between({0.0, 0.0}, {30.0, 0.0}), 6);
}

TEST(Site, SingleApSite) {
  SiteConfig cfg;
  cfg.ap_count = 1;
  Rng rng(11);
  Site site(SiteId{4}, cfg, rng);
  EXPECT_EQ(site.ap_positions().size(), 1u);
}

TEST(SiteConfig, DensityShapesSize) {
  Rng rng(13);
  double rural_aps = 0.0;
  double dense_aps = 0.0;
  for (int i = 0; i < 500; ++i) {
    rural_aps += sample_site_config(Density::kRural, rng).ap_count;
    dense_aps += sample_site_config(Density::kDenseUrban, rng).ap_count;
  }
  EXPECT_LT(rural_aps, dense_aps);
}

TEST(Density, Names) {
  EXPECT_STREQ(density_name(Density::kRural), "rural");
  EXPECT_STREQ(density_name(Density::kDenseUrban), "dense-urban");
}

}  // namespace
}  // namespace wlm::deploy
