#include "failsafe/failpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <new>
#include <string>
#include <vector>

namespace wlm::failsafe {
namespace {

/// The registry is process-global (like FleetRunner's phase hook); every
/// test scopes its arming with this RAII guard so no schedule leaks into
/// the next test.
struct ScopedDisarm {
  ScopedDisarm() { failpoints().disarm_all(); }
  ~ScopedDisarm() { failpoints().disarm_all(); }
};

TEST(FailpointSpecParse, FullClauseRoundTrips) {
  std::string error;
  const auto specs = FailpointSpec::parse_list(
      "site=shard.step,net=7,action=delay,after=2,times=3,hours=4.5,prob=0.25,seed=99",
      &error);
  ASSERT_TRUE(specs.has_value()) << error;
  ASSERT_EQ(specs->size(), 1u);
  const FailpointSpec& s = (*specs)[0];
  EXPECT_EQ(s.site, "shard.step");
  EXPECT_EQ(s.entity, 7u);
  EXPECT_FALSE(s.any_entity);
  EXPECT_EQ(s.action, FailAction::kDelay);
  EXPECT_EQ(s.after, 2u);
  EXPECT_EQ(s.times, 3u);
  EXPECT_DOUBLE_EQ(s.delay_hours, 4.5);
  EXPECT_DOUBLE_EQ(s.probability, 0.25);
  EXPECT_EQ(s.seed, 99u);
}

TEST(FailpointSpecParse, DefaultsMatchDocumented) {
  const auto specs = FailpointSpec::parse_list("site=poller.poll");
  ASSERT_TRUE(specs.has_value());
  const FailpointSpec& s = (*specs)[0];
  EXPECT_TRUE(s.any_entity);
  EXPECT_EQ(s.action, FailAction::kThrow);
  EXPECT_EQ(s.after, 0u);
  EXPECT_EQ(s.times, 0u);
  EXPECT_DOUBLE_EQ(s.probability, 1.0);
}

TEST(FailpointSpecParse, SemicolonSeparatesClauses) {
  const auto specs = FailpointSpec::parse_list(
      "site=shard.step,action=throw;site=ckpt.save.write,action=error");
  ASSERT_TRUE(specs.has_value());
  ASSERT_EQ(specs->size(), 2u);
  EXPECT_EQ((*specs)[0].site, "shard.step");
  EXPECT_EQ((*specs)[1].site, "ckpt.save.write");
  EXPECT_EQ((*specs)[1].action, FailAction::kError);
}

TEST(FailpointSpecParse, RejectsBadInput) {
  std::string error;
  // Each bad spec must fail with a diagnostic naming the problem.
  const char* bad[] = {
      "action=throw",                     // missing site
      "site=shard.step,flavor=spicy",     // unknown key
      "site=shard.step,after=lots",       // non-numeric count
      "site=shard.step,prob=1.5",         // probability out of range
      "site=shard.step,hours=-2",         // negative stall
      "site=shard.step,action=explode",   // unknown action
      "",                                 // empty clause
  };
  for (const char* text : bad) {
    error.clear();
    EXPECT_FALSE(FailpointSpec::parse_list(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(FailpointRegistry, UnarmedIsFreeAndSilent) {
  ScopedDisarm guard;
  EXPECT_FALSE(failpoints().armed());
  EXPECT_NO_THROW(failpoint("shard.step"));
  EXPECT_FALSE(failpoint_fails("ckpt.save.write"));
  EXPECT_EQ(failpoints().hits("shard.step", 0), 0u);
}

TEST(FailpointRegistry, ThrowActionFiresOnMatchingSiteOnly) {
  ScopedDisarm guard;
  ASSERT_TRUE(failpoints().arm_list("site=shard.step,action=throw"));
  EXPECT_TRUE(failpoints().armed());
  EXPECT_NO_THROW(failpoint("poller.poll"));
  EXPECT_THROW(failpoint("shard.step"), FailpointError);
}

TEST(FailpointRegistry, EntityFilterTargetsOneNetwork) {
  ScopedDisarm guard;
  ASSERT_TRUE(failpoints().arm_list("site=shard.step,net=3,action=throw"));
  {
    ScopedShardContext ctx(2, 0.0);
    EXPECT_NO_THROW(failpoint("shard.step"));
  }
  {
    ScopedShardContext ctx(3, 0.0);
    EXPECT_THROW(failpoint("shard.step"), FailpointError);
  }
  // An entity-filtered clause only tracks the entity it targets.
  EXPECT_EQ(failpoints().hits("shard.step", 2), 0u);
  EXPECT_EQ(failpoints().hits("shard.step", 3), 1u);
}

TEST(FailpointRegistry, AfterAndTimesBoundTheSchedule) {
  ScopedDisarm guard;
  ASSERT_TRUE(failpoints().arm_list("site=shard.step,after=2,times=2,action=throw"));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    bool f = false;
    try {
      failpoints().eval("shard.step", 0);
    } catch (const FailpointError&) {
      f = true;
    }
    fired.push_back(f);
  }
  // Hits 1-2 skipped by `after`, hits 3-4 fire, `times` then exhausts.
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, false, false}));
  EXPECT_EQ(failpoints().hits("shard.step", 0), 6u);
}

TEST(FailpointRegistry, PerEntityCountersAreIndependent) {
  ScopedDisarm guard;
  ASSERT_TRUE(failpoints().arm_list("site=shard.step,times=1,action=throw"));
  EXPECT_THROW(failpoints().eval("shard.step", 1), FailpointError);
  EXPECT_NO_THROW(failpoints().eval("shard.step", 1));  // entity 1 exhausted
  EXPECT_THROW(failpoints().eval("shard.step", 2), FailpointError);  // 2 is fresh
}

TEST(FailpointRegistry, ProbabilisticScheduleReplaysBitIdentically) {
  ScopedDisarm guard;
  const auto record = [] {
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      bool f = false;
      try {
        failpoints().eval("shard.step", 5);
      } catch (const FailpointError&) {
        f = true;
      }
      fired.push_back(f);
    }
    return fired;
  };
  ASSERT_TRUE(failpoints().arm_list("site=shard.step,prob=0.3,seed=42,action=throw"));
  const auto first = record();
  failpoints().disarm_all();
  ASSERT_TRUE(failpoints().arm_list("site=shard.step,prob=0.3,seed=42,action=throw"));
  const auto replay = record();
  EXPECT_EQ(first, replay);
  // Sanity: a 0.3 schedule over 64 hits fires some but not all.
  const auto count = static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(count, 0u);
  EXPECT_LT(count, 64u);

  // A different seed draws a different schedule.
  failpoints().disarm_all();
  ASSERT_TRUE(failpoints().arm_list("site=shard.step,prob=0.3,seed=43,action=throw"));
  EXPECT_NE(first, record());
}

TEST(FailpointRegistry, DelayAccumulatesAndTripsWatchdog) {
  ScopedDisarm guard;
  ASSERT_TRUE(failpoints().arm_list("site=poller.poll,action=delay,hours=2"));
  ScopedShardContext ctx(9, /*deadline_hours=*/5.0);
  EXPECT_NO_THROW(failpoint("poller.poll"));  // 2h
  EXPECT_NO_THROW(failpoint("poller.poll"));  // 4h
  EXPECT_DOUBLE_EQ(ScopedShardContext::current_delay_hours(), 4.0);
  try {
    failpoint("poller.poll");  // 6h > 5h deadline
    FAIL() << "watchdog did not trip";
  } catch (const WatchdogTimeout& e) {
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos);
  }
}

TEST(FailpointRegistry, DelayWithoutDeadlineNeverTrips) {
  ScopedDisarm guard;
  ASSERT_TRUE(failpoints().arm_list("site=poller.poll,action=delay,hours=100"));
  ScopedShardContext ctx(9, /*deadline_hours=*/0.0);
  for (int i = 0; i < 10; ++i) EXPECT_NO_THROW(failpoint("poller.poll"));
  EXPECT_DOUBLE_EQ(ScopedShardContext::current_delay_hours(), 1000.0);
}

TEST(FailpointRegistry, OomActionThrowsBadAlloc) {
  ScopedDisarm guard;
  ASSERT_TRUE(failpoints().arm_list("site=shard.alloc,action=oom,times=1"));
  EXPECT_THROW(failpoint("shard.alloc"), std::bad_alloc);
  EXPECT_NO_THROW(failpoint("shard.alloc"));
}

TEST(FailpointRegistry, EvalFailsReportsAnyFiringActionAsFailure) {
  ScopedDisarm guard;
  // Whatever the armed action, an error-return site reads a firing as
  // "the operation failed" — it must never unwind.
  for (const char* action : {"error", "throw", "delay", "oom"}) {
    failpoints().disarm_all();
    ASSERT_TRUE(failpoints().arm_list(std::string("site=ckpt.save.write,action=") +
                                      action));
    EXPECT_TRUE(failpoint_fails("ckpt.save.write")) << action;
  }
  failpoints().disarm_all();
  EXPECT_FALSE(failpoint_fails("ckpt.save.write"));
}

TEST(FailpointRegistry, FirstMatchingClauseWinsButAllCountHits) {
  ScopedDisarm guard;
  ASSERT_TRUE(failpoints().arm_list(
      "site=shard.step,action=delay,hours=1;site=shard.step,action=throw"));
  ScopedShardContext ctx(4, 0.0);
  // One hit: the delay clause fires (first match), the throw clause never
  // gets its turn, yet both clauses observed the hit.
  EXPECT_NO_THROW(failpoint("shard.step"));
  EXPECT_DOUBLE_EQ(ScopedShardContext::current_delay_hours(), 1.0);
  EXPECT_EQ(failpoints().hits("shard.step", 4), 1u);
}

TEST(FailpointRegistry, ArmListRejectsBadTextAtomically) {
  ScopedDisarm guard;
  std::string error;
  EXPECT_FALSE(failpoints().arm_list("site=shard.step;site=,action=throw", &error));
  EXPECT_FALSE(error.empty());
  // Nothing from the good clause leaks through a failed arm.
  EXPECT_FALSE(failpoints().armed());
  EXPECT_NO_THROW(failpoint("shard.step"));
}

TEST(ScopedShardContext, NestsAndRestores) {
  EXPECT_EQ(ScopedShardContext::current_entity(), 0u);
  {
    ScopedShardContext outer(7, 0.0);
    EXPECT_EQ(ScopedShardContext::current_entity(), 7u);
    {
      ScopedShardContext inner(8, 0.0);
      EXPECT_EQ(ScopedShardContext::current_entity(), 8u);
    }
    EXPECT_EQ(ScopedShardContext::current_entity(), 7u);
  }
  EXPECT_EQ(ScopedShardContext::current_entity(), 0u);
}

}  // namespace
}  // namespace wlm::failsafe
