// End-to-end supervision scenarios against real fleet campaigns: a killed
// shard degrades the run gracefully (quarantine + accounted loss + byte-
// identical survivors), a transient failure recovers byte-identically via
// checkpoint-based retry, the watchdog converts injected stalls into
// supervised failures, and the degraded-run manifest survives a checkpoint
// round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/campaign.hpp"
#include "failsafe/failpoint.hpp"
#include "failsafe/supervisor.hpp"
#include "sim/fleet_runner.hpp"
#include "telemetry/export.hpp"

namespace wlm::failsafe {
namespace {

struct ScopedDisarm {
  ScopedDisarm() { failpoints().disarm_all(); }
  ~ScopedDisarm() { failpoints().disarm_all(); }
};

sim::WorldConfig scenario(int jobs, std::uint64_t retries,
                          double deadline_hours = 0.0) {
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 6;
  config.fleet.seed = 11;
  config.seed = 12;
  config.threads = jobs;
  config.supervision.max_shard_retries = retries;
  config.supervision.shard_deadline_hours = deadline_hours;
  config.supervision.capture_checkpoints = true;
  return config;
}

void run_campaign(sim::FleetRunner& runner) {
  runner.run_usage_week();
  runner.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
  runner.run_link_windows(SimTime::epoch() + Duration::hours(14));
  runner.harvest(sim::HarvestMode::kFinal);
}

/// Network id of shard `index` in the scenario fleet (stable across jobs:
/// shard order is fleet order).
std::uint64_t network_of_shard(std::size_t index) {
  const sim::FleetRunner probe(scenario(1, 0));
  return probe.shards().at(index)->id().value();
}

/// AP ids belonging to `network` in the scenario fleet.
std::vector<ApId> aps_of_network(std::uint64_t network) {
  sim::FleetRunner probe(scenario(1, 0));
  std::vector<ApId> ids;
  for (const auto& ap : probe.aps()) {
    if (ap.network().value() == network) ids.push_back(ap.id());
  }
  return ids;
}

/// Drops every metric line owned by the supervision layer; a recovered run
/// is byte-identical to a clean one *modulo* these (recovery is deliberately
/// visible in telemetry).
std::string strip_supervisor_lines(const std::string& prometheus) {
  std::istringstream in(prometheus);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("wlm_supervisor_") == std::string::npos) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

TEST(SupervisorE2E, KillOneShardQuarantinesAndKeepsSurvivorsByteIdentical) {
  ScopedDisarm guard;
  const std::uint64_t victim = network_of_shard(2);
  const auto victim_aps = aps_of_network(victim);
  ASSERT_FALSE(victim_aps.empty());

  sim::FleetRunner clean(scenario(1, 1));
  run_campaign(clean);
  ASSERT_FALSE(clean.supervisor().degraded());

  std::vector<std::string> snapshots;
  for (const int jobs : {1, 2, 8}) {
    failpoints().disarm_all();
    // The poll site fires on every harvest-drain cycle, so every retry
    // fails too: this shard cannot be saved, only quarantined.
    ASSERT_TRUE(failpoints().arm_list("site=poller.poll,net=" +
                                      std::to_string(victim) + ",action=throw"));
    sim::FleetRunner runner(scenario(jobs, 1));
    run_campaign(runner);

    EXPECT_TRUE(runner.supervisor().degraded());
    EXPECT_EQ(runner.supervisor().quarantined_count(), 1u);
    EXPECT_EQ(runner.supervisor().manifest().quarantined_networks(),
              std::vector<std::uint64_t>{victim});

    // The quarantined shard's work is accounted, not silently dropped: its
    // generated reports moved to lost_supervision and the fleet invariant
    // still closes.
    const auto ledger = runner.loss_ledger();
    EXPECT_TRUE(ledger.conserved()) << ledger.render();
    EXPECT_GT(ledger.lost_supervision, 0u);

    // No report from the quarantined network reached the fleet store...
    for (const ApId ap : victim_aps) {
      EXPECT_TRUE(runner.store().reports_for(ap).empty());
    }
    // ...and every surviving AP's reports are byte-identical to the clean
    // run's (shard confinement means a neighbor's death is invisible).
    for (const auto& ap : clean.aps()) {
      if (ap.network().value() == victim) continue;
      EXPECT_EQ(runner.store().reports_for(ap.id()), clean.store().reports_for(ap.id()));
    }
    snapshots.push_back(telemetry::to_prometheus(runner.metrics()));
  }
  // The whole degraded telemetry snapshot is a deterministic artifact.
  EXPECT_EQ(snapshots[0], snapshots[1]);
  EXPECT_EQ(snapshots[0], snapshots[2]);
}

TEST(SupervisorE2E, TransientFailureRecoversByteIdentically) {
  ScopedDisarm guard;
  const std::uint64_t victim = network_of_shard(1);

  sim::FleetRunner clean(scenario(2, 2));
  run_campaign(clean);

  failpoints().disarm_all();
  ASSERT_TRUE(failpoints().arm_list("site=shard.step,net=" + std::to_string(victim) +
                                    ",action=throw,times=1"));
  sim::FleetRunner runner(scenario(2, 2));
  run_campaign(runner);

  // One incident, recovered on the first retry — not a degraded run.
  EXPECT_FALSE(runner.supervisor().degraded());
  EXPECT_EQ(runner.supervisor().quarantined_count(), 0u);
  ASSERT_EQ(runner.supervisor().manifest().incidents.size(), 1u);
  const ShardIncident& incident = runner.supervisor().manifest().incidents[0];
  EXPECT_EQ(incident.network, victim);
  EXPECT_EQ(incident.phase, "usage_week");
  EXPECT_EQ(incident.outcome, IncidentOutcome::kRecovered);
  EXPECT_EQ(incident.failures, 1u);
  EXPECT_EQ(incident.retries, 1u);
  EXPECT_GT(incident.backoff_hours, 0.0);

  // The recovered campaign's simulated output is byte-identical to the
  // unfaulted run's: same reports for every AP, same ledger, and the same
  // metrics once the (deliberately visible) supervisor lines are stripped.
  EXPECT_EQ(runner.store().report_count(), clean.store().report_count());
  for (const auto& ap : clean.aps()) {
    EXPECT_EQ(runner.store().reports_for(ap.id()), clean.store().reports_for(ap.id()));
  }
  EXPECT_EQ(runner.loss_ledger().render(), clean.loss_ledger().render());
  EXPECT_EQ(strip_supervisor_lines(telemetry::to_prometheus(runner.metrics())),
            telemetry::to_prometheus(clean.metrics()));
}

TEST(SupervisorE2E, WatchdogConvertsStallIntoSupervisedRecovery) {
  ScopedDisarm guard;
  const std::uint64_t victim = network_of_shard(0);

  sim::FleetRunner clean(scenario(1, 2, /*deadline_hours=*/5.0));
  run_campaign(clean);

  failpoints().disarm_all();
  // Two 3-hour stalls blow the 5-hour deadline mid-phase; `times=2` means
  // the retry attempt runs stall-free and recovers.
  ASSERT_TRUE(failpoints().arm_list("site=shard.step,net=" + std::to_string(victim) +
                                    ",action=delay,hours=3,times=2"));
  sim::FleetRunner runner(scenario(1, 2, /*deadline_hours=*/5.0));
  run_campaign(runner);

  EXPECT_FALSE(runner.supervisor().degraded());
  ASSERT_EQ(runner.supervisor().manifest().incidents.size(), 1u);
  const ShardIncident& incident = runner.supervisor().manifest().incidents[0];
  EXPECT_EQ(incident.outcome, IncidentOutcome::kRecovered);
  EXPECT_NE(incident.error.find("watchdog"), std::string::npos) << incident.error;
  for (const auto& ap : clean.aps()) {
    EXPECT_EQ(runner.store().reports_for(ap.id()), clean.store().reports_for(ap.id()));
  }
}

TEST(SupervisorE2E, HarvestMergeFailureQuarantinesWithoutMerging) {
  ScopedDisarm guard;
  const std::uint64_t victim = network_of_shard(3);
  const auto victim_aps = aps_of_network(victim);

  ASSERT_TRUE(failpoints().arm_list("site=harvest.merge,net=" + std::to_string(victim) +
                                    ",action=error"));
  sim::FleetRunner runner(scenario(2, 1));
  run_campaign(runner);

  // The shard simulated and drained fine; only its merge step kept failing.
  EXPECT_TRUE(runner.supervisor().degraded());
  ASSERT_EQ(runner.supervisor().manifest().incidents.size(), 1u);
  const ShardIncident& incident = runner.supervisor().manifest().incidents[0];
  EXPECT_EQ(incident.phase, "harvest.merge");
  EXPECT_EQ(incident.outcome, IncidentOutcome::kQuarantined);
  for (const ApId ap : victim_aps) {
    EXPECT_TRUE(runner.store().reports_for(ap).empty());
  }
  const auto ledger = runner.loss_ledger();
  EXPECT_TRUE(ledger.conserved()) << ledger.render();
  // Its delivered work was struck from `delivered` into lost_supervision.
  EXPECT_GT(ledger.lost_supervision, 0u);
}

TEST(SupervisorE2E, ManifestSurvivesCheckpointRoundtrip) {
  ScopedDisarm guard;
  const std::uint64_t victim = network_of_shard(2);
  ASSERT_TRUE(failpoints().arm_list("site=poller.poll,net=" + std::to_string(victim) +
                                    ",action=throw"));
  sim::FleetRunner runner(scenario(1, 1));
  run_campaign(runner);
  ASSERT_TRUE(runner.supervisor().degraded());
  failpoints().disarm_all();

  ckpt::CampaignProgress progress;
  progress.label = "degraded";
  progress.phases_done = {"usage_week", "mr16", "link_windows", "harvest"};
  const auto bytes = ckpt::save_campaign(runner, progress);

  ckpt::RestoredCampaign restored;
  const auto err = ckpt::restore_campaign(bytes, 2, restored);
  ASSERT_FALSE(err) << err.detail;
  ASSERT_NE(restored.runner, nullptr);
  EXPECT_EQ(restored.runner->supervisor().manifest(), runner.supervisor().manifest());
  EXPECT_EQ(restored.runner->supervisor().quarantined_count(), 1u);
  EXPECT_TRUE(restored.runner->supervisor().degraded());
  // The quarantine set was rebuilt from the manifest, so the restored
  // fleet's ledger still reattributes the victim's work.
  EXPECT_EQ(restored.runner->loss_ledger().render(), runner.loss_ledger().render());
}

TEST(SupervisorE2E, CheckpointWriteFailpointIsTypedIoError) {
  ScopedDisarm guard;
  sim::FleetRunner runner(scenario(1, 0));
  runner.run_usage_week();
  ckpt::CampaignProgress progress;
  progress.phases_done = {"usage_week"};

  const std::string path = ::testing::TempDir() + "wlm_failsafe_ckpt_fail.bin";
  ASSERT_TRUE(failpoints().arm_list("site=ckpt.save.write,action=error,times=1"));
  const auto err = ckpt::save_campaign_file(path, runner, progress);
  EXPECT_EQ(err.status, ckpt::Status::kIo);
  EXPECT_NE(err.detail.find("failpoint"), std::string::npos) << err.detail;

  // The failpoint exhausted after one firing; the very next save lands.
  const auto ok = ckpt::save_campaign_file(path, runner, progress);
  EXPECT_FALSE(ok) << ok.detail;
  std::remove(path.c_str());
}

TEST(SupervisorE2E, ResumeFromMissingPathIsTypedIoError) {
  ckpt::RestoredCampaign restored;
  const auto err = ckpt::restore_campaign_file(
      ::testing::TempDir() + "wlm_no_such_checkpoint.bin", 1, restored);
  ASSERT_TRUE(err);
  EXPECT_EQ(err.status, ckpt::Status::kIo);
  EXPECT_NE(err.detail.find("cannot open"), std::string::npos) << err.detail;
  EXPECT_EQ(restored.runner, nullptr);
}

}  // namespace
}  // namespace wlm::failsafe
