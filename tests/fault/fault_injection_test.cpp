// End-to-end fault injection through the sharded fleet runtime: the loss
// ledger's conservation invariant under mixed faults, bit-identical replay
// across thread counts, and the §6.1 OOM-reboot loss path.
#include <gtest/gtest.h>

#include "core/checksum.hpp"
#include "sim/fleet_runner.hpp"
#include "wire/messages.hpp"

namespace wlm::sim {
namespace {

WorldConfig faulted_fleet(const fault::FaultSpec& faults, int networks = 10,
                          std::uint64_t seed = 77, int threads = 1) {
  WorldConfig cfg;
  cfg.fleet.epoch = deploy::Epoch::kJan2015;
  cfg.fleet.network_count = networks;
  cfg.fleet.seed = seed;
  cfg.seed = seed + 1;
  cfg.threads = threads;
  cfg.faults = faults;
  return cfg;
}

/// A scenario with every loss process active at once.
fault::FaultSpec mixed_faults() {
  fault::FaultSpec faults;
  faults.flap_fraction = 0.3;
  faults.outage_rate_per_week = 8.0;
  faults.outage_mean_hours = 20.0;
  faults.reboot_rate_per_week = 6.0;
  faults.corrupt_probability = 0.05;
  faults.tunnel_queue_limit = 3;  // force shedding on flapped backlogs
  return faults;
}

std::uint32_t store_digest(backend::ReportStore& store) {
  std::uint32_t crc = 0;
  for (const ApId ap : store.aps()) {
    for (const auto& report : store.reports_for(ap)) {
      crc = crc32_update(crc, wire::encode_report(report));
    }
  }
  return crc;
}

TEST(FaultInjection, MixedFaultLedgerConserved) {
  FleetRunner runner(faulted_fleet(mixed_faults()));
  runner.run_usage_week(/*reports_per_week=*/7);
  runner.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
  runner.harvest(HarvestMode::kFinal);

  const fault::LossLedger ledger = runner.loss_ledger();
  EXPECT_TRUE(ledger.conserved()) << ledger.render();
  EXPECT_EQ(ledger.in_flight, 0u) << "final harvest must drain everything";
  // Every loss bucket is active under the mixed scenario.
  EXPECT_GT(ledger.generated, 0u);
  EXPECT_GT(ledger.delivered, 0u);
  EXPECT_GT(ledger.shed, 0u);
  EXPECT_GT(ledger.lost_reboot, 0u);
  EXPECT_GT(ledger.lost_corruption, 0u);
  // "delivered" is exactly what the store holds.
  EXPECT_EQ(runner.store().report_count(), ledger.delivered);
}

TEST(FaultInjection, LedgerAndStoreBitIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    FleetRunner runner(faulted_fleet(mixed_faults(), 10, 77, threads));
    runner.run_usage_week(7);
    runner.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
    runner.harvest(HarvestMode::kFinal);
    return std::make_pair(store_digest(runner.store()), runner.loss_ledger());
  };
  const auto serial = run(1);
  const auto parallel4 = run(4);
  const auto parallel3 = run(3);
  EXPECT_EQ(serial.first, parallel4.first);
  EXPECT_EQ(serial.first, parallel3.first);
  EXPECT_EQ(serial.second, parallel4.second) << serial.second.render() << "\nvs\n"
                                             << parallel4.second.render();
  EXPECT_EQ(serial.second, parallel3.second);
}

TEST(FaultInjection, FaultsDoNotPerturbCampaignDraws) {
  // The plan comes from a dedicated substream, so a faults-enabled run
  // generates exactly the same reports as a clean run — only their fate
  // differs. With lossless faults (pure flap + final harvest) the stores
  // must be byte-identical.
  auto digest_with = [](const fault::FaultSpec& faults) {
    FleetRunner runner(faulted_fleet(faults, 8, 21));
    runner.run_usage_week(7);
    runner.harvest(HarvestMode::kFinal);
    return store_digest(runner.store());
  };
  fault::FaultSpec flap_only;
  flap_only.flap_fraction = 0.9;
  EXPECT_EQ(digest_with(fault::FaultSpec{}), digest_with(flap_only));
}

TEST(FaultInjection, LegacyFlapFoldsIntoFaultSpec) {
  // WorldConfig::wan_flap_fraction keeps working as shorthand.
  WorldConfig cfg = faulted_fleet(fault::FaultSpec{}, 6, 31);
  cfg.wan_flap_fraction = 0.8;
  FleetRunner runner(cfg);
  EXPECT_DOUBLE_EQ(runner.config().faults.flap_fraction, 0.8);
  runner.run_usage_week(7);
  runner.harvest(HarvestMode::kFinal);
  const fault::LossLedger ledger = runner.loss_ledger();
  EXPECT_TRUE(ledger.conserved()) << ledger.render();
  EXPECT_EQ(ledger.lost(), 0u) << "a flap alone loses nothing (paper §2)";
  EXPECT_EQ(ledger.delivered, ledger.generated);
}

TEST(FaultInjection, BadKnobsClampInsteadOfMisbehaving) {
  fault::FaultSpec faults;
  faults.flap_fraction = 2.5;         // > 1
  faults.outage_rate_per_week = -4.0; // negative
  WorldConfig cfg = faulted_fleet(faults, 2, 5);
  cfg.client_scale = -3.0;
  FleetRunner runner(cfg);
  EXPECT_DOUBLE_EQ(runner.config().client_scale, 0.0);
  EXPECT_DOUBLE_EQ(runner.config().faults.flap_fraction, 1.0);
  EXPECT_DOUBLE_EQ(runner.config().faults.outage_rate_per_week, 0.0);
  runner.run_usage_week(3);
  runner.harvest();
  EXPECT_TRUE(runner.loss_ledger().conserved());
}

TEST(FaultInjection, OomRebootsFlushQueuedTelemetry) {
  // §6.1: skyscraper APs inflate their neighbor tables until the box
  // OOM-reboots, flushing queued state. Flap everything so the usage
  // backlog is still queued when the scan report triggers the reboot.
  fault::FaultSpec faults;
  faults.flap_fraction = 1.0;
  faults.skyscraper_fraction = 1.0;
  faults.skyscraper_neighbors = 600;
  faults.oom_neighbor_threshold = 400;
  FleetRunner runner(faulted_fleet(faults, 4, 13));
  runner.run_usage_week(/*reports_per_week=*/3);
  runner.run_mr16_interference(SimTime::epoch() + Duration::days(3));
  runner.harvest(HarvestMode::kFinal);

  std::uint64_t oom_reboots = 0;
  for (const auto& shard : runner.shards()) {
    oom_reboots += shard->injector().oom_reboots();
  }
  EXPECT_GT(oom_reboots, 0u);
  const fault::LossLedger ledger = runner.loss_ledger();
  EXPECT_TRUE(ledger.conserved()) << ledger.render();
  // Every AP lost its 3 queued usage reports to the OOM reboot.
  EXPECT_GE(ledger.lost_reboot, 3u * runner.aps().size());
}

TEST(FaultInjection, WeekEndHarvestLeavesOpenOutagesInFlight) {
  fault::FaultSpec faults;
  faults.outage_rate_per_week = 2.0;
  faults.outage_mean_hours = 400.0;  // most outages stay open past the week
  FleetRunner runner(faulted_fleet(faults, 8, 19));
  runner.run_usage_week(7);
  runner.harvest(HarvestMode::kWeekEnd);

  const fault::LossLedger ledger = runner.loss_ledger();
  EXPECT_TRUE(ledger.conserved()) << ledger.render();
  EXPECT_GT(ledger.in_flight, 0u) << "open outages must strand their backlog";
  bool any_offline = false;
  for (const auto& ap : runner.aps()) {
    if (!ap.tunnel().connected()) any_offline = true;
  }
  EXPECT_TRUE(any_offline);
}

TEST(FaultInjection, CorruptionExercisesPollerCrcPath) {
  fault::FaultSpec faults;
  faults.corrupt_probability = 0.2;
  FleetRunner runner(faulted_fleet(faults, 6, 23));
  runner.run_usage_week(7);
  runner.harvest(HarvestMode::kFinal);

  std::uint64_t frames_corrupted = 0;
  std::uint64_t poller_corrupt = 0;
  for (const auto& shard : runner.shards()) {
    frames_corrupted += shard->injector().frames_corrupted();
    poller_corrupt += shard->poller().stats().corrupt_frames;
  }
  EXPECT_GT(frames_corrupted, 0u);
  // CRC32 catches every single-bit flip, so the poller sees exactly what
  // the injector corrupted.
  EXPECT_EQ(poller_corrupt, frames_corrupted);
  const fault::LossLedger ledger = runner.loss_ledger();
  EXPECT_TRUE(ledger.conserved()) << ledger.render();
  EXPECT_EQ(ledger.lost_corruption, frames_corrupted);
}

}  // namespace
}  // namespace wlm::sim
