#include "fault/plan.hpp"

#include <gtest/gtest.h>

namespace wlm::fault {
namespace {

TEST(FaultPlan, DeterministicForSameStream) {
  FaultSpec spec;
  spec.outage_rate_per_week = 3.0;
  spec.reboot_rate_per_week = 2.0;
  spec.firmware_wave_fraction = 0.5;
  spec.skyscraper_fraction = 0.2;
  const FaultPlan a = FaultPlan::build(spec, Rng{42}, 64);
  const FaultPlan b = FaultPlan::build(spec, Rng{42}, 64);
  ASSERT_EQ(a.ap_count(), b.ap_count());
  for (std::size_t i = 0; i < a.ap_count(); ++i) {
    EXPECT_EQ(a.schedule(i).events, b.schedule(i).events);
    EXPECT_EQ(a.schedule(i).skyscraper, b.schedule(i).skyscraper);
  }
  const FaultPlan c = FaultPlan::build(spec, Rng{43}, 64);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.ap_count() && !any_difference; ++i) {
    any_difference = a.schedule(i).events != c.schedule(i).events;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlan, FlapIsDegenerateOutage) {
  // flap=1 reproduces the legacy one-shot flap: every AP goes down at t=0
  // and stays down past the horizon, so only the final harvest reconnects.
  FaultSpec spec;
  spec.flap_fraction = 1.0;
  const FaultPlan plan = FaultPlan::build(spec, Rng{7}, 16);
  for (std::size_t i = 0; i < plan.ap_count(); ++i) {
    const auto& events = plan.schedule(i).events;
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].type, FaultEventType::kOutageStart);
    EXPECT_EQ(events[0].t_us, 0);
    EXPECT_EQ(events[1].type, FaultEventType::kOutageEnd);
    EXPECT_GT(events[1].t_us, FaultPlan::horizon().as_micros());
  }
}

TEST(FaultPlan, OutagesSortedAndAlternating) {
  FaultSpec spec;
  spec.outage_rate_per_week = 6.0;
  spec.outage_mean_hours = 10.0;
  const FaultPlan plan = FaultPlan::build(spec, Rng{11}, 40);
  for (std::size_t i = 0; i < plan.ap_count(); ++i) {
    std::int64_t last_t = -1;
    int depth = 0;  // outage nesting depth; merged intervals keep it in {0,1}
    for (const auto& event : plan.schedule(i).events) {
      EXPECT_GE(event.t_us, last_t);
      last_t = event.t_us;
      if (event.type == FaultEventType::kOutageStart) {
        EXPECT_EQ(depth, 0);
        ++depth;
      } else if (event.type == FaultEventType::kOutageEnd) {
        EXPECT_EQ(depth, 1);
        --depth;
      }
    }
    EXPECT_EQ(depth, 0);
  }
}

TEST(FaultPlan, EventCountsTrackRates) {
  FaultSpec spec;
  spec.outage_rate_per_week = 2.0;
  spec.reboot_rate_per_week = 3.0;
  const std::size_t aps = 200;
  const FaultPlan plan = FaultPlan::build(spec, Rng{5}, aps);
  // Poisson processes: expect counts near rate * ap_count. Wide tolerance —
  // this guards against misreading the rate as per-day or per-AP-squared,
  // not against statistical noise.
  EXPECT_GT(plan.total_outages(), aps);
  EXPECT_LT(plan.total_outages(), 3 * aps);
  EXPECT_GT(plan.total_reboots(), 2 * aps);
  EXPECT_LT(plan.total_reboots(), 4 * aps);
}

TEST(FaultPlan, FirmwareWaveRestartsInsideItsHour) {
  FaultSpec spec;
  spec.firmware_wave_fraction = 1.0;
  spec.firmware_wave_hour = 60.0;
  const FaultPlan plan = FaultPlan::build(spec, Rng{3}, 32);
  EXPECT_EQ(plan.total_reboots(), 32u);
  const std::int64_t lo = static_cast<std::int64_t>(60.0 * 3.6e9);
  const std::int64_t hi = static_cast<std::int64_t>(61.0 * 3.6e9);
  for (std::size_t i = 0; i < plan.ap_count(); ++i) {
    ASSERT_EQ(plan.schedule(i).events.size(), 1u);
    const auto& event = plan.schedule(i).events[0];
    EXPECT_EQ(event.type, FaultEventType::kReboot);
    EXPECT_GE(event.t_us, lo);
    EXPECT_LE(event.t_us, hi);
  }
}

TEST(FaultPlan, SkyscraperFractionMarksSomeAps) {
  FaultSpec spec;
  spec.skyscraper_fraction = 0.5;
  const FaultPlan plan = FaultPlan::build(spec, Rng{9}, 100);
  std::size_t marked = 0;
  for (std::size_t i = 0; i < plan.ap_count(); ++i) marked += plan.schedule(i).skyscraper;
  EXPECT_GT(marked, 20u);
  EXPECT_LT(marked, 80u);
}

}  // namespace
}  // namespace wlm::fault
