#include "fault/spec.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wlm::fault {
namespace {

TEST(FaultSpec, DefaultIsDisabled) {
  EXPECT_FALSE(FaultSpec{}.enabled());
}

TEST(FaultSpec, QueueLimitAloneDoesNotEnable) {
  FaultSpec spec;
  spec.tunnel_queue_limit = 8;
  EXPECT_FALSE(spec.enabled());
}

TEST(FaultSpec, EachDisruptionKnobEnables) {
  auto enabled_with = [](auto set) {
    FaultSpec spec;
    set(spec);
    return spec.enabled();
  };
  EXPECT_TRUE(enabled_with([](FaultSpec& s) { s.flap_fraction = 0.1; }));
  EXPECT_TRUE(enabled_with([](FaultSpec& s) { s.outage_rate_per_week = 1.0; }));
  EXPECT_TRUE(enabled_with([](FaultSpec& s) { s.reboot_rate_per_week = 1.0; }));
  EXPECT_TRUE(enabled_with([](FaultSpec& s) { s.firmware_wave_fraction = 0.5; }));
  EXPECT_TRUE(enabled_with([](FaultSpec& s) { s.corrupt_probability = 0.01; }));
  EXPECT_TRUE(enabled_with([](FaultSpec& s) { s.oom_neighbor_threshold = 400; }));
  EXPECT_TRUE(enabled_with([](FaultSpec& s) { s.skyscraper_fraction = 0.05; }));
}

TEST(FaultSpec, ClampedBringsKnobsIntoRange) {
  FaultSpec spec;
  spec.flap_fraction = 1.7;
  spec.outage_rate_per_week = -3.0;
  spec.outage_mean_hours = -1.0;
  spec.corrupt_probability = std::nan("");
  spec.firmware_wave_hour = 500.0;
  spec.tunnel_queue_limit = 0;
  const FaultSpec clamped = spec.clamped();
  EXPECT_DOUBLE_EQ(clamped.flap_fraction, 1.0);
  EXPECT_DOUBLE_EQ(clamped.outage_rate_per_week, 0.0);
  EXPECT_DOUBLE_EQ(clamped.outage_mean_hours, FaultSpec{}.outage_mean_hours);
  EXPECT_DOUBLE_EQ(clamped.corrupt_probability, 0.0);
  EXPECT_DOUBLE_EQ(clamped.firmware_wave_hour, FaultSpec{}.firmware_wave_hour);
  EXPECT_EQ(clamped.tunnel_queue_limit, 1u);
}

TEST(FaultSpec, ParseFullSpec) {
  const auto spec = FaultSpec::parse(
      "flap=0.2,outage_rate=2,outage_hours=36,reboot_rate=1.5,fw_wave=0.8,"
      "fw_hour=61,corrupt=0.02,oom_threshold=450,skyscraper=0.1,"
      "skyscraper_neighbors=700,queue=128");
  ASSERT_TRUE(spec.has_value());
  EXPECT_DOUBLE_EQ(spec->flap_fraction, 0.2);
  EXPECT_DOUBLE_EQ(spec->outage_rate_per_week, 2.0);
  EXPECT_DOUBLE_EQ(spec->outage_mean_hours, 36.0);
  EXPECT_DOUBLE_EQ(spec->reboot_rate_per_week, 1.5);
  EXPECT_DOUBLE_EQ(spec->firmware_wave_fraction, 0.8);
  EXPECT_DOUBLE_EQ(spec->firmware_wave_hour, 61.0);
  EXPECT_DOUBLE_EQ(spec->corrupt_probability, 0.02);
  EXPECT_EQ(spec->oom_neighbor_threshold, 450u);
  EXPECT_DOUBLE_EQ(spec->skyscraper_fraction, 0.1);
  EXPECT_EQ(spec->skyscraper_neighbors, 700u);
  EXPECT_EQ(spec->tunnel_queue_limit, 128u);
  EXPECT_TRUE(spec->enabled());
}

TEST(FaultSpec, ParseEmptyIsDisabled) {
  const auto spec = FaultSpec::parse("");
  ASSERT_TRUE(spec.has_value());
  EXPECT_FALSE(spec->enabled());
}

TEST(FaultSpec, ParseRejectsUnknownKey) {
  std::string error;
  EXPECT_FALSE(FaultSpec::parse("bogus=1", &error).has_value());
  EXPECT_NE(error.find("bogus"), std::string::npos);
  // The diagnostic lists the valid vocabulary.
  EXPECT_NE(error.find("outage_rate"), std::string::npos);
}

TEST(FaultSpec, ParseRejectsBadValues) {
  std::string error;
  EXPECT_FALSE(FaultSpec::parse("corrupt=banana", &error).has_value());
  EXPECT_NE(error.find("corrupt"), std::string::npos);
  EXPECT_FALSE(FaultSpec::parse("flap=1.5", &error).has_value());
  EXPECT_FALSE(FaultSpec::parse("outage_rate=-2", &error).has_value());
  EXPECT_FALSE(FaultSpec::parse("outage_hours=0", &error).has_value());
  EXPECT_FALSE(FaultSpec::parse("queue=0", &error).has_value());
  EXPECT_FALSE(FaultSpec::parse("oom_threshold=1.5", &error).has_value());
  EXPECT_FALSE(FaultSpec::parse("fw_hour=169", &error).has_value());
  EXPECT_FALSE(FaultSpec::parse("justakey", &error).has_value());
  EXPECT_NE(error.find("key=value"), std::string::npos);
}

}  // namespace
}  // namespace wlm::fault
