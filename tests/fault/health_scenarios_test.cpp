// Every HealthIssue class must be producible by a fault scenario: the
// monitor exists to diagnose exactly the §6.1 failures the injector models,
// so each signal gets a scenario that provably raises it.
#include <gtest/gtest.h>

#include "backend/health.hpp"
#include "sim/fleet_runner.hpp"

namespace wlm::sim {
namespace {

WorldConfig scenario(const fault::FaultSpec& faults, int networks = 8,
                     std::uint64_t seed = 99) {
  WorldConfig cfg;
  cfg.fleet.epoch = deploy::Epoch::kJan2015;
  cfg.fleet.network_count = networks;
  cfg.fleet.seed = seed;
  cfg.seed = seed + 1;
  cfg.faults = faults;
  return cfg;
}

std::vector<backend::HealthFinding> triage(FleetRunner& runner) {
  backend::HealthPolicy policy;
  policy.expected_interval = Duration::days(1);
  const backend::HealthMonitor monitor(policy);
  auto findings =
      monitor.analyze(runner.store(), SimTime::epoch() + Duration::days(7));
  for (const auto& ap : runner.aps()) {
    const auto t = monitor.analyze_tunnel(ap.tunnel());
    findings.insert(findings.end(), t.begin(), t.end());
  }
  return findings;
}

bool has_issue(const std::vector<backend::HealthFinding>& findings,
               backend::HealthIssue issue) {
  for (const auto& f : findings) {
    if (f.issue == issue) return true;
  }
  return false;
}

TEST(HealthScenarios, TelemetryShedFromTinyQueueUnderFlap) {
  fault::FaultSpec faults;
  faults.flap_fraction = 1.0;
  faults.tunnel_queue_limit = 2;  // a 7-report backlog cannot fit
  FleetRunner runner(scenario(faults));
  runner.run_usage_week(7);
  runner.harvest(HarvestMode::kFinal);
  EXPECT_TRUE(has_issue(triage(runner), backend::HealthIssue::kTelemetryShed));
  EXPECT_GT(runner.loss_ledger().shed, 0u);
}

TEST(HealthScenarios, WanFlappingFromDenseOutageProcess) {
  fault::FaultSpec faults;
  faults.outage_rate_per_week = 12.0;
  faults.outage_mean_hours = 2.0;
  FleetRunner runner(scenario(faults));
  runner.run_usage_week(7);
  runner.harvest(HarvestMode::kFinal);
  EXPECT_TRUE(has_issue(triage(runner), backend::HealthIssue::kWanFlapping));
}

TEST(HealthScenarios, OfflineFromOutageOpenPastWeekEnd) {
  fault::FaultSpec faults;
  faults.outage_rate_per_week = 2.0;
  faults.outage_mean_hours = 400.0;
  FleetRunner runner(scenario(faults));
  runner.run_usage_week(7);
  // Week-end view: APs inside an open outage have not reported for days.
  runner.harvest(HarvestMode::kWeekEnd);
  EXPECT_TRUE(has_issue(triage(runner), backend::HealthIssue::kOffline));
}

TEST(HealthScenarios, ReportingGapsFromRebootDuringOutage) {
  // An outage queues reports; a reboot inside it flushes the backlog; the
  // WAN comes back and reporting resumes — leaving a multi-day hole in the
  // AP's timeline.
  fault::FaultSpec faults;
  faults.outage_rate_per_week = 3.0;
  faults.outage_mean_hours = 30.0;
  faults.reboot_rate_per_week = 6.0;
  FleetRunner runner(scenario(faults));
  runner.run_usage_week(7);
  runner.harvest(HarvestMode::kFinal);
  EXPECT_TRUE(has_issue(triage(runner), backend::HealthIssue::kReportingGaps));
}

TEST(HealthScenarios, NeighborPressureFromSkyscraperAps) {
  fault::FaultSpec faults;
  faults.skyscraper_fraction = 0.3;
  faults.skyscraper_neighbors = 600;  // threshold is 400
  FleetRunner runner(scenario(faults));
  runner.run_mr16_interference(SimTime::epoch() + Duration::days(3));
  runner.harvest(HarvestMode::kFinal);
  EXPECT_TRUE(has_issue(triage(runner), backend::HealthIssue::kNeighborPressure));
}

TEST(HealthScenarios, CleanFleetHasNoFindings) {
  FleetRunner runner(scenario(fault::FaultSpec{}));
  runner.run_usage_week(7);
  runner.harvest(HarvestMode::kFinal);
  EXPECT_TRUE(triage(runner).empty());
}

}  // namespace
}  // namespace wlm::sim
