#include "mac/association.hpp"

#include <gtest/gtest.h>

namespace wlm::mac {
namespace {

BssCandidate bss(std::uint32_t ap, phy::Band band, double rssi) {
  return BssCandidate{ApId{ap}, band, PowerDbm{rssi}};
}

TEST(Association, NothingUsableReturnsNullopt) {
  AssociationPolicy policy;
  Rng rng(1);
  const auto r = select_bss({bss(1, phy::Band::k2_4GHz, -95.0)}, true, policy, rng);
  EXPECT_FALSE(r.has_value());
  EXPECT_FALSE(select_bss({}, true, policy, rng).has_value());
}

TEST(Association, PicksStrongest24) {
  AssociationPolicy policy;
  Rng rng(2);
  const auto r = select_bss(
      {bss(1, phy::Band::k2_4GHz, -70.0), bss(2, phy::Band::k2_4GHz, -60.0)}, false,
      policy, rng);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->ap, ApId{2});
  EXPECT_EQ(r->band, phy::Band::k2_4GHz);
}

TEST(Association, SingleBandClientIgnores5GHz) {
  AssociationPolicy policy;
  Rng rng(3);
  const auto r = select_bss(
      {bss(1, phy::Band::k5GHz, -50.0), bss(2, phy::Band::k2_4GHz, -80.0)}, false,
      policy, rng);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->band, phy::Band::k2_4GHz);
}

TEST(Association, DualBandPrefersStrong5GHz) {
  AssociationPolicy policy;
  policy.sticky_2_4_prob = 0.0;
  Rng rng(4);
  const auto r = select_bss(
      {bss(1, phy::Band::k2_4GHz, -55.0), bss(1, phy::Band::k5GHz, -65.0)}, true, policy,
      rng);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->band, phy::Band::k5GHz);
}

TEST(Association, WeakFiveGhzFallsBackTo24) {
  AssociationPolicy policy;
  policy.sticky_2_4_prob = 0.0;
  Rng rng(5);
  // 5 GHz usable but below the preference threshold.
  const auto r = select_bss(
      {bss(1, phy::Band::k2_4GHz, -75.0), bss(1, phy::Band::k5GHz, -80.0)}, true, policy,
      rng);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->band, phy::Band::k2_4GHz);
}

TEST(Association, OnlyWeak5GHzBeatsNothing) {
  AssociationPolicy policy;
  Rng rng(6);
  const auto r = select_bss({bss(3, phy::Band::k5GHz, -85.0)}, true, policy, rng);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->band, phy::Band::k5GHz);
}

TEST(Association, StickinessKeepsSomeClientsOn24) {
  // Paper SS3.1: 65% of clients are 5 GHz capable but 80% associate at 2.4.
  AssociationPolicy policy;
  policy.sticky_2_4_prob = 0.35;
  Rng rng(7);
  int on24 = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const auto r = select_bss(
        {bss(1, phy::Band::k2_4GHz, -55.0), bss(1, phy::Band::k5GHz, -60.0)}, true,
        policy, rng);
    ASSERT_TRUE(r.has_value());
    if (r->band == phy::Band::k2_4GHz) ++on24;
  }
  EXPECT_NEAR(static_cast<double>(on24) / n, 0.35, 0.02);
}

// --- select_handoff boundary cases (the mobility walk's decision rule) ---

TEST(Handoff, EqualRssiTieNeverRoams) {
  AssociationPolicy policy;
  policy.handoff_hysteresis_db = 0.0;  // even with zero margin...
  const auto r = select_handoff({bss(1, phy::Band::k2_4GHz, -60.0),
                                 bss(2, phy::Band::k2_4GHz, -60.0)},
                                false, ApId{1}, phy::Band::k2_4GHz,
                                PowerDbm{-60.0}, policy);
  EXPECT_FALSE(r.has_value());  // ...strict ">" keeps ties on the serving BSS
}

TEST(Handoff, ExactHysteresisBoundaryStays) {
  AssociationPolicy policy;
  policy.handoff_hysteresis_db = 6.0;
  // Rival beats serving by exactly 6 dB: not strictly more, stays.
  const auto at = select_handoff({bss(2, phy::Band::k2_4GHz, -54.0)}, false,
                                 ApId{1}, phy::Band::k2_4GHz, PowerDbm{-60.0},
                                 policy);
  EXPECT_FALSE(at.has_value());
  // One step past the margin: roams.
  const auto past = select_handoff({bss(2, phy::Band::k2_4GHz, -53.9)}, false,
                                   ApId{1}, phy::Band::k2_4GHz, PowerDbm{-60.0},
                                   policy);
  ASSERT_TRUE(past.has_value());
  EXPECT_EQ(past->ap, ApId{2});
}

TEST(Handoff, SingleApNetworkNeverRoams) {
  AssociationPolicy policy;
  // The only candidates are the serving AP's own BSSes; the serving BSS is
  // skipped and the other band would be a band switch, not a given.
  const auto same_bss = select_handoff({bss(1, phy::Band::k2_4GHz, -40.0)},
                                       false, ApId{1}, phy::Band::k2_4GHz,
                                       PowerDbm{-70.0}, policy);
  EXPECT_FALSE(same_bss.has_value());
  EXPECT_FALSE(select_handoff({}, true, ApId{1}, phy::Band::k2_4GHz,
                              PowerDbm{-70.0}, policy)
                   .has_value());
}

TEST(Handoff, CellEdgeWithNothingUsableStays) {
  AssociationPolicy policy;
  // Client on the cell edge: serving signal is below min_rssi and so is
  // every rival. Staying (and suffering) beats flapping to an unusable BSS.
  const auto r = select_handoff({bss(2, phy::Band::k2_4GHz, -92.0),
                                 bss(3, phy::Band::k5GHz, -95.0)},
                                true, ApId{1}, phy::Band::k2_4GHz,
                                PowerDbm{-91.0}, policy);
  EXPECT_FALSE(r.has_value());
}

TEST(Handoff, CellEdgeRoamsToTheOneUsableRival) {
  AssociationPolicy policy;
  policy.handoff_hysteresis_db = 6.0;
  const auto r = select_handoff({bss(2, phy::Band::k2_4GHz, -70.0),
                                 bss(3, phy::Band::k2_4GHz, -89.0)},
                                false, ApId{1}, phy::Band::k2_4GHz,
                                PowerDbm{-91.0}, policy);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->ap, ApId{2});
}

TEST(Handoff, BandSteerBonusOnlyMovesDualBandClients) {
  AssociationPolicy policy;
  policy.handoff_hysteresis_db = 6.0;
  policy.band_steer_bonus_db = 10.0;
  const std::vector<BssCandidate> cands = {bss(2, phy::Band::k5GHz, -63.0)};
  // Dual-band: -63 + 10 steer = -53, beats -60 by 7 > 6 — roams up-band.
  const auto dual = select_handoff(cands, true, ApId{1}, phy::Band::k2_4GHz,
                                   PowerDbm{-60.0}, policy);
  ASSERT_TRUE(dual.has_value());
  EXPECT_EQ(dual->band, phy::Band::k5GHz);
  EXPECT_EQ(dual->ap, ApId{2});
  // Single-band client can't even see the 5 GHz BSS.
  const auto single = select_handoff(cands, false, ApId{1}, phy::Band::k2_4GHz,
                                     PowerDbm{-60.0}, policy);
  EXPECT_FALSE(single.has_value());
}

TEST(Handoff, SteerBonusAlsoRaisesTheServingScoreOn5GHz) {
  AssociationPolicy policy;
  policy.handoff_hysteresis_db = 6.0;
  policy.band_steer_bonus_db = 10.0;
  // Serving on 5 GHz gets the same bonus, so a 2.4 GHz rival must clear
  // the full steered score: -63+10 = -53 serving vs -50 rival = 3 dB, stays.
  const auto r = select_handoff({bss(2, phy::Band::k2_4GHz, -50.0)}, true,
                                ApId{1}, phy::Band::k5GHz, PowerDbm{-63.0},
                                policy);
  EXPECT_FALSE(r.has_value());
}

}  // namespace
}  // namespace wlm::mac
