#include "mac/association.hpp"

#include <gtest/gtest.h>

namespace wlm::mac {
namespace {

BssCandidate bss(std::uint32_t ap, phy::Band band, double rssi) {
  return BssCandidate{ApId{ap}, band, PowerDbm{rssi}};
}

TEST(Association, NothingUsableReturnsNullopt) {
  AssociationPolicy policy;
  Rng rng(1);
  const auto r = select_bss({bss(1, phy::Band::k2_4GHz, -95.0)}, true, policy, rng);
  EXPECT_FALSE(r.has_value());
  EXPECT_FALSE(select_bss({}, true, policy, rng).has_value());
}

TEST(Association, PicksStrongest24) {
  AssociationPolicy policy;
  Rng rng(2);
  const auto r = select_bss(
      {bss(1, phy::Band::k2_4GHz, -70.0), bss(2, phy::Band::k2_4GHz, -60.0)}, false,
      policy, rng);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->ap, ApId{2});
  EXPECT_EQ(r->band, phy::Band::k2_4GHz);
}

TEST(Association, SingleBandClientIgnores5GHz) {
  AssociationPolicy policy;
  Rng rng(3);
  const auto r = select_bss(
      {bss(1, phy::Band::k5GHz, -50.0), bss(2, phy::Band::k2_4GHz, -80.0)}, false,
      policy, rng);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->band, phy::Band::k2_4GHz);
}

TEST(Association, DualBandPrefersStrong5GHz) {
  AssociationPolicy policy;
  policy.sticky_2_4_prob = 0.0;
  Rng rng(4);
  const auto r = select_bss(
      {bss(1, phy::Band::k2_4GHz, -55.0), bss(1, phy::Band::k5GHz, -65.0)}, true, policy,
      rng);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->band, phy::Band::k5GHz);
}

TEST(Association, WeakFiveGhzFallsBackTo24) {
  AssociationPolicy policy;
  policy.sticky_2_4_prob = 0.0;
  Rng rng(5);
  // 5 GHz usable but below the preference threshold.
  const auto r = select_bss(
      {bss(1, phy::Band::k2_4GHz, -75.0), bss(1, phy::Band::k5GHz, -80.0)}, true, policy,
      rng);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->band, phy::Band::k2_4GHz);
}

TEST(Association, OnlyWeak5GHzBeatsNothing) {
  AssociationPolicy policy;
  Rng rng(6);
  const auto r = select_bss({bss(3, phy::Band::k5GHz, -85.0)}, true, policy, rng);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->band, phy::Band::k5GHz);
}

TEST(Association, StickinessKeepsSomeClientsOn24) {
  // Paper SS3.1: 65% of clients are 5 GHz capable but 80% associate at 2.4.
  AssociationPolicy policy;
  policy.sticky_2_4_prob = 0.35;
  Rng rng(7);
  int on24 = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const auto r = select_bss(
        {bss(1, phy::Band::k2_4GHz, -55.0), bss(1, phy::Band::k5GHz, -60.0)}, true,
        policy, rng);
    ASSERT_TRUE(r.has_value());
    if (r->band == phy::Band::k2_4GHz) ++on24;
  }
  EXPECT_NEAR(static_cast<double>(on24) / n, 0.35, 0.02);
}

}  // namespace
}  // namespace wlm::mac
