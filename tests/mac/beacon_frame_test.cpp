#include "mac/beacon_frame.hpp"

#include <gtest/gtest.h>

namespace wlm::mac {
namespace {

BeaconFrame sample() {
  BeaconFrame f;
  f.bssid = MacAddress::from_u64(0x001529aabbccULL);
  f.ssid = "Verizon-MiFi-1234";
  f.channel = 6;
  f.interval_tus = 100;
  f.privacy = true;
  f.rates = rates_11g();
  f.has_ht = true;
  return f;
}

TEST(BeaconFrame, RoundTrip) {
  const BeaconFrame original = sample();
  const auto parsed = parse_beacon_frame(encode_beacon_frame(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->bssid, original.bssid);
  EXPECT_EQ(parsed->ssid, original.ssid);
  EXPECT_EQ(parsed->channel, 6);
  EXPECT_EQ(parsed->interval_tus, 100);
  EXPECT_TRUE(parsed->privacy);
  EXPECT_TRUE(parsed->ess);
  EXPECT_TRUE(parsed->has_ht);
  EXPECT_EQ(parsed->rates, rates_11g());
}

TEST(BeaconFrame, HiddenSsid) {
  BeaconFrame f = sample();
  f.ssid.clear();
  const auto parsed = parse_beacon_frame(encode_beacon_frame(f));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->ssid.empty());
}

TEST(BeaconFrame, LegacyRateDetection) {
  BeaconFrame b = sample();
  b.rates = rates_11b();
  b.has_ht = false;
  const auto parsed = parse_beacon_frame(encode_beacon_frame(b));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_11b_only());

  const auto modern = parse_beacon_frame(encode_beacon_frame(sample()));
  EXPECT_FALSE(modern->is_11b_only());
}

TEST(BeaconFrame, CorruptFcsRejected) {
  auto bytes = encode_beacon_frame(sample());
  bytes[30] ^= 0x01;  // flip a bit mid-frame
  EXPECT_FALSE(parse_beacon_frame(bytes).has_value());
}

TEST(BeaconFrame, NonBeaconRejected) {
  auto bytes = encode_beacon_frame(sample());
  bytes[0] = 0x88;  // QoS data subtype
  EXPECT_FALSE(parse_beacon_frame(bytes).has_value());
  EXPECT_FALSE(parse_beacon_frame({}).has_value());
}

TEST(BeaconFrame, LongSsidTruncatedTo32) {
  BeaconFrame f = sample();
  f.ssid = std::string(60, 'x');
  const auto parsed = parse_beacon_frame(encode_beacon_frame(f));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ssid.size(), 32u);
}

TEST(BeaconFrame, FiveGhzChannelNumbers) {
  BeaconFrame f = sample();
  f.channel = 165;
  f.rates = {0x0C, 0x12, 0x18};  // OFDM only
  const auto parsed = parse_beacon_frame(encode_beacon_frame(f));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->channel, 165);
  EXPECT_FALSE(parsed->is_11b_only());
}

TEST(BeaconFrame, IbssCapability) {
  BeaconFrame f = sample();
  f.ess = false;
  const auto parsed = parse_beacon_frame(encode_beacon_frame(f));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->ess);
}

}  // namespace
}  // namespace wlm::mac
