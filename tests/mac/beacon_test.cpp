#include "mac/beacon.hpp"

#include <gtest/gtest.h>

namespace wlm::mac {
namespace {

TEST(BeaconDuty, SingleModernNetwork) {
  // One OFDM beacon every 102.4 ms.
  const double duty = beacon_duty_cycle({BeaconSource{1, false, kBeaconIntervalUs}});
  EXPECT_NEAR(duty, static_cast<double>(beacon_airtime_us(false)) / 102'400.0, 1e-12);
  EXPECT_LT(duty, 0.005);
}

TEST(BeaconDuty, LegacyCostsSixTimesMore) {
  const double legacy = beacon_duty_cycle({BeaconSource{1, true, kBeaconIntervalUs}});
  const double modern = beacon_duty_cycle({BeaconSource{1, false, kBeaconIntervalUs}});
  EXPECT_GT(legacy / modern, 5.0);
  EXPECT_NEAR(legacy, 2592.0 / 102'400.0, 1e-9);
}

TEST(BeaconDuty, VirtualApsMultiply) {
  const double one = beacon_duty_cycle({BeaconSource{1, false, kBeaconIntervalUs}});
  const double four = beacon_duty_cycle({BeaconSource{4, false, kBeaconIntervalUs}});
  EXPECT_NEAR(four, 4.0 * one, 1e-12);
}

TEST(BeaconDuty, ManySourcesCapAtOne) {
  std::vector<BeaconSource> sources(200, BeaconSource{4, true, kBeaconIntervalUs});
  EXPECT_DOUBLE_EQ(beacon_duty_cycle(sources), 1.0);
}

TEST(BeaconSchedule, CountsBeaconsInLongWindow) {
  BeaconSchedule sched(102'400, 0, 420);
  // A full second contains 9 or 10 beacon starts.
  const int n = sched.beacons_in_window(0, 1'000'000);
  EXPECT_GE(n, 9);
  EXPECT_LE(n, 10);
}

TEST(BeaconSchedule, ShortDwellUsuallyMisses) {
  BeaconSchedule sched(102'400, 0, 420);
  // A 5 ms dwell at an offset far from the TBTT sees nothing.
  EXPECT_EQ(sched.beacons_in_window(50'000, 5'000), 0);
  // A dwell covering the TBTT sees exactly one.
  EXPECT_EQ(sched.beacons_in_window(102'000, 5'000), 1);
}

TEST(BeaconSchedule, PartialOverlapAccounted) {
  BeaconSchedule sched(102'400, 0, 1'000);
  // Window starts mid-transmission of beacon k=1 (on air 102400..103400).
  EXPECT_EQ(sched.beacons_in_window(102'900, 1'000), 1);
  EXPECT_EQ(sched.airtime_in_window(102'900, 1'000), 500);
}

TEST(BeaconSchedule, AirtimeOverFullIntervalEqualsOneBeacon) {
  BeaconSchedule sched(102'400, 7'000, 420);
  EXPECT_EQ(sched.airtime_in_window(0, 102'400), 420);
}

TEST(BeaconSchedule, OffsetShiftsPhase) {
  BeaconSchedule early(102'400, 0, 420);
  BeaconSchedule late(102'400, 51'200, 420);
  EXPECT_EQ(early.beacons_in_window(0, 1'000), 1);
  EXPECT_EQ(late.beacons_in_window(0, 1'000), 0);
  EXPECT_EQ(late.beacons_in_window(51'200, 1'000), 1);
}

}  // namespace
}  // namespace wlm::mac
