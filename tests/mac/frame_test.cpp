#include "mac/frame.hpp"

#include <gtest/gtest.h>

namespace wlm::mac {
namespace {

TEST(Frame, LinkProbeIs60BytesOnAir) {
  const Frame probe24 = make_link_probe(MacAddress::from_u64(1), false);
  EXPECT_EQ(probe24.total_bytes(), 60);
  EXPECT_EQ(probe24.modulation, phy::Modulation::kDsss1);
  EXPECT_EQ(probe24.destination, broadcast_mac());
  EXPECT_EQ(probe24.airtime_us(), 672);  // paper-consistent 1 Mb/s timing

  const Frame probe5 = make_link_probe(MacAddress::from_u64(2), true);
  EXPECT_EQ(probe5.total_bytes(), 60);
  EXPECT_EQ(probe5.modulation, phy::Modulation::kOfdm6);
  EXPECT_LT(probe5.airtime_us(), probe24.airtime_us());
}

TEST(Frame, BeaconAirtimes) {
  // Paper SS4.1: 2.592 ms for 802.11b beacons, ~0.42 ms for OFDM.
  EXPECT_EQ(make_beacon(MacAddress{}, true).airtime_us(), 2592);
  const auto ofdm_us = make_beacon(MacAddress{}, false).airtime_us();
  EXPECT_GE(ofdm_us, 300);
  EXPECT_LE(ofdm_us, 450);
}

TEST(Frame, MacOverheadByType) {
  EXPECT_EQ(mac_overhead_bytes(FrameType::kAck), 14);
  EXPECT_EQ(mac_overhead_bytes(FrameType::kQosData), 30);
  EXPECT_EQ(mac_overhead_bytes(FrameType::kData), 28);
}

TEST(Frame, ToStringMentionsTypeAndRate) {
  const Frame f = make_link_probe(MacAddress::from_u64(0xabcdef), false);
  const std::string s = f.to_string();
  EXPECT_NE(s.find("link-probe"), std::string::npos);
  EXPECT_NE(s.find("DSSS 1"), std::string::npos);
  EXPECT_NE(s.find("ff:ff:ff:ff:ff:ff"), std::string::npos);
}

TEST(Frame, TypeNames) {
  EXPECT_STREQ(frame_type_name(FrameType::kBeacon), "beacon");
  EXPECT_STREQ(frame_type_name(FrameType::kAck), "ack");
}

TEST(Frame, BeaconIntervalConstant) {
  EXPECT_EQ(kBeaconIntervalUs, 102'400);  // 100 TUs
}

}  // namespace
}  // namespace wlm::mac
