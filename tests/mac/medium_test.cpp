#include "mac/medium.hpp"

#include <gtest/gtest.h>

#include "phy/propagation.hpp"

namespace wlm::mac {
namespace {

ActivitySource wifi_source(double rx_dbm, double duty, double plcp = 1.0) {
  ActivitySource s;
  s.kind = SourceKind::kWifi;
  s.rx_power = PowerDbm{rx_dbm};
  s.duty_cycle = duty;
  s.plcp_decode_prob = plcp;
  return s;
}

TEST(Counters, UtilizationAndDecodableMath) {
  ChannelCounters c;
  c.cycle_us = 1000;
  c.busy_us = 250;
  c.rx_frame_us = 200;
  EXPECT_DOUBLE_EQ(c.utilization(), 0.25);
  EXPECT_DOUBLE_EQ(c.decodable_fraction(), 0.8);
}

TEST(Counters, EmptySafe) {
  ChannelCounters c;
  EXPECT_DOUBLE_EQ(c.utilization(), 0.0);
  EXPECT_DOUBLE_EQ(c.decodable_fraction(), 0.0);
}

TEST(Counters, Accumulate) {
  ChannelCounters a;
  a.cycle_us = 100;
  a.busy_us = 10;
  ChannelCounters b;
  b.cycle_us = 100;
  b.busy_us = 30;
  b.rx_frame_us = 20;
  a += b;
  EXPECT_EQ(a.cycle_us, 200);
  EXPECT_EQ(a.busy_us, 40);
  EXPECT_EQ(a.rx_frame_us, 20);
}

TEST(MediumObserver, SensesWifiAbovePreambleThreshold) {
  const MediumObserver obs(phy::noise_floor(20.0));
  EXPECT_TRUE(obs.senses(wifi_source(-80.0, 0.1)));
  EXPECT_FALSE(obs.senses(wifi_source(-85.0, 0.1)));  // below -82 dBm
}

TEST(MediumObserver, NonWifiNeedsMoreEnergy) {
  const MediumObserver obs(phy::noise_floor(20.0));
  ActivitySource bt;
  bt.kind = SourceKind::kNonWifi;
  bt.duty_cycle = 0.1;
  bt.rx_power = PowerDbm{-80.0};
  EXPECT_FALSE(obs.senses(bt));  // a WiFi signal at -80 would trip CCA
  bt.rx_power = PowerDbm{-60.0};
  EXPECT_TRUE(obs.senses(bt));   // above the -62 dBm energy-detect line
}

TEST(MediumObserver, NothingBelowNoiseSensed) {
  const MediumObserver obs(PowerDbm{-75.0});  // elevated noise floor
  EXPECT_FALSE(obs.senses(wifi_source(-72.0, 0.5)));  // < noise + 6
}

TEST(MediumObserver, SingleSourceDutyIsUtilization) {
  const MediumObserver obs(phy::noise_floor(20.0));
  const auto c = obs.observe(Duration::minutes(1), {wifi_source(-70.0, 0.25)});
  EXPECT_EQ(c.cycle_us, 60'000'000);
  EXPECT_NEAR(c.utilization(), 0.25, 1e-9);
  EXPECT_NEAR(c.decodable_fraction(), 1.0, 1e-9);
}

TEST(MediumObserver, IndependentSourcesCombine) {
  const MediumObserver obs(phy::noise_floor(20.0));
  const auto c = obs.observe(Duration::minutes(1),
                             {wifi_source(-70.0, 0.2), wifi_source(-65.0, 0.2)});
  EXPECT_NEAR(c.utilization(), 1.0 - 0.8 * 0.8, 1e-6);
}

TEST(MediumObserver, CorruptWifiNotDecodable) {
  const MediumObserver obs(phy::noise_floor(20.0));
  ActivitySource corrupt;
  corrupt.kind = SourceKind::kWifiCorrupt;
  corrupt.rx_power = PowerDbm{-55.0};
  corrupt.duty_cycle = 0.3;
  const auto c = obs.observe(Duration::minutes(1), {corrupt});
  EXPECT_NEAR(c.utilization(), 0.3, 1e-9);
  EXPECT_DOUBLE_EQ(c.decodable_fraction(), 0.0);
}

TEST(MediumObserver, MixedDecodabilityIsShareWeighted) {
  const MediumObserver obs(phy::noise_floor(20.0));
  ActivitySource corrupt;
  corrupt.kind = SourceKind::kNonWifi;
  corrupt.rx_power = PowerDbm{-50.0};
  corrupt.duty_cycle = 0.2;
  const auto c =
      obs.observe(Duration::minutes(1), {wifi_source(-70.0, 0.2), corrupt});
  EXPECT_NEAR(c.decodable_fraction(), 0.5, 0.01);  // equal duty, half decodable
}

TEST(MediumObserver, OwnTxReducesListenTime) {
  const MediumObserver obs(phy::noise_floor(20.0));
  const auto c = obs.observe(Duration::seconds(10), {wifi_source(-70.0, 0.5)}, 0.4);
  EXPECT_EQ(c.tx_us, 4'000'000);
  // Busy time is measured over the remaining 6 seconds.
  EXPECT_NEAR(static_cast<double>(c.busy_us), 0.5 * 6e6, 1.0);
}

TEST(MediumObserver, SampledConvergesToExpected) {
  const MediumObserver obs(phy::noise_floor(20.0));
  const std::vector<ActivitySource> sources{wifi_source(-70.0, 0.3),
                                            wifi_source(-75.0, 0.1)};
  Rng rng(99);
  ChannelCounters total;
  for (int i = 0; i < 3000; ++i) {
    total += obs.observe_sampled(Duration::millis(5), sources, rng);
  }
  const auto expected = obs.observe(Duration::millis(5), sources);
  EXPECT_NEAR(total.utilization(), expected.utilization(), 0.02);
}

TEST(MediumObserver, DutyClamped) {
  const MediumObserver obs(phy::noise_floor(20.0));
  const auto c = obs.observe(Duration::seconds(1), {wifi_source(-70.0, 5.0)});
  EXPECT_LE(c.busy_us, c.cycle_us);
  EXPECT_NEAR(c.utilization(), 1.0, 1e-9);
}

}  // namespace
}  // namespace wlm::mac
