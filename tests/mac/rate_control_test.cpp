#include "mac/rate_control.hpp"

#include <gtest/gtest.h>

namespace wlm::mac {
namespace {

MinstrelController controller(bool ofdm_only = false, std::uint64_t seed = 3) {
  RateControlConfig config;
  config.ofdm_only = ofdm_only;
  return MinstrelController{config, Rng{seed}};
}

TEST(Minstrel, ConvergesToHighRateOnCleanChannel) {
  auto ctl = controller();
  Rng rng(5);
  (void)simulate_throughput(ctl, /*sinr_db=*/35.0, 1500, 3000, rng);
  EXPECT_EQ(ctl.best_rate(), phy::Modulation::kOfdm54);
  EXPECT_GT(ctl.delivery_estimate(phy::Modulation::kOfdm54), 0.9);
}

TEST(Minstrel, FallsBackOnPoorChannel) {
  auto ctl = controller();
  Rng rng(7);
  (void)simulate_throughput(ctl, /*sinr_db=*/7.0, 1500, 3000, rng);
  // 54 Mb/s needs ~22 dB; at 7 dB the controller must sit on a low rate.
  const auto best = phy::rate_info(ctl.best_rate()).rate.as_mbps();
  EXPECT_LE(best, 12.0);
  EXPECT_LT(ctl.delivery_estimate(phy::Modulation::kOfdm54), 0.3);
}

TEST(Minstrel, ThroughputImprovesWithSinr) {
  Rng rng(9);
  double last = -1.0;
  for (double sinr : {4.0, 10.0, 16.0, 24.0, 34.0}) {
    auto ctl = controller();
    const double tput = simulate_throughput(ctl, sinr, 1500, 4000, rng);
    EXPECT_GT(tput, last) << "sinr " << sinr;
    last = tput;
  }
  // Near the channel's best: 54 Mb/s with airtime overhead lands ~30+ Mb/s.
  EXPECT_GT(last, 25.0);
}

TEST(Minstrel, AdaptsWhenChannelDegrades) {
  auto ctl = controller();
  Rng rng(11);
  (void)simulate_throughput(ctl, 35.0, 1500, 2000, rng);
  EXPECT_EQ(ctl.best_rate(), phy::Modulation::kOfdm54);
  (void)simulate_throughput(ctl, 6.0, 1500, 2000, rng);
  EXPECT_LE(phy::rate_info(ctl.best_rate()).rate.as_mbps(), 12.0);
}

TEST(Minstrel, ProbesRoughlyConfiguredFraction) {
  auto ctl = controller();
  Rng rng(13);
  (void)simulate_throughput(ctl, 20.0, 500, 10'000, rng);
  const double frac =
      static_cast<double>(ctl.probes()) / static_cast<double>(ctl.transmissions());
  EXPECT_NEAR(frac, 0.1, 0.02);
}

TEST(Minstrel, OfdmOnlyNeverPicksDsss) {
  auto ctl = controller(/*ofdm_only=*/true, 17);
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const auto rate = ctl.select();
    EXPECT_TRUE(phy::rate_info(rate).is_ofdm);
    ctl.on_result(rate, rng.chance(0.5));
  }
}

TEST(Minstrel, DeliveryEstimateTracksTruth) {
  // A slow EWMA (long effective window) must settle on the true rate; the
  // default alpha is deliberately fast and too noisy to assert against a
  // single endpoint sample.
  RateControlConfig config;
  config.ewma_alpha = 0.01;
  MinstrelController ctl{config, Rng{23}};
  Rng rng(19);
  for (int i = 0; i < 5000; ++i) {
    ctl.on_result(phy::Modulation::kOfdm24, rng.chance(0.7));
  }
  EXPECT_NEAR(ctl.delivery_estimate(phy::Modulation::kOfdm24), 0.7, 0.08);
}

}  // namespace
}  // namespace wlm::mac
