// Mesh backhaul determinism & conservation: the deployment-mode guarantees
// ISSUE 10 pins. A mesh campaign's outputs are byte-identical for any
// --jobs; a mesh-off config consumes zero extra randomness (so every
// pre-mesh golden still holds); gateway outages strand whole relay
// subtrees into lost_mesh_partition without breaking conservation; and the
// new wire fields round-trip while staying absent from non-mesh reports.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ckpt/container.hpp"
#include "ckpt/state.hpp"
#include "sim/fleet_runner.hpp"
#include "telemetry/export.hpp"
#include "wire/messages.hpp"

namespace wlm {
namespace {

sim::WorldConfig mesh_config(int threads) {
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 5;
  config.fleet.seed = 2015;
  config.seed = 2016;
  config.client_scale = 0.25;
  config.threads = threads;
  config.mesh.mesh_fraction = 0.5;
  config.mesh.drift_sigma_db = 3.0;
  return config;
}

struct Outputs {
  std::string prometheus;
  std::vector<std::uint8_t> store;
  std::string ledger;

  bool operator==(const Outputs&) const = default;
};

Outputs outputs_of(sim::FleetRunner& runner) {
  Outputs out;
  out.prometheus = telemetry::to_prometheus(runner.metrics());
  ckpt::Buf b;
  ckpt::save_store(b, runner.store());
  out.store = b.take();
  out.ledger = runner.loss_ledger().render();
  return out;
}

Outputs run_campaign(const sim::WorldConfig& config) {
  sim::FleetRunner runner(config);
  runner.run_usage_week(7);
  runner.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
  runner.harvest(sim::HarvestMode::kFinal);
  return outputs_of(runner);
}

TEST(MeshDeterminism, OutputsByteIdenticalAcrossJobs) {
  const Outputs reference = run_campaign(mesh_config(1));
  EXPECT_FALSE(reference.prometheus.empty());
  // The run must actually exercise the relay path, or this test pins air.
  EXPECT_NE(reference.prometheus.find("wlm_mesh_relayed_reports_total"),
            std::string::npos);
  for (const int jobs : {2, 8}) {
    EXPECT_EQ(run_campaign(mesh_config(jobs)), reference) << "--jobs " << jobs;
  }
}

TEST(MeshDeterminism, MeshOffKnobsAreInert) {
  // mesh_fraction == 0 must bypass the module entirely: no extra RNG draws,
  // no metrics, no wire fields — byte-identical to a config that never
  // mentioned mesh, whatever the other mesh knobs say. This is the pin that
  // keeps every pre-mesh golden valid.
  sim::WorldConfig plain = mesh_config(2);
  plain.mesh = mesh::MeshConfig{};
  sim::WorldConfig off = mesh_config(2);
  off.mesh.mesh_fraction = 0.0;
  off.mesh.max_hops = 3;            // inert without a fraction
  off.mesh.relay_floor_dbm = -70.0;
  off.mesh.drift_sigma_db = 9.0;
  const Outputs a = run_campaign(plain);
  const Outputs b = run_campaign(off);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.prometheus.find("wlm_mesh"), std::string::npos)
      << "mesh metrics leaked into a mesh-off run";
}

TEST(MeshDeterminism, GatewayOutagesStrandSubtreesIntoLedger) {
  // A WAN outage on a gateway AP must strand its relay subtree: the
  // stranded reports land in lost_mesh_partition (they never reached a
  // tunnel, so no other bucket may claim them) and conservation still
  // closes — bit-identically across worker counts.
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 8;
  config.fleet.seed = 7;
  config.seed = 8;
  config.client_scale = 0.25;
  config.mesh.mesh_fraction = 0.6;
  config.faults.outage_rate_per_week = 3.0;
  config.faults.outage_mean_hours = 40.0;

  std::string baseline;
  for (const int jobs : {1, 2, 8}) {
    config.threads = jobs;
    sim::FleetRunner runner(config);
    runner.run_usage_week(7);
    runner.harvest(sim::HarvestMode::kFinal);
    const auto ledger = runner.loss_ledger();
    EXPECT_TRUE(ledger.conserved()) << ledger.render();
    EXPECT_GT(ledger.lost_mesh_partition, 0u)
        << "this scenario is tuned to strand at least one subtree";
    EXPECT_EQ(runner.metrics().counter_value("wlm_mesh_partition_lost_total"),
              ledger.lost_mesh_partition);
    if (jobs == 1) {
      baseline = ledger.render();
    } else {
      EXPECT_EQ(ledger.render(), baseline) << "--jobs " << jobs;
    }
  }
}

TEST(MeshWire, MeshFieldsRoundTripAndAreOmittedWhenZero) {
  wire::ApReport report;
  report.ap_id = 42;
  report.timestamp_us = 123'456'789;
  report.firmware = 3;
  report.usage.push_back(
      wire::ClientUsage{MacAddress::from_u64(0xAABBCCDDEE01ULL), 7, 1000, 2000});

  const auto plain = wire::encode_report(report);
  report.mesh_hops = 3;
  report.mesh_relay_us = 98'765;
  const auto meshed = wire::encode_report(report);
  // Non-mesh reports must encode byte-identically to firmware that
  // predates the fields; meshed ones append them.
  EXPECT_GT(meshed.size(), plain.size());

  const auto decoded = wire::decode_report(meshed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, report);

  report.mesh_hops = 0;
  report.mesh_relay_us = 0;
  EXPECT_EQ(wire::encode_report(report), plain);
  const auto decoded_plain = wire::decode_report(plain);
  ASSERT_TRUE(decoded_plain.has_value());
  EXPECT_EQ(decoded_plain->mesh_hops, 0u);
  EXPECT_EQ(decoded_plain->mesh_relay_us, 0u);
}

TEST(MeshCheckpoint, FormatVersionIsSix) {
  // The v6 bump is deliberate: mesh checkpoints must not half-restore in an
  // older binary, and older checkpoints fail kBadVersion here.
  EXPECT_EQ(ckpt::kFormatVersion, 6u);
}

}  // namespace
}  // namespace wlm
