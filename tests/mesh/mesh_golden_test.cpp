// Mesh scenario pack, golden renders.
//
// Pins the two hop-count artifacts — delivery ratio and relay delay vs hop
// count — at the same reference scale the scorecard and mobility goldens
// use (12 networks, seed 2015). Any change to the routing layer, the relay
// cost model, the wire/tsdb mesh fields, or the renderers that shifts a
// byte fails here and forces a deliberate update:
//
//   WLM_REGEN_GOLDEN=1 ctest -R MeshGolden   # rewrite the goldens
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/experiments.hpp"

#ifndef WLM_GOLDEN_DIR
#error "WLM_GOLDEN_DIR must point at tests/golden (set by tests/CMakeLists.txt)"
#endif

namespace wlm {
namespace {

analysis::ScenarioScale golden_scale() {
  analysis::ScenarioScale scale;
  scale.networks = 12;
  scale.seed = 2015;
  scale.threads = 2;  // goldens must not depend on this; determinism pins it
  // Deep relay trees: a high mesh fraction leaves few gateways per site, so
  // the hop-count tables cover more than the trivial 0/1 rows.
  scale.mesh.mesh_fraction = 0.75;
  scale.mesh.drift_sigma_db = 3.0;
  // A strict relay floor prunes the weak long direct edges, forcing the
  // far APs through intermediate relays — the tables then cover hops >= 2.
  scale.mesh.relay_floor_dbm = -70.0;
  return scale;
}

std::string golden_path(const std::string& name) {
  return std::string(WLM_GOLDEN_DIR) + "/" + name + ".golden";
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char chunk[4096];
  std::size_t n = 0;
  out.clear();
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) out.append(chunk, n);
  std::fclose(f);
  return true;
}

void check_golden(const std::string& name, const std::string& rendered) {
  const std::string path = golden_path(name);
  if (std::getenv("WLM_REGEN_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << "cannot write " << path;
    std::fwrite(rendered.data(), 1, rendered.size(), f);
    std::fclose(f);
    GTEST_SKIP() << "regenerated " << path;
  }
  std::string expected;
  ASSERT_TRUE(read_file(path, expected))
      << path << " missing — run with WLM_REGEN_GOLDEN=1 to create it";
  if (rendered != expected) {
    std::size_t line = 1, pos = 0;
    const std::size_t limit = std::min(rendered.size(), expected.size());
    while (pos < limit && rendered[pos] == expected[pos]) {
      if (rendered[pos] == '\n') ++line;
      ++pos;
    }
    FAIL() << name << " drifted from its golden at line " << line
           << " (byte " << pos << "). If the change is intentional, rerun with "
           << "WLM_REGEN_GOLDEN=1 and commit the new golden.";
  }
}

// One campaign feeds both renders; the fixture runs it once.
class MeshGolden : public ::testing::Test {
 protected:
  static const analysis::MeshRun& run() {
    static const analysis::MeshRun r = analysis::run_mesh_study(golden_scale());
    return r;
  }
};

TEST_F(MeshGolden, DeliveryVsHopCount) {
  check_golden("meshdelivery", analysis::render_mesh_delivery(run()));
}

TEST_F(MeshGolden, DelayVsHopCount) {
  check_golden("meshdelay", analysis::render_mesh_delay(run()));
}

}  // namespace
}  // namespace wlm
