// wlm::mesh routing layer: the pure-function contract of compute_routes
// (hop-minimal multi-source BFS with strongest-rx tie-breaking) and the
// deterministic relay cost model behind per-hop airtime accounting.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "mac/mesh.hpp"

namespace wlm::mesh {
namespace {

MeshConfig config_on() {
  MeshConfig c;
  c.mesh_fraction = 0.5;
  return c;
}

/// Bidirectional edge helper — real link budgets are symmetric here.
void link(std::vector<MeshEdge>& edges, std::uint32_t a, std::uint32_t b,
          double rx_dbm) {
  edges.push_back({a, b, rx_dbm});
  edges.push_back({b, a, rx_dbm});
}

TEST(MeshRouting, GatewaysRouteToThemselvesWithZeroHops) {
  const std::vector<bool> is_mesh{false, false, false};
  std::vector<MeshEdge> edges;
  link(edges, 0, 1, -50.0);
  link(edges, 1, 2, -50.0);
  const auto routes = compute_routes(3, is_mesh, edges, config_on());
  ASSERT_EQ(routes.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(routes[i].is_gateway);
    EXPECT_TRUE(routes[i].routable);
    EXPECT_EQ(routes[i].next_hop, i);
    EXPECT_EQ(routes[i].gateway, i);
    EXPECT_EQ(routes[i].hop_count, 0u);
  }
}

TEST(MeshRouting, ChainRoutesWithIncreasingHopCounts) {
  // 0(gw) - 1 - 2 - 3: a pure relay chain.
  const std::vector<bool> is_mesh{false, true, true, true};
  std::vector<MeshEdge> edges;
  link(edges, 0, 1, -60.0);
  link(edges, 1, 2, -62.0);
  link(edges, 2, 3, -64.0);
  const auto routes = compute_routes(4, is_mesh, edges, config_on());
  EXPECT_EQ(routes[1].hop_count, 1u);
  EXPECT_EQ(routes[1].next_hop, 0u);
  EXPECT_EQ(routes[2].hop_count, 2u);
  EXPECT_EQ(routes[2].next_hop, 1u);
  EXPECT_EQ(routes[3].hop_count, 3u);
  EXPECT_EQ(routes[3].next_hop, 2u);
  for (std::uint32_t i = 1; i < 4; ++i) {
    EXPECT_FALSE(routes[i].is_gateway);
    EXPECT_TRUE(routes[i].routable);
    EXPECT_EQ(routes[i].gateway, 0u);
  }
}

TEST(MeshRouting, HopMinimalPathWinsOverStrongerLongPath) {
  // 2 can reach gateway 0 directly (-80) or via 1 with two strong hops;
  // BFS is hop-minimal, so the weak direct edge wins.
  const std::vector<bool> is_mesh{false, true, true};
  std::vector<MeshEdge> edges;
  link(edges, 0, 2, -80.0);
  link(edges, 0, 1, -50.0);
  link(edges, 1, 2, -50.0);
  const auto routes = compute_routes(3, is_mesh, edges, config_on());
  EXPECT_EQ(routes[2].hop_count, 1u);
  EXPECT_EQ(routes[2].next_hop, 0u);
}

TEST(MeshRouting, EqualHopTieBreaksByStrongestRxThenLowestIndex) {
  // 3 reaches gateways 0 and 1 in one hop each; the stronger edge (to 1)
  // must win the tie.
  {
    const std::vector<bool> is_mesh{false, false, false, true};
    std::vector<MeshEdge> edges;
    link(edges, 0, 3, -70.0);
    link(edges, 1, 3, -55.0);
    const auto routes = compute_routes(4, is_mesh, edges, config_on());
    EXPECT_EQ(routes[3].next_hop, 1u);
    EXPECT_EQ(routes[3].gateway, 1u);
  }
  {
    // Exactly equal rx: lowest next-hop index wins, deterministically.
    const std::vector<bool> is_mesh{false, false, false, true};
    std::vector<MeshEdge> edges;
    link(edges, 0, 3, -60.0);
    link(edges, 1, 3, -60.0);
    const auto routes = compute_routes(4, is_mesh, edges, config_on());
    EXPECT_EQ(routes[3].next_hop, 0u);
  }
}

TEST(MeshRouting, EdgesBelowRelayFloorAreNotUsable) {
  MeshConfig config = config_on();
  config.relay_floor_dbm = -88.0;
  const std::vector<bool> is_mesh{false, true};
  std::vector<MeshEdge> edges;
  link(edges, 0, 1, -92.0);  // below the floor: not a usable relay edge
  const auto routes = compute_routes(2, is_mesh, edges, config);
  EXPECT_FALSE(routes[1].routable);
  EXPECT_EQ(routes[1].next_hop, 1u);  // unroutable APs self-point
  EXPECT_EQ(routes[1].hop_count, 0u);
}

TEST(MeshRouting, BeyondMaxHopsIsPartitioned) {
  MeshConfig config = config_on();
  config.max_hops = 2;
  const std::vector<bool> is_mesh{false, true, true, true};
  std::vector<MeshEdge> edges;
  link(edges, 0, 1, -60.0);
  link(edges, 1, 2, -60.0);
  link(edges, 2, 3, -60.0);
  const auto routes = compute_routes(4, is_mesh, edges, config);
  EXPECT_TRUE(routes[1].routable);
  EXPECT_TRUE(routes[2].routable);
  EXPECT_FALSE(routes[3].routable) << "3 hops out with max_hops=2";
}

TEST(MeshRouting, DisconnectedMeshApIsPartitioned) {
  const std::vector<bool> is_mesh{false, true, true};
  std::vector<MeshEdge> edges;
  link(edges, 0, 1, -60.0);  // 2 has no edges at all
  const auto routes = compute_routes(3, is_mesh, edges, config_on());
  EXPECT_TRUE(routes[1].routable);
  EXPECT_FALSE(routes[2].routable);
}

TEST(MeshRouting, PureFunctionIsDeterministic) {
  const std::vector<bool> is_mesh{false, true, true, true, false, true};
  std::vector<MeshEdge> edges;
  link(edges, 0, 1, -55.0);
  link(edges, 1, 2, -65.0);
  link(edges, 2, 3, -58.0);
  link(edges, 4, 5, -62.0);
  link(edges, 1, 5, -80.0);
  const auto a = compute_routes(6, is_mesh, edges, config_on());
  const auto b = compute_routes(6, is_mesh, edges, config_on());
  EXPECT_EQ(a, b);
}

TEST(MeshCostModel, WeakerLinksAreSlowerAndRetryMore) {
  EXPECT_GE(relay_rate_mbps(-50.0), relay_rate_mbps(-70.0));
  EXPECT_GE(relay_rate_mbps(-70.0), relay_rate_mbps(-85.0));
  EXPECT_LE(relay_attempts(-50.0), relay_attempts(-85.0));
  EXPECT_GE(relay_attempts(-50.0), 1);
  // Airtime is monotone in frame size and link weakness.
  EXPECT_LT(hop_airtime_us(200, -50.0), hop_airtime_us(2000, -50.0));
  EXPECT_LE(hop_airtime_us(1000, -50.0), hop_airtime_us(1000, -85.0));
  EXPECT_GT(hop_airtime_us(0, -50.0), 0u);  // fixed MAC overhead never free
}

TEST(MeshConfigClamp, DegradesEveryKnobToLegalRanges) {
  MeshConfig c;
  c.mesh_fraction = 1.7;
  c.max_hops = 0;
  c.relay_floor_dbm = -300.0;
  c.drift_sigma_db = -4.0;
  const MeshConfig k = c.clamped();
  EXPECT_LE(k.mesh_fraction, 0.95);
  EXPECT_GE(k.max_hops, 1);
  EXPECT_LE(k.max_hops, 16);
  EXPECT_GE(k.relay_floor_dbm, -100.0);
  EXPECT_LE(k.relay_floor_dbm, -40.0);
  EXPECT_GE(k.drift_sigma_db, 0.0);
  const MeshConfig nan_case = [] {
    MeshConfig m;
    m.mesh_fraction = std::numeric_limits<double>::quiet_NaN();
    m.drift_sigma_db = std::numeric_limits<double>::quiet_NaN();
    return m.clamped();
  }();
  EXPECT_GE(nan_case.mesh_fraction, 0.0);
  EXPECT_LE(nan_case.mesh_fraction, 0.95);
  EXPECT_GE(nan_case.drift_sigma_db, 0.0);
  EXPECT_FALSE(MeshConfig{}.enabled());
}

}  // namespace
}  // namespace wlm::mesh
