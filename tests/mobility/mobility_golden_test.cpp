// Mobility scenario pack, part 2: golden renders.
//
// Pins the three roaming artifacts — roam-rate CDF, per-client AP-visit
// distribution, sticky-client summary — at the same reference scale the
// scorecard goldens use (12 networks, seed 2015). Any change to the walk,
// the handoff policy, the aggregation path, or the renderers that shifts a
// byte fails here and forces a deliberate update:
//
//   WLM_REGEN_GOLDEN=1 ctest -R MobilityGolden   # rewrite the goldens
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/experiments.hpp"

#ifndef WLM_GOLDEN_DIR
#error "WLM_GOLDEN_DIR must point at tests/golden (set by tests/CMakeLists.txt)"
#endif

namespace wlm {
namespace {

analysis::ScenarioScale golden_scale() {
  analysis::ScenarioScale scale;
  scale.networks = 12;
  scale.seed = 2015;
  scale.threads = 2;  // goldens must not depend on this; determinism pins it
  return scale;
}

std::string golden_path(const std::string& name) {
  return std::string(WLM_GOLDEN_DIR) + "/" + name + ".golden";
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char chunk[4096];
  std::size_t n = 0;
  out.clear();
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) out.append(chunk, n);
  std::fclose(f);
  return true;
}

void check_golden(const std::string& name, const std::string& rendered) {
  const std::string path = golden_path(name);
  if (std::getenv("WLM_REGEN_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << "cannot write " << path;
    std::fwrite(rendered.data(), 1, rendered.size(), f);
    std::fclose(f);
    GTEST_SKIP() << "regenerated " << path;
  }
  std::string expected;
  ASSERT_TRUE(read_file(path, expected))
      << path << " missing — run with WLM_REGEN_GOLDEN=1 to create it";
  if (rendered != expected) {
    std::size_t line = 1, pos = 0;
    const std::size_t limit = std::min(rendered.size(), expected.size());
    while (pos < limit && rendered[pos] == expected[pos]) {
      if (rendered[pos] == '\n') ++line;
      ++pos;
    }
    FAIL() << name << " drifted from its golden at line " << line
           << " (byte " << pos << "). If the change is intentional, rerun with "
           << "WLM_REGEN_GOLDEN=1 and commit the new golden.";
  }
}

// One campaign feeds all three renders; the fixture runs it once.
class MobilityGolden : public ::testing::Test {
 protected:
  static const analysis::MobilityRun& run() {
    static const analysis::MobilityRun r =
        analysis::run_mobility_study(golden_scale());
    return r;
  }
};

TEST_F(MobilityGolden, RoamRateCdf) {
  check_golden("mobility_roamcdf", analysis::render_roam_cdf(run()));
}

TEST_F(MobilityGolden, ApVisitDistribution) {
  check_golden("mobility_apvisits", analysis::render_ap_visits(run()));
}

TEST_F(MobilityGolden, StickyClients) {
  check_golden("mobility_sticky", analysis::render_sticky_clients(run()));
}

}  // namespace
}  // namespace wlm
