// Mobility scenario pack, part 1: the walk itself.
//
// Three layers of guarantees, cheapest first:
//   1. Unit: MobilityConfig::clamped() degrades hostile knobs to legal
//      values; occupancy() stays inside [kMinOccupancy, 1]; advance() is a
//      pure function of (state, rng) and never leaves the site rectangle.
//   2. Fleet determinism: a mobility-ON campaign is byte-identical across
//      --jobs 1/2/8 (prometheus text, saved store bytes, loss ledger).
//   3. The off-switch: mobility-off campaigns must not consume a single
//      draw from the walk — wild knob values behind enabled=false produce
//      byte-identical output to an all-default run, and the checked-in
//      golden scorecards (tests/golden/*.golden, exercised by golden_tests)
//      pin mobility-off output against pre-mobility history.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "ckpt/state.hpp"
#include "mobility/mobility.hpp"
#include "sim/fleet_runner.hpp"
#include "telemetry/export.hpp"

namespace wlm {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(MobilityConfig, ClampedDegradesHostileKnobs) {
  mobility::MobilityConfig c;
  c.speed_mps = -3.0;
  c.pause_mean_s = -1.0;
  c.steps_per_week = 0;
  c.handoff_settle_steps = -4;
  c.handoff_hysteresis_db = -2.0;
  c.band_steer_bonus_db = 100.0;
  c.roam_probability = 7.0;
  const mobility::MobilityConfig k = c.clamped();
  EXPECT_DOUBLE_EQ(k.speed_mps, 1.1);
  EXPECT_DOUBLE_EQ(k.pause_mean_s, 600.0);
  EXPECT_EQ(k.steps_per_week, 168);
  EXPECT_EQ(k.handoff_settle_steps, 1);
  EXPECT_DOUBLE_EQ(k.handoff_hysteresis_db, 6.0);
  EXPECT_DOUBLE_EQ(k.band_steer_bonus_db, 20.0);
  EXPECT_DOUBLE_EQ(k.roam_probability, 1.0);
}

TEST(MobilityConfig, ClampedDegradesNaNsToDefaults) {
  mobility::MobilityConfig c;
  c.speed_mps = kNaN;
  c.pause_mean_s = kNaN;
  c.handoff_hysteresis_db = kNaN;
  c.band_steer_bonus_db = kNaN;
  c.roam_probability = kNaN;
  const mobility::MobilityConfig k = c.clamped();
  EXPECT_DOUBLE_EQ(k.speed_mps, 1.1);
  EXPECT_DOUBLE_EQ(k.pause_mean_s, 600.0);
  EXPECT_DOUBLE_EQ(k.handoff_hysteresis_db, 6.0);
  EXPECT_DOUBLE_EQ(k.band_steer_bonus_db, 0.0);
  EXPECT_DOUBLE_EQ(k.roam_probability, 0.6);
}

TEST(MobilityConfig, ClampedCapsOversizedKnobs) {
  mobility::MobilityConfig c;
  c.speed_mps = 1e9;
  c.pause_mean_s = 1e12;
  c.steps_per_week = 10'000'000;
  c.handoff_settle_steps = 9999;
  c.handoff_hysteresis_db = 500.0;
  c.band_steer_bonus_db = -500.0;
  c.roam_probability = -0.5;
  const mobility::MobilityConfig k = c.clamped();
  EXPECT_DOUBLE_EQ(k.speed_mps, 10.0);
  EXPECT_DOUBLE_EQ(k.pause_mean_s, 1e6);
  EXPECT_EQ(k.steps_per_week, 100'000);
  EXPECT_EQ(k.handoff_settle_steps, 100);
  EXPECT_DOUBLE_EQ(k.handoff_hysteresis_db, 50.0);
  EXPECT_DOUBLE_EQ(k.band_steer_bonus_db, -20.0);
  EXPECT_DOUBLE_EQ(k.roam_probability, 0.0);
}

TEST(MobilityConfig, ClampedIsIdentityOnLegalKnobs) {
  mobility::MobilityConfig c;
  c.enabled = true;
  c.speed_mps = 2.5;
  c.pause_mean_s = 120.0;
  c.steps_per_week = 336;
  c.handoff_settle_steps = 3;
  c.handoff_hysteresis_db = 8.0;
  c.band_steer_bonus_db = 4.0;
  c.roam_probability = 0.9;
  const mobility::MobilityConfig k = c.clamped();
  EXPECT_TRUE(k.enabled);
  EXPECT_DOUBLE_EQ(k.speed_mps, 2.5);
  EXPECT_DOUBLE_EQ(k.pause_mean_s, 120.0);
  EXPECT_EQ(k.steps_per_week, 336);
  EXPECT_EQ(k.handoff_settle_steps, 3);
  EXPECT_DOUBLE_EQ(k.handoff_hysteresis_db, 8.0);
  EXPECT_DOUBLE_EQ(k.band_steer_bonus_db, 4.0);
  EXPECT_DOUBLE_EQ(k.roam_probability, 0.9);
}

TEST(MobilityOccupancy, StaysWithinBoundsForEveryIndustryAndHour) {
  for (int i = 0; i < deploy::kIndustryCount; ++i) {
    const auto industry = static_cast<deploy::Industry>(i);
    for (double hour = 0.0; hour < 24.0; hour += 0.25) {
      const double p = mobility::occupancy(hour, industry);
      EXPECT_GE(p, mobility::kMinOccupancy)
          << "industry " << i << " hour " << hour;
      EXPECT_LE(p, 1.0) << "industry " << i << " hour " << hour;
    }
  }
}

TEST(MobilityOccupancy, OfficesBusierAtNoonThanAtNight) {
  const double noon =
      mobility::occupancy(13.0, deploy::Industry::kFinanceInsurance);
  const double night =
      mobility::occupancy(3.0, deploy::Industry::kFinanceInsurance);
  EXPECT_GT(noon, night);
}

TEST(MobilityAdvance, DeterministicGivenEqualRngState) {
  const mobility::MobilityConfig cfg = mobility::MobilityConfig{}.clamped();
  Rng a = Rng::substream(7, 42);
  Rng b = Rng::substream(7, 42);
  mobility::MotionState ma;
  ma.pos = ma.target = phy::Position{10.0, 10.0};
  mobility::MotionState mb = ma;
  for (int step = 0; step < 2000; ++step) {
    mobility::advance(ma, 3600.0 / 4.0, cfg, 60.0, 40.0, a);
    mobility::advance(mb, 3600.0 / 4.0, cfg, 60.0, 40.0, b);
    ASSERT_DOUBLE_EQ(ma.pos.x, mb.pos.x) << "step " << step;
    ASSERT_DOUBLE_EQ(ma.pos.y, mb.pos.y) << "step " << step;
    ASSERT_DOUBLE_EQ(ma.pause_s, mb.pause_s) << "step " << step;
  }
}

TEST(MobilityAdvance, NeverLeavesTheSiteRectangle) {
  const mobility::MobilityConfig cfg = mobility::MobilityConfig{}.clamped();
  Rng rng = Rng::substream(11, 3);
  mobility::MotionState m;
  m.pos = m.target = phy::Position{0.0, 0.0};  // start on the corner
  for (int step = 0; step < 5000; ++step) {
    mobility::advance(m, 900.0, cfg, 55.0, 35.0, rng);
    ASSERT_GE(m.pos.x, 0.0) << "step " << step;
    ASSERT_LE(m.pos.x, 55.0) << "step " << step;
    ASSERT_GE(m.pos.y, 0.0) << "step " << step;
    ASSERT_LE(m.pos.y, 35.0) << "step " << step;
  }
}

TEST(MobilityAdvance, PauseBurnsDownBeforeAnyMotion) {
  const mobility::MobilityConfig cfg = mobility::MobilityConfig{}.clamped();
  Rng rng = Rng::substream(1, 1);
  mobility::MotionState m;
  m.pos = phy::Position{5.0, 5.0};
  m.target = phy::Position{50.0, 5.0};
  m.pause_s = 100.0;
  mobility::advance(m, 40.0, cfg, 60.0, 40.0, rng);
  EXPECT_DOUBLE_EQ(m.pos.x, 5.0);  // still dwelling
  EXPECT_DOUBLE_EQ(m.pause_s, 60.0);
  mobility::advance(m, 80.0, cfg, 60.0, 40.0, rng);
  EXPECT_DOUBLE_EQ(m.pause_s, 0.0);  // pause clamps at zero, motion next step
  EXPECT_DOUBLE_EQ(m.pos.x, 5.0);
  mobility::advance(m, 10.0, cfg, 60.0, 40.0, rng);
  EXPECT_GT(m.pos.x, 5.0);  // now walking toward the waypoint
  EXPECT_DOUBLE_EQ(m.pos.y, 5.0);
}

// ---------------------------------------------------------------------------
// Fleet-level determinism.

sim::WorldConfig mobile_config(int threads) {
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 6;
  config.fleet.seed = 2015;
  config.seed = 2016;
  config.client_scale = 0.25;
  config.threads = threads;
  config.mobility.enabled = true;
  config.mobility.steps_per_week = 96;  // tier-1 budget; still roams plenty
  return config;
}

/// Everything a campaign produces, in byte-comparable form (the same shape
/// the ckpt kill-and-resume harness pins).
struct Outputs {
  std::string prometheus;
  std::vector<std::uint8_t> store;
  std::string ledger;

  bool operator==(const Outputs&) const = default;
};

Outputs run_campaign(const sim::WorldConfig& config) {
  sim::FleetRunner runner(config);
  runner.run_usage_week(7);
  runner.harvest(sim::HarvestMode::kFinal);
  Outputs out;
  out.prometheus = telemetry::to_prometheus(runner.metrics());
  ckpt::Buf b;
  ckpt::save_store(b, runner.store());
  out.store = b.take();
  out.ledger = runner.loss_ledger().render();
  return out;
}

TEST(MobilityDeterminism, WalkByteIdenticalAcrossJobs) {
  const Outputs reference = run_campaign(mobile_config(1));
  for (const int jobs : {2, 8}) {
    const Outputs other = run_campaign(mobile_config(jobs));
    EXPECT_EQ(other, reference) << "mobility-on output differs at --jobs " << jobs;
  }
}

TEST(MobilityDeterminism, RoamingActuallyHappens) {
  // Determinism alone would pass on a walk that never roams; pin that the
  // campaign produces real churn so the other tests are testing something.
  sim::FleetRunner runner(mobile_config(2));
  runner.run_usage_week(7);
  runner.harvest(sim::HarvestMode::kFinal);
  const auto& metrics = runner.metrics();
  EXPECT_GT(metrics.counter_value("wlm_mobility_clients_walking_total"), 0u);
  EXPECT_GT(metrics.counter_value("wlm_mobility_steps_active_total"), 0u);
  EXPECT_GT(metrics.counter_value("wlm_mobility_roams_total"), 0u);
  EXPECT_GE(metrics.counter_value("wlm_mobility_handoffs_armed_total"),
            metrics.counter_value("wlm_mobility_roams_total"));
}

TEST(MobilityDeterminism, DisabledWalkPublishesNoCounters) {
  sim::WorldConfig config = mobile_config(2);
  config.mobility.enabled = false;
  sim::FleetRunner runner(config);
  runner.run_usage_week(7);
  runner.harvest(sim::HarvestMode::kFinal);
  const auto& metrics = runner.metrics();
  EXPECT_EQ(metrics.counter_value("wlm_mobility_clients_walking_total"), 0u);
  EXPECT_EQ(metrics.counter_value("wlm_mobility_roams_total"), 0u);
  EXPECT_EQ(telemetry::to_prometheus(metrics).find("wlm_mobility_"),
            std::string::npos)
      << "mobility-off run leaked wlm_mobility_* series into /metrics";
}

TEST(MobilityDeterminism, DisabledKnobsDoNotLeakIntoOutput) {
  // enabled=false must bypass the walk entirely: hostile knob values behind
  // the off-switch may not shift a single byte. (roam_probability stays at
  // its default — that knob is live even with mobility off, by design: it
  // replaces the old hard-coded 0.6 in deploy::PopulationModel.)
  sim::WorldConfig plain = mobile_config(2);
  plain.mobility = mobility::MobilityConfig{};

  sim::WorldConfig wild = mobile_config(2);
  wild.mobility = mobility::MobilityConfig{};
  wild.mobility.enabled = false;
  wild.mobility.speed_mps = 9.5;
  wild.mobility.pause_mean_s = 1.0;
  wild.mobility.steps_per_week = 7;
  wild.mobility.handoff_settle_steps = 50;
  wild.mobility.handoff_hysteresis_db = 0.0;
  wild.mobility.band_steer_bonus_db = 15.0;

  EXPECT_EQ(run_campaign(plain), run_campaign(wild));
}

}  // namespace
}  // namespace wlm
