#include "phy/channel.hpp"

#include <gtest/gtest.h>

namespace wlm::phy {
namespace {

TEST(ChannelPlan, UsPlanCounts) {
  const auto& plan = ChannelPlan::us();
  EXPECT_EQ(plan.band_channels(Band::k2_4GHz).size(), 11u);  // channels 1-11
  EXPECT_EQ(plan.band_channels(Band::k5GHz).size(), 24u);
  EXPECT_EQ(plan.non_overlapping_2_4().size(), 3u);
}

TEST(ChannelPlan, FindByNumber) {
  const auto& plan = ChannelPlan::us();
  ASSERT_TRUE(plan.find(Band::k2_4GHz, 6).has_value());
  EXPECT_DOUBLE_EQ(plan.find(Band::k2_4GHz, 6)->center.mhz(), 2437.0);
  ASSERT_TRUE(plan.find(Band::k5GHz, 36).has_value());
  EXPECT_DOUBLE_EQ(plan.find(Band::k5GHz, 36)->center.mhz(), 5180.0);
  EXPECT_FALSE(plan.find(Band::k2_4GHz, 14).has_value());  // not in US plan
  EXPECT_FALSE(plan.find(Band::k5GHz, 144).has_value());
}

TEST(ChannelPlan, DfsFlagsFollowUniiBands) {
  const auto& plan = ChannelPlan::us();
  EXPECT_FALSE(plan.find(Band::k5GHz, 36)->requires_dfs);   // UNII-1
  EXPECT_TRUE(plan.find(Band::k5GHz, 52)->requires_dfs);    // UNII-2
  EXPECT_TRUE(plan.find(Band::k5GHz, 100)->requires_dfs);   // UNII-2e
  EXPECT_FALSE(plan.find(Band::k5GHz, 149)->requires_dfs);  // UNII-3
}

TEST(ChannelPlan, UniiClassification) {
  const auto& plan = ChannelPlan::us();
  EXPECT_EQ(plan.find(Band::k5GHz, 48)->unii, Unii::kUnii1);
  EXPECT_EQ(plan.find(Band::k5GHz, 64)->unii, Unii::kUnii2);
  EXPECT_EQ(plan.find(Band::k5GHz, 140)->unii, Unii::kUnii2Ext);
  EXPECT_EQ(plan.find(Band::k5GHz, 165)->unii, Unii::kUnii3);
  EXPECT_EQ(plan.find(Band::k2_4GHz, 1)->unii, Unii::kNone);
}

TEST(ChannelCenter, KnownFrequencies) {
  EXPECT_DOUBLE_EQ(channel_center(Band::k2_4GHz, 1).mhz(), 2412.0);
  EXPECT_DOUBLE_EQ(channel_center(Band::k2_4GHz, 11).mhz(), 2462.0);
  EXPECT_DOUBLE_EQ(channel_center(Band::k2_4GHz, 14).mhz(), 2484.0);
  EXPECT_DOUBLE_EQ(channel_center(Band::k5GHz, 149).mhz(), 5745.0);
}

TEST(ChannelOverlap, CoChannelIsFull) {
  const auto& plan = ChannelPlan::us();
  const auto ch6 = *plan.find(Band::k2_4GHz, 6);
  EXPECT_DOUBLE_EQ(channel_overlap(ch6, ch6), 1.0);
}

TEST(ChannelOverlap, AdjacentPartial) {
  const auto& plan = ChannelPlan::us();
  const auto ch1 = *plan.find(Band::k2_4GHz, 1);
  const auto ch2 = *plan.find(Band::k2_4GHz, 2);
  const auto ch5 = *plan.find(Band::k2_4GHz, 5);
  const auto ch6 = *plan.find(Band::k2_4GHz, 6);
  EXPECT_DOUBLE_EQ(channel_overlap(ch1, ch2), 0.75);  // 5 MHz apart, 20 MHz wide
  EXPECT_DOUBLE_EQ(channel_overlap(ch1, ch5), 0.0);   // 20 MHz apart: disjoint
  EXPECT_DOUBLE_EQ(channel_overlap(ch1, ch6), 0.0);   // the classic trio
  EXPECT_DOUBLE_EQ(channel_overlap(ch2, ch5), 0.25);  // 15 MHz apart
}

TEST(ChannelOverlap, FiveGhzChannelsDisjoint) {
  const auto& plan = ChannelPlan::us();
  const auto ch36 = *plan.find(Band::k5GHz, 36);
  const auto ch40 = *plan.find(Band::k5GHz, 40);
  EXPECT_DOUBLE_EQ(channel_overlap(ch36, ch40), 0.0);
}

TEST(ChannelOverlap, CrossBandIsZero) {
  const auto& plan = ChannelPlan::us();
  EXPECT_DOUBLE_EQ(
      channel_overlap(*plan.find(Band::k2_4GHz, 1), *plan.find(Band::k5GHz, 36)), 0.0);
}

TEST(AdjacentRejection, MonotonicInSeparation) {
  const auto& plan = ChannelPlan::us();
  const auto ch1 = *plan.find(Band::k2_4GHz, 1);
  double last = -1.0;
  for (int n : {1, 2, 3, 4, 5}) {
    const auto other = *plan.find(Band::k2_4GHz, n);
    const double rej = adjacent_channel_rejection_db(ch1, other);
    EXPECT_GE(rej, last) << "channel " << n;
    last = rej;
  }
  EXPECT_DOUBLE_EQ(adjacent_channel_rejection_db(ch1, ch1), 0.0);
  EXPECT_DOUBLE_EQ(adjacent_channel_rejection_db(ch1, *plan.find(Band::k2_4GHz, 5)), 200.0);
}

TEST(ChannelToString, Readable) {
  const auto& plan = ChannelPlan::us();
  EXPECT_EQ(plan.find(Band::k2_4GHz, 6)->to_string(), "ch6 (2.4 GHz, 2437 MHz)");
}

}  // namespace
}  // namespace wlm::phy
