#include "phy/modulation.hpp"

#include <gtest/gtest.h>

namespace wlm::phy {
namespace {

TEST(RateTable, AllRatesPresent) {
  EXPECT_EQ(all_rates().size(), 12u);
  EXPECT_EQ(rate_info(Modulation::kDsss1).rate.kbps(), 1000);
  EXPECT_EQ(rate_info(Modulation::kCck5_5).rate.kbps(), 5500);
  EXPECT_EQ(rate_info(Modulation::kOfdm54).rate.kbps(), 54000);
}

TEST(Airtime, LinkProbeAt1Mbps) {
  // 60 bytes at 1 Mb/s DSSS: 192 us PLCP + 480 us payload.
  EXPECT_EQ(airtime_us(Modulation::kDsss1, 60, true), 672);
}

TEST(Airtime, LinkProbeAt6Mbps) {
  // 60 bytes OFDM-6: 20 us PLCP + ceil((16+6+480)/24) = 21 symbols * 4 us.
  EXPECT_EQ(airtime_us(Modulation::kOfdm6, 60), 104);
}

TEST(Airtime, LegacyBeaconIs2592Us) {
  // Paper SS4.1: 802.11b beacons occupy 2.592 ms.
  EXPECT_EQ(airtime_us(Modulation::kDsss1, 300, true), 2592);
}

TEST(Airtime, ShortPreambleHalves) {
  const auto long_pre = airtime_us(Modulation::kDsss2, 100, true);
  const auto short_pre = airtime_us(Modulation::kDsss2, 100, false);
  EXPECT_EQ(long_pre - short_pre, 96);  // 192 - 96 us of PLCP
}

TEST(Airtime, OfdmSymbolPadding) {
  // 1 payload byte still costs a whole symbol.
  EXPECT_EQ(airtime_us(Modulation::kOfdm6, 1), 20 + 2 * 4);
  // Higher rates pack more bits per symbol -> shorter frames.
  EXPECT_LT(airtime_us(Modulation::kOfdm54, 1500), airtime_us(Modulation::kOfdm6, 1500));
}

class PerMonotonicity : public ::testing::TestWithParam<Modulation> {};

TEST_P(PerMonotonicity, PerDecreasesWithSinr) {
  const Modulation m = GetParam();
  double last = 1.1;
  for (double sinr = -5.0; sinr <= 40.0; sinr += 1.0) {
    const double per = packet_error_rate(m, sinr, 1500);
    EXPECT_LE(per, last + 1e-9) << "sinr " << sinr;
    EXPECT_GE(per, 0.0);
    EXPECT_LE(per, 1.0);
    last = per;
  }
  // Asymptotes: hopeless at very low SINR, clean at very high.
  EXPECT_GT(packet_error_rate(m, -10.0, 1500), 0.95);
  EXPECT_LT(packet_error_rate(m, 40.0, 1500), 0.01);
}

INSTANTIATE_TEST_SUITE_P(AllModulations, PerMonotonicity,
                         ::testing::ValuesIn([] {
                           std::vector<Modulation> ms;
                           for (const auto& r : all_rates()) ms.push_back(r.modulation);
                           return ms;
                         }()));

TEST(Per, LargerFramesFailMore) {
  const double sinr = 8.0;
  EXPECT_LT(packet_error_rate(Modulation::kCck11, sinr, 60),
            packet_error_rate(Modulation::kCck11, sinr, 1500));
}

TEST(Per, RobustRatesWinAtLowSinr) {
  const double sinr = 6.0;
  EXPECT_LT(packet_error_rate(Modulation::kDsss1, sinr, 500),
            packet_error_rate(Modulation::kOfdm54, sinr, 500));
}

TEST(PlcpDecode, SaturatesHighAndFailsLow) {
  EXPECT_GT(plcp_decode_probability(20.0), 0.99);
  EXPECT_LT(plcp_decode_probability(-8.0), 0.5);
  // Monotone non-decreasing.
  double last = 0.0;
  for (double sinr = -10.0; sinr <= 25.0; sinr += 0.5) {
    const double p = plcp_decode_probability(sinr);
    EXPECT_GE(p, last - 1e-12);
    last = p;
  }
}

TEST(RateSelection, PicksHighestFeasible) {
  EXPECT_EQ(select_rate(40.0, false), Modulation::kOfdm54);
  EXPECT_EQ(select_rate(40.0, true), Modulation::kOfdm54);
  EXPECT_EQ(select_rate(-10.0, false), Modulation::kDsss1);
  EXPECT_EQ(select_rate(-10.0, true), Modulation::kOfdm6);
}

TEST(RateSelection, MonotonicInSinr) {
  DataRate last{0};
  for (double sinr = -5.0; sinr <= 40.0; sinr += 0.5) {
    const auto rate = rate_info(select_rate(sinr, false)).rate;
    EXPECT_GE(rate.kbps(), last.kbps());
    last = rate;
  }
}

}  // namespace
}  // namespace wlm::phy
