// Differential suite for the SINR -> PER lookup tables against the verbatim
// scalar oracle in phy/modulation.cpp, plus pinning of the constants the
// hot-path rewrite hoisted (q_function's sqrt(2), reference_loss_db's
// per-frequency log10 cache). The table's determinism contract is strict:
// grid values are the *same doubles* the scalar path produces, guarded
// Bernoulli draws agree bit-for-bit everywhere, and bracket widening is
// pinned at the documented ULP count so a silent widening (masking a real
// monotonicity bug) fails loudly.
#include "phy/per_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/rng.hpp"
#include "phy/modulation.hpp"
#include "phy/propagation.hpp"

namespace wlm::phy {
namespace {

// Mirrors the builder's widening so the test pins both the bracket
// construction and its documented width (kWidenUlps = 8).
constexpr int kPinnedWidenUlps = 8;

double ulp_down(double x, int ulps) {
  for (int i = 0; i < ulps; ++i) x = std::nextafter(x, -1.0);
  return x < 0.0 ? 0.0 : x;
}

double ulp_up(double x, int ulps) {
  for (int i = 0; i < ulps; ++i) x = std::nextafter(x, 2.0);
  return x > 1.0 ? 1.0 : x;
}

TEST(PerTable, FullGridMatchesScalarExactly) {
  // Every grid point of every modulation, at both fleet payload sizes
  // (60-byte probes, 1500-byte data frames), must store the exact double
  // the scalar oracle computes — zero tolerance.
  for (const int payload : {60, 1500}) {
    for (const auto& info : all_rates()) {
      const PerTable table(info.modulation, payload);
      for (int i = 0; i < PerTable::kGridPoints; ++i) {
        const double sinr = PerTable::grid_sinr_db(i);
        ASSERT_EQ(table.grid_value(i), packet_error_rate(info.modulation, sinr, payload))
            << info.name << " payload=" << payload << " i=" << i;
      }
    }
  }
}

TEST(PerTable, GridGeometryPinned) {
  EXPECT_DOUBLE_EQ(PerTable::kGridMinDb, -10.0);
  EXPECT_DOUBLE_EQ(PerTable::kGridMaxDb, 45.0);
  EXPECT_DOUBLE_EQ(PerTable::kGridStepDb, 0.125);
  EXPECT_EQ(PerTable::kGridPoints, 441);
  EXPECT_DOUBLE_EQ(PerTable::grid_sinr_db(PerTable::kGridPoints - 1), PerTable::kGridMaxDb);
}

TEST(PerTable, BracketWideningPinnedAndContainsGridEndpoints) {
  // bounds() must be the grid endpoints min/max pushed outward by exactly
  // the pinned ULP count; anything wider silently hides monotonicity bugs,
  // anything narrower breaks the containment guarantee.
  const PerTable table(Modulation::kOfdm24, 1500);
  for (int i = 0; i + 1 < PerTable::kGridPoints; ++i) {
    // Query strictly inside interval i.
    const double sinr = PerTable::grid_sinr_db(i) + 0.4 * PerTable::kGridStepDb;
    const auto b = table.bounds(sinr);
    ASSERT_TRUE(b.has_value());
    const double lo = std::min(table.grid_value(i), table.grid_value(i + 1));
    const double hi = std::max(table.grid_value(i), table.grid_value(i + 1));
    ASSERT_EQ(b->lo, ulp_down(lo, kPinnedWidenUlps)) << "interval " << i;
    ASSERT_EQ(b->hi, ulp_up(hi, kPinnedWidenUlps)) << "interval " << i;
  }
}

TEST(PerTable, RandomOffGridBracketContainsExactScalar) {
  // 100k random off-grid SINRs: the widened bracket must contain the exact
  // scalar PER — this is the invariant chance_error()'s fast accept/reject
  // depends on.
  Rng rng(0x9e1);
  const PerTableSet set(1500);
  const auto& rates = all_rates();
  for (int trial = 0; trial < 100'000; ++trial) {
    const auto& info = rates[static_cast<std::size_t>(trial) % rates.size()];
    const double sinr = rng.uniform(PerTable::kGridMinDb, PerTable::kGridMaxDb);
    const auto b = set.table(info.modulation).bounds(sinr);
    ASSERT_TRUE(b.has_value());
    const double exact = packet_error_rate(info.modulation, sinr, 1500);
    ASSERT_GE(exact, b->lo) << info.name << " sinr=" << sinr;
    ASSERT_LE(exact, b->hi) << info.name << " sinr=" << sinr;
  }
}

TEST(PerTable, RandomGuardedDrawsMatchScalarBitForBit) {
  // 100k random (SINR, u) pairs, including SINRs beyond the grid edges:
  // the guarded Bernoulli must equal `u < per_exact` exactly. Skew half the
  // u draws into the bracket's neighborhood so the exact-fallback branch is
  // exercised, not just the fast accept/reject.
  Rng rng(0x51a7);
  const PerTableSet set(60);
  const auto& rates = all_rates();
  for (int trial = 0; trial < 100'000; ++trial) {
    const auto& info = rates[static_cast<std::size_t>(trial) % rates.size()];
    const double sinr = rng.uniform(-15.0, 50.0);
    const double exact = packet_error_rate(info.modulation, sinr, 60);
    double u = rng.uniform();
    if (trial % 2 == 0) {
      // Near the exact value (within a few percent) — lands inside or next
      // to the bracket far more often than a uniform draw would.
      u = std::clamp(exact + (u - 0.5) * 0.05, 0.0, 1.0);
    }
    const bool expected = u < exact;
    ASSERT_EQ(set.table(info.modulation).chance_error(sinr, u), expected)
        << info.name << " sinr=" << sinr << " u=" << u;
  }
}

TEST(PerTable, OffGridQueriesFallBackToScalar) {
  const PerTable table(Modulation::kDsss1, 60);
  EXPECT_FALSE(table.bounds(PerTable::kGridMinDb - 0.5).has_value());
  EXPECT_FALSE(table.bounds(PerTable::kGridMaxDb + 0.5).has_value());
  EXPECT_FALSE(table.bounds(std::nan("")).has_value());
  // interpolated() off the grid is the scalar value itself.
  EXPECT_EQ(table.interpolated(-12.0), packet_error_rate(Modulation::kDsss1, -12.0, 60));
  EXPECT_EQ(table.interpolated(47.0), packet_error_rate(Modulation::kDsss1, 47.0, 60));
}

TEST(PerTable, InterpolatedWithinPinnedAbsBound) {
  // The analytics interpolation (never on byte-identity paths) must stay
  // within a pinned absolute error of the scalar curve over the whole grid;
  // the 1/8 dB step keeps even the steep waterfall regions under this.
  Rng rng(0xabcd);
  const PerTableSet set(1500);
  double worst = 0.0;
  for (int trial = 0; trial < 20'000; ++trial) {
    const auto& info = all_rates()[static_cast<std::size_t>(trial) % all_rates().size()];
    const double sinr = rng.uniform(PerTable::kGridMinDb, PerTable::kGridMaxDb);
    const double err = std::abs(set.table(info.modulation).interpolated(sinr) -
                                packet_error_rate(info.modulation, sinr, 1500));
    worst = std::max(worst, err);
  }
  EXPECT_LE(worst, 5e-3);
}

TEST(PerTable, ModeNamesRoundTrip) {
  EXPECT_STREQ(per_mode_name(PerMode::kReference), "reference");
  EXPECT_STREQ(per_mode_name(PerMode::kTable), "table");
  EXPECT_EQ(per_mode_from_name("reference"), PerMode::kReference);
  EXPECT_EQ(per_mode_from_name("table"), PerMode::kTable);
  EXPECT_FALSE(per_mode_from_name("exact").has_value());
}

TEST(PerTable, ProbeTablesSharedAndCorrect) {
  const auto& dsss = probe_per_table(Modulation::kDsss1);
  const auto& ofdm = probe_per_table(Modulation::kOfdm6);
  EXPECT_EQ(dsss.modulation(), Modulation::kDsss1);
  EXPECT_EQ(ofdm.modulation(), Modulation::kOfdm6);
  EXPECT_EQ(dsss.payload_bytes(), 60);
  EXPECT_EQ(ofdm.payload_bytes(), 60);
  // Magic statics: repeated lookups return the same shared object.
  EXPECT_EQ(&probe_per_table(Modulation::kDsss1), &dsss);
}

// --- Hoisted-constant pinning (hot-path rewrite satellite) ---------------
//
// q_function() hoisted sqrt(2.0) into a namespace constant and
// reference_loss_db() memoizes its 20*log10(...) per frequency. Both must
// yield the *identical doubles* the original expressions produced. The BER
// values are pinned as hexfloat literals (any drift — a "harmless"
// refactor, a changed constant, an FMA contraction — flips a bit here
// before it silently changes fleet outputs).

TEST(PhyHoistedConstants, QFunctionValuesPinned) {
  EXPECT_EQ(bit_error_rate(Modulation::kDsss1, 5.0), 0x1.06faec2d18fedp-50);
  EXPECT_EQ(bit_error_rate(Modulation::kOfdm6, 8.0), 0x1.cb73aa137a2fcp-34);
  EXPECT_EQ(bit_error_rate(Modulation::kOfdm54, 23.0), 0x1.ff0d468e6a4ap-19);
  EXPECT_EQ(packet_error_rate(Modulation::kCck11, 12.0, 1500), 0x1.5988e582af1acp-2);
  EXPECT_EQ(packet_error_rate(Modulation::kOfdm24, 17.0, 60), 0x1.662e532e4p-19);
}

TEST(PhyHoistedConstants, ReferenceLossCacheReturnsUncachedDouble) {
  // The memoized value must be the same double as the direct Friis
  // expression, and a second (cached) call must return it again.
  for (const double mhz : {2412.0, 2437.0, 2462.0, 5180.0, 5745.0}) {
    const FrequencyMhz freq{mhz};
    const double direct = 20.0 * std::log10(4.0 * M_PI * 1.0 * freq.hz() / 299'792'458.0);
    EXPECT_EQ(PathLossModel::reference_loss_db(freq), direct) << mhz;
    EXPECT_EQ(PathLossModel::reference_loss_db(freq), direct) << mhz << " (cached)";
  }
  EXPECT_EQ(PathLossModel::reference_loss_db(FrequencyMhz{2412}), 0x1.40c33c00e201ep+5);
  EXPECT_EQ(PathLossModel::reference_loss_db(FrequencyMhz{5180}), 0x1.75e001ca97f17p+5);
}

}  // namespace
}  // namespace wlm::phy
