#include "phy/propagation.hpp"

#include <gtest/gtest.h>

#include "core/stats.hpp"

namespace wlm::phy {
namespace {

TEST(Distance, Euclidean) {
  EXPECT_DOUBLE_EQ(distance_m({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance_m({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

TEST(PathLoss, FreeSpaceReferenceAt2_4GHz) {
  // Friis at 1 m, 2.437 GHz: ~40.2 dB.
  EXPECT_NEAR(PathLossModel::reference_loss_db(FrequencyMhz{2437.0}), 40.2, 0.2);
  // 5.25 GHz is ~6.7 dB worse.
  const double delta = PathLossModel::reference_loss_db(FrequencyMhz{5250.0}) -
                       PathLossModel::reference_loss_db(FrequencyMhz{2437.0});
  EXPECT_NEAR(delta, 6.7, 0.2);
}

TEST(PathLoss, MonotonicInDistanceAndWalls) {
  PathLossModel model;
  const auto f = FrequencyMhz{2437.0};
  EXPECT_LT(model.median_loss_db(5.0, f, 0), model.median_loss_db(20.0, f, 0));
  EXPECT_LT(model.median_loss_db(20.0, f, 0), model.median_loss_db(20.0, f, 3));
  // Each wall costs exactly wall_loss_db.
  EXPECT_DOUBLE_EQ(model.median_loss_db(20.0, f, 2) - model.median_loss_db(20.0, f, 0),
                   2.0 * model.wall_loss_db);
}

TEST(PathLoss, SubMeterClampsToOneMeter) {
  PathLossModel model;
  const auto f = FrequencyMhz{2437.0};
  EXPECT_DOUBLE_EQ(model.median_loss_db(0.1, f, 0), model.median_loss_db(1.0, f, 0));
}

TEST(PathLoss, ExponentScalesSlope) {
  PathLossModel model;
  model.exponent = 2.0;
  const auto f = FrequencyMhz{2437.0};
  // Doubling distance at n=2 adds ~6 dB.
  EXPECT_NEAR(model.median_loss_db(20.0, f, 0) - model.median_loss_db(10.0, f, 0), 6.02, 0.1);
}

TEST(Shadowing, HasConfiguredSpread) {
  PathLossModel model;
  model.shadowing_sigma_db = 6.0;
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 20'000; ++i) stats.add(draw_shadowing_db(rng, model));
  EXPECT_NEAR(stats.mean(), 0.0, 0.15);
  EXPECT_NEAR(stats.stddev(), 6.0, 0.15);
}

TEST(Fading, AveragePowerIsZeroDb) {
  // Mean linear power of the fading process must be ~1 (0 dB).
  FadingProcess fading(Rng{17}, /*k_factor_db=*/6.0, /*coherence=*/0.0);
  double linear_sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    linear_sum += std::pow(10.0, fading.next_gain_db() / 10.0);
  }
  EXPECT_NEAR(linear_sum / n, 1.0, 0.05);
}

TEST(Fading, RayleighFadesDeeperThanRician) {
  FadingProcess rayleigh(Rng{5}, -200.0, 0.0);
  FadingProcess rician(Rng{5}, 12.0, 0.0);
  double min_ray = 0.0;
  double min_ric = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    min_ray = std::min(min_ray, rayleigh.next_gain_db());
    min_ric = std::min(min_ric, rician.next_gain_db());
  }
  EXPECT_LT(min_ray, min_ric - 5.0);
}

TEST(Fading, CoherencePersistsGain) {
  // Highly coherent process moves slowly: successive samples are close.
  FadingProcess slow(Rng{7}, 0.0, 0.999);
  double prev = slow.next_gain_db();
  double max_step = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double cur = slow.next_gain_db();
    max_step = std::max(max_step, std::abs(cur - prev));
    prev = cur;
  }
  EXPECT_LT(max_step, 6.0);
}

TEST(NoiseFloor, TwentyMhzReceiver) {
  // kTB for 20 MHz is -101 dBm; +7 dB noise figure = -94 dBm.
  EXPECT_NEAR(noise_floor(20.0).dbm(), -94.0, 0.1);
  // Wider bandwidth raises the floor by 10log10(BW ratio).
  EXPECT_NEAR(noise_floor(40.0).dbm() - noise_floor(20.0).dbm(), 3.01, 0.05);
}

}  // namespace
}  // namespace wlm::phy
