#include "probe/link_table.hpp"

#include <gtest/gtest.h>

namespace wlm::probe {
namespace {

LinkKey key(std::uint32_t ap, phy::Band band = phy::Band::k2_4GHz) {
  return LinkKey{ApId{ap}, band};
}

TEST(LinkTable, RecordsAndReportsMetrics) {
  LinkTable table;
  SimTime t;
  for (int i = 0; i < 10; ++i) {
    table.record(key(1), t, i < 7);
    t += kProbeInterval;
  }
  const auto m = table.metric(key(1));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->expected, 10u);
  EXPECT_EQ(m->received, 7u);
  EXPECT_DOUBLE_EQ(m->ratio, 0.7);
}

TEST(LinkTable, BandsAreSeparateLinks) {
  LinkTable table;
  SimTime t;
  table.record(key(1, phy::Band::k2_4GHz), t, true);
  table.record(key(1, phy::Band::k5GHz), t, false);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_DOUBLE_EQ(table.metric(key(1, phy::Band::k2_4GHz))->ratio, 1.0);
  EXPECT_DOUBLE_EQ(table.metric(key(1, phy::Band::k5GHz))->ratio, 0.0);
}

TEST(LinkTable, MissingLinkIsNullopt) {
  LinkTable table;
  EXPECT_FALSE(table.metric(key(42)).has_value());
}

TEST(LinkTable, BoundedWithLruEviction) {
  // The paper's SS6.1 skyscraper bug: unbounded neighbor state ran 64 MB
  // APs out of memory. The table must evict, not grow.
  LinkTable table(/*capacity=*/16);
  SimTime t;
  for (std::uint32_t ap = 1; ap <= 100; ++ap) {
    table.record(key(ap), t, true);
    t += Duration::seconds(1);
  }
  EXPECT_EQ(table.size(), 16u);
  EXPECT_EQ(table.evictions(), 84u);
  // The most recent links survive.
  EXPECT_TRUE(table.metric(key(100)).has_value());
  EXPECT_FALSE(table.metric(key(1)).has_value());
}

TEST(LinkTable, RecentlyHeardLinkSurvivesEviction) {
  LinkTable table(3);
  SimTime t;
  table.record(key(1), t, true);
  table.record(key(2), t, true);
  table.record(key(3), t, true);
  // Touch link 1 so it becomes most-recent, then overflow.
  table.record(key(1), t + Duration::seconds(1), true);
  table.record(key(4), t + Duration::seconds(2), true);
  EXPECT_TRUE(table.metric(key(1)).has_value());
  EXPECT_FALSE(table.metric(key(2)).has_value());  // LRU victim
}

TEST(LinkTable, AllMetricsEnumerates) {
  LinkTable table;
  SimTime t;
  for (std::uint32_t ap = 1; ap <= 5; ++ap) table.record(key(ap), t, true);
  EXPECT_EQ(table.all_metrics().size(), 5u);
}

}  // namespace
}  // namespace wlm::probe
