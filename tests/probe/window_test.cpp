#include "probe/window.hpp"

#include <gtest/gtest.h>

namespace wlm::probe {
namespace {

TEST(Window, EmptyRatioIsZero) {
  SlidingDeliveryWindow w;
  EXPECT_EQ(w.expected(), 0u);
  EXPECT_DOUBLE_EQ(w.ratio(), 0.0);
}

TEST(Window, CountsWithinSpan) {
  SlidingDeliveryWindow w;
  SimTime t;
  for (int i = 0; i < 20; ++i) {
    w.record(t, i % 2 == 0);
    t += kProbeInterval;
  }
  EXPECT_EQ(w.expected(), 20u);
  EXPECT_EQ(w.received(), 10u);
  EXPECT_DOUBLE_EQ(w.ratio(), 0.5);
}

TEST(Window, ExactlyTwentyProbesFitIn300s) {
  // 15 s cadence and a 300 s window: the 21st probe evicts the 1st.
  SlidingDeliveryWindow w;
  SimTime t;
  for (int i = 0; i < 21; ++i) {
    w.record(t, true);
    t += kProbeInterval;
  }
  EXPECT_EQ(w.expected(), 20u);
}

TEST(Window, EvictionAdjustsReceivedCount) {
  SlidingDeliveryWindow w;
  SimTime t;
  w.record(t, true);  // will be evicted
  for (int i = 1; i <= 20; ++i) {
    w.record(t + kProbeInterval * i, false);
  }
  EXPECT_EQ(w.received(), 0u);
  EXPECT_DOUBLE_EQ(w.ratio(), 0.0);
}

TEST(Window, ExpireDropsStaleEntries) {
  SlidingDeliveryWindow w;
  SimTime t;
  w.record(t, true);
  w.record(t + Duration::seconds(15), true);
  w.expire(t + Duration::seconds(400));
  EXPECT_EQ(w.expected(), 0u);
}

TEST(Window, PartialExpiry) {
  SlidingDeliveryWindow w;
  SimTime t;
  w.record(t, true);
  w.record(t + Duration::seconds(100), false);
  w.record(t + Duration::seconds(200), true);
  // At t+350: the first entry (age 350) falls out, the rest stay.
  w.expire(t + Duration::seconds(350));
  EXPECT_EQ(w.expected(), 2u);
  EXPECT_EQ(w.received(), 1u);
}

TEST(Window, GapInProbesShrinksWindow) {
  SlidingDeliveryWindow w;
  SimTime t;
  for (int i = 0; i < 10; ++i) w.record(t + kProbeInterval * i, true);
  // Sender goes quiet for 10 minutes, then one more probe arrives.
  w.record(t + Duration::minutes(10) + kProbeInterval * 10, true);
  EXPECT_EQ(w.expected(), 1u);
}

}  // namespace
}  // namespace wlm::probe
