// Cross-module property tests: randomized invariants that must hold for any
// input, swept with parameterized seeds.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "backend/aggregate.hpp"
#include "backend/tunnel.hpp"
#include "ckpt/state.hpp"
#include "classify/rules.hpp"
#include "classify/verdict_cache.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "failsafe/failpoint.hpp"
#include "mac/beacon.hpp"
#include "phy/channel.hpp"
#include "sim/fleet_runner.hpp"
#include "traffic/flowgen.hpp"
#include "wire/messages.hpp"

namespace wlm {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1ULL, 7ULL, 42ULL, 1337ULL, 2015ULL, 99991ULL));

wire::ApReport random_report(Rng& rng) {
  wire::ApReport r;
  r.ap_id = static_cast<std::uint32_t>(rng.next_u64());
  r.timestamp_us = static_cast<std::int64_t>(rng.next_u64() >> 2) *
                   (rng.chance(0.2) ? -1 : 1);
  r.firmware = static_cast<std::uint32_t>(rng.uniform_int(0, 10));
  const auto n_usage = rng.uniform_int(0, 50);
  for (std::int64_t i = 0; i < n_usage; ++i) {
    r.usage.push_back(wire::ClientUsage{MacAddress::from_u64(rng.next_u64() & 0xFFFFFFFFFFFF),
                                        static_cast<std::uint32_t>(rng.uniform_int(0, 44)),
                                        rng.next_u64() >> 20, rng.next_u64() >> 20});
  }
  const auto n_util = rng.uniform_int(0, 35);
  for (std::int64_t i = 0; i < n_util; ++i) {
    wire::ChannelUtilization u;
    u.band = rng.chance(0.5) ? 0 : 1;
    u.channel = static_cast<std::int32_t>(rng.uniform_int(1, 165));
    u.cycle_us = rng.next_u64() >> 40;
    u.busy_us = u.cycle_us > 0 ? rng.next_u64() % (u.cycle_us + 1) : 0;
    u.rx_frame_us = u.busy_us > 0 ? rng.next_u64() % (u.busy_us + 1) : 0;
    r.utilization.push_back(u);
  }
  const auto n_nb = rng.uniform_int(0, 80);
  for (std::int64_t i = 0; i < n_nb; ++i) {
    wire::NeighborBss n;
    n.bssid = MacAddress::from_u64(rng.next_u64() & 0xFFFFFFFFFFFF);
    n.band = rng.chance(0.8) ? 0 : 1;
    n.channel = static_cast<std::int32_t>(rng.uniform_int(1, 165));
    n.rssi_dbm = rng.uniform(-95.0, -40.0);
    n.is_hotspot = rng.chance(0.2);
    r.neighbors.push_back(n);
  }
  return r;
}

TEST_P(SeededProperty, WireRoundTripIsIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const auto report = random_report(rng);
    const auto decoded = wire::decode_report(wire::encode_report(report));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, report);
  }
}

TEST_P(SeededProperty, WireEncodingIsDeterministic) {
  Rng rng(GetParam());
  const auto report = random_report(rng);
  EXPECT_EQ(wire::encode_report(report), wire::encode_report(report));
}

TEST_P(SeededProperty, AggregationConservesBytesUnderRoaming) {
  Rng rng(GetParam() * 31 + 5);
  backend::ReportStore store;
  std::uint64_t total_in = 0;
  for (int i = 0; i < 40; ++i) {
    auto report = random_report(rng);
    report.timestamp_us = static_cast<std::int64_t>(rng.next_u64() % 1'000'000);
    for (const auto& u : report.usage) total_in += u.tx_bytes + u.rx_bytes;
    store.add(std::move(report));
  }
  backend::UsageAggregator agg;
  agg.consume(store, SimTime::epoch(), SimTime::from_micros(2'000'000));
  std::uint64_t total_out = 0;
  for (const auto& [mac, client] : agg.clients()) total_out += client.total();
  EXPECT_EQ(total_out, total_in);
}

TEST_P(SeededProperty, BeaconAirtimePartitionsExactly) {
  // Airtime over a window equals the sum over any partition of the window.
  Rng rng(GetParam() * 17 + 3);
  for (int i = 0; i < 50; ++i) {
    const auto interval = rng.uniform_int(1'000, 200'000);
    const auto airtime = rng.uniform_int(0, interval);
    const auto offset = rng.uniform_int(0, interval - 1);
    mac::BeaconSchedule sched(interval, offset, airtime);
    const auto start = rng.uniform_int(0, 1'000'000);
    const auto len = rng.uniform_int(1, 500'000);
    const auto split = rng.uniform_int(1, len);
    const auto whole = sched.airtime_in_window(start, len);
    const auto left = sched.airtime_in_window(start, split);
    const auto right = sched.airtime_in_window(start + split, len - split);
    EXPECT_EQ(whole, left + right);
    EXPECT_LE(whole, len);
  }
}

TEST_P(SeededProperty, CdfQuantileIsRightInverse) {
  Rng rng(GetParam() * 101 + 7);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.normal(0.0, 5.0));
  EmpiricalCdf cdf(std::move(samples));
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = cdf.quantile(p);
    // F(quantile(p)) >= p (step CDF) with limited overshoot.
    EXPECT_GE(cdf.at(x) + 1e-9, p);
    EXPECT_LE(cdf.at(x), p + 0.01);
  }
}

TEST_P(SeededProperty, ChannelOverlapSymmetricSameWidth) {
  Rng rng(GetParam());
  const auto& channels = phy::ChannelPlan::us().channels();
  for (int i = 0; i < 200; ++i) {
    const auto& a = channels[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(channels.size()) - 1))];
    const auto& b = channels[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(channels.size()) - 1))];
    // Same 20 MHz width everywhere in the plan: overlap must be symmetric.
    EXPECT_DOUBLE_EQ(phy::channel_overlap(a, b), phy::channel_overlap(b, a));
    EXPECT_GE(phy::channel_overlap(a, b), 0.0);
    EXPECT_LE(phy::channel_overlap(a, b), 1.0);
  }
}

TEST_P(SeededProperty, HistogramFractionsSumToOne) {
  Rng rng(GetParam() + 1);
  Histogram h(-10.0, 10.0, 16);
  for (int i = 0; i < 1000; ++i) h.add(rng.normal(0.0, 6.0));
  double sum = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) sum += h.bin_fraction(b);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(SeededProperty, CheckpointStoreSaveLoadSaveIsIdentity) {
  // Canonical serialization: for ANY store contents, save -> load -> save
  // emits identical bytes, and the loaded store holds the same reports.
  Rng rng(GetParam() * 13 + 1);
  backend::ReportStore store;
  const auto n = rng.uniform_int(0, 30);
  for (std::int64_t i = 0; i < n; ++i) store.add(random_report(rng));

  ckpt::Buf first;
  ckpt::save_store(first, store);
  const auto bytes = first.take();
  ckpt::Cursor c(bytes);
  backend::ReportStore loaded;
  ASSERT_TRUE(ckpt::load_store(c, loaded));
  ASSERT_TRUE(c.at_end());
  EXPECT_EQ(loaded.report_count(), store.report_count());
  ckpt::Buf second;
  ckpt::save_store(second, loaded);
  EXPECT_EQ(bytes, second.take());
}

TEST_P(SeededProperty, CheckpointRngRestoreMatchesEveryDistribution) {
  // Cut the generator at a random point in a random draw mix; the restored
  // clone must continue the exact stream across every distribution.
  Rng rng(GetParam() * 7 + 9);
  Rng subject(GetParam());
  const auto warmup = rng.uniform_int(0, 200);
  for (std::int64_t i = 0; i < warmup; ++i) {
    if (rng.chance(0.3)) {
      (void)subject.normal();  // may leave a cached Box–Muller variate
    } else {
      (void)subject.next_u64();
    }
  }
  ckpt::Buf b;
  ckpt::save_rng(b, subject.state());
  const auto bytes = b.take();
  ckpt::Cursor c(bytes);
  Rng::State state;
  ASSERT_TRUE(ckpt::load_rng(c, state));
  Rng clone(0);
  clone.restore(state);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(subject.next_u64(), clone.next_u64());
    EXPECT_EQ(subject.normal(), clone.normal());
    EXPECT_EQ(subject.exponential(0.5), clone.exponential(0.5));
    EXPECT_EQ(subject.poisson(4.0), clone.poisson(4.0));
  }
}

TEST_P(SeededProperty, CheckpointTunnelSaveLoadSaveIsIdentity) {
  // Random op sequences (enqueue/disconnect/reconnect/poll/overflow) leave
  // the tunnel in an arbitrary reachable state; identity must hold for all.
  Rng rng(GetParam() * 23 + 11);
  backend::Tunnel tunnel(ApId{9}, /*queue_limit=*/8);
  const auto ops = rng.uniform_int(0, 60);
  for (std::int64_t i = 0; i < ops; ++i) {
    switch (rng.uniform_int(0, 3)) {
      case 0: {
        std::vector<std::uint8_t> frame(static_cast<std::size_t>(rng.uniform_int(0, 12)));
        for (auto& byte : frame) byte = static_cast<std::uint8_t>(rng.next_u64());
        tunnel.enqueue(std::move(frame));
        break;
      }
      case 1: tunnel.disconnect(); break;
      case 2: tunnel.reconnect(); break;
      default: (void)tunnel.poll(static_cast<std::size_t>(rng.uniform_int(0, 4))); break;
    }
  }
  ckpt::Buf first;
  ckpt::save_tunnel(first, tunnel);
  const auto bytes = first.take();
  ckpt::Cursor c(bytes);
  backend::Tunnel loaded(ApId{9}, /*queue_limit=*/8);
  ASSERT_TRUE(ckpt::load_tunnel(c, loaded));
  ASSERT_TRUE(c.at_end());
  EXPECT_EQ(loaded.pending(), tunnel.pending());
  EXPECT_EQ(loaded.connected(), tunnel.connected());
  ckpt::Buf second;
  ckpt::save_tunnel(second, loaded);
  EXPECT_EQ(bytes, second.take());
}

// Interleaved fragment workload shared by the cache properties below:
// a handful of flows, each emitting several fragments, shuffled so that
// distinct flow keys contend for cache slots mid-flow.
struct FragmentEvent {
  classify::FlowKey key;
  const classify::FlowSample* sample;
  std::uint64_t bytes;
};

std::vector<FragmentEvent> random_fragment_workload(
    Rng& rng, std::vector<traffic::GeneratedFlow>& storage) {
  traffic::FlowGenerator gen{Rng{rng.next_u64()}};
  const auto& catalog = classify::app_catalog();
  const auto n_flows = rng.uniform_int(5, 40);
  storage.clear();
  storage.reserve(static_cast<std::size_t>(n_flows));
  std::vector<FragmentEvent> events;
  for (std::int64_t i = 0; i < n_flows; ++i) {
    const auto& app = catalog[static_cast<std::size_t>(rng.next_u64() % catalog.size())];
    const auto os = static_cast<classify::OsType>(rng.uniform_int(0, classify::kOsTypeCount - 1));
    storage.push_back(gen.make_flow(app.id, os, rng.next_u64() % (1u << 22),
                                    rng.next_u64() % (1u << 26)));
  }
  for (std::size_t i = 0; i < storage.size(); ++i) {
    const auto& flow = storage[i];
    const classify::FlowKey key{
        0xAA00'0000'0000ULL + i, static_cast<std::uint32_t>(i % 3), flow.dst_host,
        flow.src_port, flow.sample.dst_port,
        flow.sample.transport == classify::Transport::kUdp ? std::uint8_t{17} : std::uint8_t{6}};
    const auto frags = std::max<std::uint16_t>(flow.fragments, 2);
    for (std::uint16_t f = 0; f < frags; ++f) {
      events.push_back(FragmentEvent{key, &flow.sample, rng.next_u64() % 100'000});
    }
  }
  rng.shuffle(events);
  return events;
}

TEST_P(SeededProperty, VerdictCacheConservesAttribution) {
  // Conservation: every lookup is exactly one hit or one miss, evictions
  // never exceed insertions, live entries never exceed capacity, and the
  // bytes attributed per app through the cache equal the bytes attributed
  // by the always-slow reference on the same event stream.
  Rng rng(GetParam() * 41 + 13);
  std::vector<traffic::GeneratedFlow> storage;
  const auto events = random_fragment_workload(rng, storage);

  classify::TwoTierClassifier cached(classify::ClassifierMode::kIndexed,
                                     /*cache_capacity=*/8);
  classify::TwoTierClassifier reference(classify::ClassifierMode::kReference);
  std::map<classify::AppId, std::uint64_t> bytes_cached;
  std::map<classify::AppId, std::uint64_t> bytes_reference;
  for (const auto& ev : events) {
    bytes_cached[cached.classify(ev.key, *ev.sample)] += ev.bytes;
    bytes_reference[reference.classify(ev.key, *ev.sample)] += ev.bytes;
  }
  EXPECT_EQ(bytes_cached, bytes_reference);

  const auto& stats = cached.cache().stats();
  EXPECT_EQ(stats.hits + stats.misses, events.size());
  EXPECT_EQ(stats.hits + cached.slow_path_calls(), events.size());
  EXPECT_LE(stats.evictions, stats.misses);
  EXPECT_LE(cached.cache().size(), cached.cache().capacity());
  EXPECT_EQ(reference.cache().stats().hits, 0u);  // reference never caches
}

TEST_P(SeededProperty, VerdictCacheEvictionIsCapacityInvariant) {
  // Eviction determinism: the verdict SEQUENCE is identical at any capacity
  // >= 1 (an evicted entry just re-runs the slow path, which re-derives the
  // same verdict), and replaying the same stream is bit-identical.
  Rng rng(GetParam() * 53 + 29);
  std::vector<traffic::GeneratedFlow> storage;
  const auto events = random_fragment_workload(rng, storage);

  std::vector<classify::AppId> baseline;
  std::uint64_t baseline_hits = 0;
  for (const std::size_t capacity : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                                     std::size_t{64}, std::size_t{100'000}}) {
    classify::TwoTierClassifier tier(classify::ClassifierMode::kIndexed, capacity);
    std::vector<classify::AppId> verdicts;
    verdicts.reserve(events.size());
    for (const auto& ev : events) verdicts.push_back(tier.classify(ev.key, *ev.sample));
    if (baseline.empty()) {
      baseline = verdicts;
      baseline_hits = tier.cache().stats().hits;
      // Replay determinism at the smallest capacity: same stream, same stats.
      classify::TwoTierClassifier replay(classify::ClassifierMode::kIndexed, capacity);
      for (const auto& ev : events) (void)replay.classify(ev.key, *ev.sample);
      EXPECT_EQ(replay.cache().stats().hits, tier.cache().stats().hits);
      EXPECT_EQ(replay.cache().stats().evictions, tier.cache().stats().evictions);
    } else {
      ASSERT_EQ(verdicts, baseline) << "capacity=" << capacity;
      // Bigger caches can only hit more often, never less.
      EXPECT_GE(tier.cache().stats().hits, baseline_hits) << "capacity=" << capacity;
    }
  }
}

TEST_P(SeededProperty, LossLedgerConservesUnderSupervisionOutcomes) {
  // The fleet ledger's conservation invariant (generated = delivered + shed
  // + lost_reboot + lost_corruption + in_flight + lost_supervision) must
  // close for EVERY supervision outcome — clean pass, recovered retry,
  // watchdog trip, or quarantine — and the whole degraded accounting must
  // be bit-identical for any worker count. The seed sweeps the failpoint
  // schedule (site, skip count, firing bound, retry budget) across those
  // outcomes.
  Rng rng(GetParam() * 31 + 17);
  static constexpr const char* kSites[] = {"shard.step", "poller.poll",
                                           "harvest.merge", "shard.alloc"};
  const char* site = kSites[rng.next_u64() % 4];
  const bool oom = std::string_view(site) == "shard.alloc";
  const std::uint64_t after = rng.next_u64() % 4;
  const std::uint64_t times = rng.next_u64() % 3;  // 0 = fire forever
  const std::uint64_t retries = rng.next_u64() % 3;
  const std::size_t victim_index = static_cast<std::size_t>(rng.next_u64() % 4);

  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 4;
  config.fleet.seed = 21;
  config.seed = 22;
  config.supervision.max_shard_retries = retries;
  config.supervision.capture_checkpoints = true;

  const std::uint64_t victim = [&] {
    const sim::FleetRunner probe(config);
    return probe.shards().at(victim_index)->id().value();
  }();
  const std::string spec = std::string("site=") + site +
                           ",net=" + std::to_string(victim) +
                           ",action=" + (oom ? "oom" : "throw") +
                           ",after=" + std::to_string(after) +
                           ",times=" + std::to_string(times);

  std::string baseline_ledger;
  std::string baseline_manifest;
  for (const int jobs : {1, 2, 8}) {
    failsafe::failpoints().disarm_all();
    ASSERT_TRUE(failsafe::failpoints().arm_list(spec)) << spec;
    config.threads = jobs;
    sim::FleetRunner runner(config);
    runner.run_usage_week();
    runner.harvest(sim::HarvestMode::kFinal);
    failsafe::failpoints().disarm_all();

    const auto ledger = runner.loss_ledger();
    EXPECT_TRUE(ledger.conserved()) << spec << " jobs=" << jobs << "\n"
                                    << ledger.render();
    // A quarantine is never silent: it must show up in both the manifest
    // and the ledger's supervision bucket (unless the shard died before
    // producing anything — then the bucket is legitimately zero).
    if (runner.supervisor().quarantined_count() > 0) {
      EXPECT_TRUE(runner.supervisor().degraded());
      EXPECT_EQ(runner.supervisor().manifest().quarantined_networks(),
                std::vector<std::uint64_t>{victim});
    } else {
      EXPECT_EQ(ledger.lost_supervision, 0u);
    }
    if (jobs == 1) {
      baseline_ledger = ledger.render();
      baseline_manifest = runner.supervisor().manifest().render();
    } else {
      EXPECT_EQ(ledger.render(), baseline_ledger) << spec << " jobs=" << jobs;
      EXPECT_EQ(runner.supervisor().manifest().render(), baseline_manifest)
          << spec << " jobs=" << jobs;
    }
  }
}

TEST_P(SeededProperty, LossLedgerConservesUnderRoamingChurn) {
  // Mobility churn (per-flow usage fanned out across the roam set) must not
  // break byte conservation while faults chew on the tunnels and the
  // supervisor retries a failpoint-shot shard — and the whole degraded
  // accounting must stay bit-identical across worker counts. Odd seeds arm
  // a mid-week shard failure so the churn × supervision corner is covered.
  const std::uint64_t seed = GetParam();
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 4;
  config.fleet.seed = seed * 2 + 21;
  config.seed = seed * 3 + 22;
  config.client_scale = 0.25;
  config.mobility.enabled = true;
  config.mobility.steps_per_week = 48;
  config.mobility.handoff_hysteresis_db = (seed % 2 == 0) ? 3.0 : 6.0;
  config.mobility.band_steer_bonus_db = (seed % 3 == 0) ? 6.0 : 0.0;
  config.faults.outage_rate_per_week = 2.0;
  config.faults.outage_mean_hours = 12.0;
  config.faults.reboot_rate_per_week = 1.0;
  config.faults.corrupt_probability = 0.01;
  config.faults.tunnel_queue_limit = 64;
  config.supervision.max_shard_retries = 1;
  config.supervision.capture_checkpoints = true;

  const bool inject = (seed % 2) == 1;
  std::string spec;
  if (inject) {
    const std::uint64_t victim = [&] {
      const sim::FleetRunner probe(config);
      return probe.shards().at(static_cast<std::size_t>(seed % 4))->id().value();
    }();
    spec = "site=shard.step,net=" + std::to_string(victim) +
           ",action=throw,after=1,times=1";
  }

  std::string baseline;
  for (const int jobs : {1, 2, 8}) {
    if (inject) {
      failsafe::failpoints().disarm_all();
      ASSERT_TRUE(failsafe::failpoints().arm_list(spec)) << spec;
    }
    config.threads = jobs;
    sim::FleetRunner runner(config);
    runner.run_usage_week();
    runner.harvest(sim::HarvestMode::kFinal);
    failsafe::failpoints().disarm_all();

    const auto ledger = runner.loss_ledger();
    EXPECT_TRUE(ledger.conserved())
        << "seed=" << seed << " jobs=" << jobs << "\n" << ledger.render();
    if (jobs == 1) {
      baseline = ledger.render();
    } else {
      EXPECT_EQ(ledger.render(), baseline) << "seed=" << seed << " jobs=" << jobs;
    }
  }
}

TEST_P(SeededProperty, LossLedgerConservesUnderMeshPartition) {
  // Mesh backhaul adds a new way to lose work — a partitioned relay subtree
  // (no route within max_hops, or a gateway mid-outage) drops reports
  // before they ever reach a tunnel — and the ledger's lost_mesh_partition
  // bucket must keep conservation closed through it, stacked with tunnel
  // faults and failpoint supervision, bit-identically across worker counts.
  // The seed sweeps hop budgets, drift, and a mid-week shard failure.
  const std::uint64_t seed = GetParam();
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 4;
  config.fleet.seed = seed * 5 + 31;
  config.seed = seed * 7 + 32;
  config.client_scale = 0.25;
  config.mesh.mesh_fraction = 0.6;
  config.mesh.max_hops = (seed % 2 == 0) ? 8 : 2;
  config.mesh.drift_sigma_db = (seed % 3 == 0) ? 0.0 : 4.0;
  // Long outages against a dense mesh: when one lands on a gateway AP its
  // whole relay subtree strands into lost_mesh_partition.
  config.faults.outage_rate_per_week = 3.0;
  config.faults.outage_mean_hours = 24.0;
  config.faults.reboot_rate_per_week = 1.0;
  config.faults.corrupt_probability = 0.01;
  config.faults.tunnel_queue_limit = 64;
  config.supervision.max_shard_retries = 1;
  config.supervision.capture_checkpoints = true;

  const bool inject = (seed % 2) == 1;
  std::string spec;
  if (inject) {
    const std::uint64_t victim = [&] {
      const sim::FleetRunner probe(config);
      return probe.shards().at(static_cast<std::size_t>(seed % 4))->id().value();
    }();
    spec = "site=shard.step,net=" + std::to_string(victim) +
           ",action=throw,after=1,times=1";
  }

  std::string baseline;
  for (const int jobs : {1, 2, 8}) {
    if (inject) {
      failsafe::failpoints().disarm_all();
      ASSERT_TRUE(failsafe::failpoints().arm_list(spec)) << spec;
    }
    config.threads = jobs;
    sim::FleetRunner runner(config);
    runner.run_usage_week();
    runner.harvest(sim::HarvestMode::kFinal);
    failsafe::failpoints().disarm_all();

    const auto ledger = runner.loss_ledger();
    EXPECT_TRUE(ledger.conserved())
        << "seed=" << seed << " jobs=" << jobs << "\n" << ledger.render();
    if (!runner.supervisor().degraded()) {
      // The hot-path partition counter must agree with the ledger bucket
      // (a quarantined shard's registry leaves the merge, so only clean
      // runs can make this comparison).
      EXPECT_EQ(runner.metrics().counter_value("wlm_mesh_partition_lost_total"),
                ledger.lost_mesh_partition)
          << "seed=" << seed << " jobs=" << jobs;
    }
    if (jobs == 1) {
      baseline = ledger.render();
    } else {
      EXPECT_EQ(ledger.render(), baseline) << "seed=" << seed << " jobs=" << jobs;
    }
  }
}

TEST_P(SeededProperty, MeshHopHistogramMatchesBackendObservation) {
  // Ground truth: the hop distribution the backend decodes from delivered
  // reports must equal the union of the shards' enqueue-time histograms,
  // and the wlm_mesh_* counters must re-derive from the same reports. The
  // config is fault-free so every enqueued report is delivered — any gap
  // between the two views is a wire/tsdb/relay accounting bug, not loss.
  // (Topology can still strand APs — disconnected or beyond max_hops — so
  // partition loss is reconciled against the ledger, not assumed zero.)
  const std::uint64_t seed = GetParam();
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 4;
  config.fleet.seed = seed + 3015;
  config.seed = seed + 3016;
  config.client_scale = 0.25;
  config.threads = 2;
  config.mesh.mesh_fraction = 0.5;
  config.mesh.drift_sigma_db = 3.0;

  sim::FleetRunner runner(config);
  runner.run_usage_week(7);
  runner.harvest(sim::HarvestMode::kFinal);

  std::vector<std::uint64_t> truth;
  for (const auto& shard : runner.shards()) {
    const auto& hist = shard->mesh_enqueued_by_hops();
    if (hist.size() > truth.size()) truth.resize(hist.size(), 0);
    for (std::size_t h = 0; h < hist.size(); ++h) truth[h] += hist[h];
  }
  ASSERT_FALSE(truth.empty());

  std::vector<std::uint64_t> observed(truth.size(), 0);
  std::uint64_t relayed = 0, hops_total = 0, relay_us_total = 0;
  runner.reports().for_each([&](const wire::ApReport& r) {
    if (r.mesh_hops >= observed.size()) {
      ADD_FAILURE() << "hop count " << r.mesh_hops << " beyond the config budget";
      return;
    }
    ++observed[r.mesh_hops];
    if (r.mesh_hops != 0) {
      ++relayed;
      hops_total += r.mesh_hops;
      relay_us_total += r.mesh_relay_us;
    } else {
      EXPECT_EQ(r.mesh_relay_us, 0u);  // direct reports carry no relay delay
    }
  });
  EXPECT_EQ(observed, truth) << "seed=" << seed;

  const auto& metrics = runner.metrics();
  for (std::size_t h = 0; h < truth.size(); ++h) {
    EXPECT_EQ(metrics.counter_value("wlm_mesh_reports_by_hops_total", h), truth[h])
        << "seed=" << seed << " hops=" << h;
  }
  EXPECT_EQ(metrics.counter_value("wlm_mesh_relayed_reports_total"), relayed);
  EXPECT_EQ(metrics.counter_value("wlm_mesh_hops_total"), hops_total);
  EXPECT_EQ(metrics.counter_value("wlm_mesh_relay_us_total"), relay_us_total);
  const auto ledger = runner.loss_ledger();
  EXPECT_TRUE(ledger.conserved()) << ledger.render();
  EXPECT_EQ(metrics.counter_value("wlm_mesh_partition_lost_total"),
            ledger.lost_mesh_partition);
}

TEST_P(SeededProperty, BackendApCountMatchesGroundTruthTraces) {
  // The backend's per-MAC ap_count (paper §2.3: aggregate by MAC to account
  // for roaming) must equal the distinct APs in the client's ground-truth
  // walk trace. Traces are unioned per MAC across the whole fleet before
  // comparing: the randomized MAC tail can collide across networks, and the
  // aggregator keys by MAC alone, so a collision legitimately merges two
  // clients' AP sets. Clean fault-free config: every report is delivered.
  const std::uint64_t seed = GetParam();
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = 4;
  config.fleet.seed = seed + 2015;
  config.seed = seed + 2016;
  config.client_scale = 0.25;
  config.threads = 2;
  config.mobility.enabled = true;
  config.mobility.steps_per_week = 48;

  sim::FleetRunner runner(config);
  runner.run_usage_week(7);
  runner.harvest(sim::HarvestMode::kFinal);

  std::map<std::uint64_t, std::set<std::uint32_t>> truth;
  for (const auto& shard : runner.shards()) {
    for (const auto& trace : shard->mobility_traces()) {
      truth[trace.mac].insert(trace.ap_ids.begin(), trace.ap_ids.end());
    }
  }
  ASSERT_FALSE(truth.empty());

  backend::UsageAggregator agg;
  agg.consume(runner.reports(), SimTime::epoch(),
              SimTime::epoch() + Duration::days(8));
  EXPECT_EQ(agg.clients().size(), truth.size()) << "seed=" << seed;
  for (const auto& [mac, client] : agg.clients()) {
    const auto it = truth.find(mac.to_u64());
    ASSERT_NE(it, truth.end()) << "seed=" << seed << " mac=" << mac.to_u64();
    EXPECT_EQ(static_cast<std::size_t>(client.ap_count), it->second.size())
        << "seed=" << seed << " mac=" << mac.to_u64();
  }
}

}  // namespace
}  // namespace wlm
