#include "scan/channel_planner.hpp"

#include <gtest/gtest.h>

namespace wlm::scan {
namespace {

ChannelScanResult result_for(phy::Band band, int number, double util, int neighbors) {
  ChannelScanResult r;
  r.channel = *phy::ChannelPlan::us().find(band, number);
  r.counters.cycle_us = 1'000'000;
  r.counters.busy_us = static_cast<std::int64_t>(util * 1e6);
  r.neighbor_count = neighbors;
  return r;
}

TEST(Planner, PicksLeastUtilized) {
  const std::vector<ChannelScanResult> results{
      result_for(phy::Band::k2_4GHz, 1, 0.40, 2),
      result_for(phy::Band::k2_4GHz, 6, 0.10, 9),
      result_for(phy::Band::k2_4GHz, 11, 0.30, 1),
  };
  PlannerPolicy policy;
  const auto rec = recommend_channel(results, phy::Band::k2_4GHz, policy);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->channel.number, 6);  // busy counter beats network count
  EXPECT_DOUBLE_EQ(rec->utilization, 0.10);
}

TEST(Planner, NaiveBaselinePicksFewestNetworks) {
  const std::vector<ChannelScanResult> results{
      result_for(phy::Band::k2_4GHz, 1, 0.40, 2),
      result_for(phy::Band::k2_4GHz, 6, 0.10, 9),
      result_for(phy::Band::k2_4GHz, 11, 0.30, 1),
  };
  PlannerPolicy policy;
  policy.strategy = PlannerStrategy::kFewestNetworks;
  const auto rec = recommend_channel(results, phy::Band::k2_4GHz, policy);
  ASSERT_TRUE(rec.has_value());
  // The naive pick lands on a channel that is actually 3x busier —
  // the paper's Figures 7/8 point.
  EXPECT_EQ(rec->channel.number, 11);
}

TEST(Planner, DfsExclusion) {
  const std::vector<ChannelScanResult> results{
      result_for(phy::Band::k5GHz, 36, 0.20, 3),
      result_for(phy::Band::k5GHz, 52, 0.01, 0),  // DFS
  };
  PlannerPolicy allow;
  EXPECT_EQ(recommend_channel(results, phy::Band::k5GHz, allow)->channel.number, 52);
  PlannerPolicy deny;
  deny.allow_dfs = false;
  EXPECT_EQ(recommend_channel(results, phy::Band::k5GHz, deny)->channel.number, 36);
}

TEST(Planner, HysteresisKeepsIncumbent) {
  const std::vector<ChannelScanResult> results{
      result_for(phy::Band::k2_4GHz, 1, 0.22, 2),
      result_for(phy::Band::k2_4GHz, 6, 0.20, 2),
  };
  PlannerPolicy policy;
  policy.min_improvement = 0.05;
  const auto current = phy::ChannelPlan::us().find(phy::Band::k2_4GHz, 1);
  const auto rec = recommend_channel(results, phy::Band::k2_4GHz, policy, current);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->channel.number, 1);  // 2-point gain is below the threshold
  EXPECT_FALSE(rec->switched);
}

TEST(Planner, SwitchesPastHysteresisThreshold) {
  const std::vector<ChannelScanResult> results{
      result_for(phy::Band::k2_4GHz, 1, 0.50, 2),
      result_for(phy::Band::k2_4GHz, 6, 0.10, 2),
  };
  PlannerPolicy policy;
  const auto current = phy::ChannelPlan::us().find(phy::Band::k2_4GHz, 1);
  const auto rec = recommend_channel(results, phy::Band::k2_4GHz, policy, current);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->channel.number, 6);
  EXPECT_TRUE(rec->switched);
}

TEST(Planner, EmptyAndWrongBand) {
  PlannerPolicy policy;
  EXPECT_FALSE(recommend_channel({}, phy::Band::k2_4GHz, policy).has_value());
  const std::vector<ChannelScanResult> only5{result_for(phy::Band::k5GHz, 36, 0.1, 1)};
  EXPECT_FALSE(recommend_channel(only5, phy::Band::k2_4GHz, policy).has_value());
}

TEST(Planner, RationaleMentionsStrategy) {
  const std::vector<ChannelScanResult> results{result_for(phy::Band::k2_4GHz, 6, 0.1, 2)};
  PlannerPolicy policy;
  const auto rec = recommend_channel(results, phy::Band::k2_4GHz, policy);
  ASSERT_TRUE(rec.has_value());
  EXPECT_NE(rec->rationale.find("least-utilization"), std::string::npos);
  EXPECT_NE(rec->rationale.find("ch6"), std::string::npos);
}

TEST(Planner, AverageWindowsAggregates) {
  std::vector<std::vector<ChannelScanResult>> windows;
  windows.push_back({result_for(phy::Band::k2_4GHz, 1, 0.10, 2)});
  windows.push_back({result_for(phy::Band::k2_4GHz, 1, 0.30, 4)});
  const auto avg = average_windows(windows);
  ASSERT_EQ(avg.size(), 1u);
  EXPECT_NEAR(avg[0].counters.utilization(), 0.20, 1e-9);  // pooled counters
  EXPECT_EQ(avg[0].neighbor_count, 3);
}

}  // namespace
}  // namespace wlm::scan
