#include "scan/dfs.hpp"

#include <gtest/gtest.h>

namespace wlm::scan {
namespace {

const phy::Channel& ch(int number) {
  static phy::Channel c;
  c = *phy::ChannelPlan::us().find(phy::Band::k5GHz, number);
  return c;
}

TEST(Dfs, NonDfsChannelsAlwaysAvailable) {
  DfsMonitor monitor;
  Rng rng(1);
  EXPECT_TRUE(monitor.is_available(ch(36), SimTime::epoch()));
  // Occupying a non-DFS channel never fires radar.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(monitor.occupy(ch(36), SimTime::epoch(), Duration::hours(100), rng));
  }
  EXPECT_EQ(monitor.activation_delay(ch(36)), Duration{});
}

TEST(Dfs, RadarBlocksForNonOccupancyPeriod) {
  DfsPolicy policy;
  policy.radar_prob_per_hour = 1.0;  // certain detection
  DfsMonitor monitor(policy);
  Rng rng(2);
  const auto radar = monitor.occupy(ch(52), SimTime::epoch(), Duration::hours(24), rng);
  ASSERT_TRUE(radar.has_value());
  EXPECT_FALSE(monitor.is_available(ch(52), *radar));
  EXPECT_FALSE(monitor.is_available(ch(52), *radar + Duration::minutes(29)));
  EXPECT_TRUE(monitor.is_available(ch(52), *radar + Duration::minutes(31)));
  EXPECT_EQ(monitor.detections(), 1u);
  // Other DFS channels are unaffected.
  EXPECT_TRUE(monitor.is_available(ch(100), *radar));
}

TEST(Dfs, DetectionRateTracksPolicy) {
  DfsPolicy policy;
  policy.radar_prob_per_hour = 0.1;
  DfsMonitor monitor(policy);
  Rng rng(3);
  int detections = 0;
  const int trials = 20'000;
  for (int i = 0; i < trials; ++i) {
    if (monitor.occupy(ch(120), SimTime::epoch() + Duration::days(i), Duration::hours(1),
                       rng)) {
      ++detections;
    }
  }
  EXPECT_NEAR(static_cast<double>(detections) / trials, 0.1, 0.01);
}

TEST(Dfs, CacOnlyOnDfsChannels) {
  DfsMonitor monitor;
  EXPECT_GT(monitor.activation_delay(ch(64)), Duration{});
  EXPECT_EQ(monitor.activation_delay(ch(149)), Duration{});
}

namespace agent {

std::vector<ChannelScanResult> flat_scan(double util_52 = 0.05) {
  std::vector<ChannelScanResult> scan;
  for (const auto& channel : phy::ChannelPlan::us().band_channels(phy::Band::k5GHz)) {
    ChannelScanResult r;
    r.channel = channel;
    r.counters.cycle_us = 1'000'000;
    r.counters.busy_us =
        static_cast<std::int64_t>((channel.number == 52 ? util_52 : 0.10) * 1e6);
    scan.push_back(r);
  }
  return scan;
}

}  // namespace agent

TEST(AutoChannel, StaysPutWhenQuiet) {
  AutoChannelAgent ap(*phy::ChannelPlan::us().find(phy::Band::k5GHz, 36), PlannerPolicy{},
                      DfsPolicy{});
  Rng rng(5);
  // Channel 36 is not the quietest (52 is), but hysteresis defaults apply
  // only within min_improvement; 5 points should trigger a switch.
  const bool switched = ap.tick(SimTime::epoch(), Duration::minutes(3),
                                agent::flat_scan(0.02), rng);
  EXPECT_TRUE(switched);
  EXPECT_EQ(ap.current().number, 52);
}

TEST(AutoChannel, RadarEvacuatesImmediately) {
  DfsPolicy hot;
  hot.radar_prob_per_hour = 1.0;
  AutoChannelAgent ap(*phy::ChannelPlan::us().find(phy::Band::k5GHz, 52), PlannerPolicy{},
                      hot);
  Rng rng(7);
  const bool switched =
      ap.tick(SimTime::epoch(), Duration::hours(10), agent::flat_scan(), rng);
  EXPECT_TRUE(switched);
  EXPECT_NE(ap.current().number, 52);
  EXPECT_EQ(ap.radar_evacuations(), 1u);
  EXPECT_GE(ap.switches(), 1u);
}

TEST(AutoChannel, FleetDriftsAwayFromDfsUnderRadarPressure) {
  // The Figure 2 mechanism: with realistic radar pressure, auto-channel
  // fleets end up concentrated in the DFS-free bands.
  DfsPolicy pressure;
  pressure.radar_prob_per_hour = 0.05;
  Rng rng(11);
  int on_dfs_start = 0;
  int on_dfs_end = 0;
  for (int a = 0; a < 200; ++a) {
    // Start everyone on a DFS channel.
    AutoChannelAgent ap(*phy::ChannelPlan::us().find(phy::Band::k5GHz, 100),
                        PlannerPolicy{}, pressure);
    ++on_dfs_start;
    SimTime t;
    for (int tick = 0; tick < 24 * 7; ++tick) {
      // Uniformly busy world: planning alone has no preference.
      auto scan = agent::flat_scan(0.10);
      (void)ap.tick(t, Duration::hours(1), scan, rng);
      t += Duration::hours(1);
    }
    on_dfs_end += ap.current().requires_dfs;
  }
  EXPECT_EQ(on_dfs_start, 200);
  EXPECT_LT(on_dfs_end, 120);  // radar churn pushed a big share off DFS
}

}  // namespace
}  // namespace wlm::scan
