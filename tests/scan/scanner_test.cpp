#include "scan/scanner.hpp"

#include <gtest/gtest.h>

#include "phy/propagation.hpp"

namespace wlm::scan {
namespace {

mac::ActivitySource wifi(double rx_dbm, double duty) {
  mac::ActivitySource s;
  s.kind = mac::SourceKind::kWifi;
  s.rx_power = PowerDbm{rx_dbm};
  s.duty_cycle = duty;
  s.plcp_decode_prob = 1.0;
  return s;
}

ChannelActivity activity(double duty) {
  ChannelActivity a;
  a.channel = *phy::ChannelPlan::us().find(phy::Band::k2_4GHz, 6);
  a.sources.push_back(wifi(-70.0, duty));
  a.neighbor_count = 3;
  return a;
}

TEST(Mr16, ServingChannelUtilization) {
  const auto counters = measure_serving_channel(activity(0.3), Duration::minutes(5), 0.0,
                                                phy::noise_floor(20.0));
  EXPECT_EQ(counters.cycle_us, Duration::minutes(5).as_micros());
  EXPECT_NEAR(counters.utilization(), 0.3, 1e-9);
}

TEST(Mr18, DefaultMatchesPaper) {
  const auto scanner = default_mr18_scanner();
  EXPECT_EQ(scanner.dwell(), Duration::millis(5));
  EXPECT_EQ(scanner.window(), Duration::minutes(3));
}

TEST(Mr18, ScansEveryChannel) {
  const auto scanner = default_mr18_scanner();
  std::vector<ChannelActivity> activities;
  for (const auto& ch : phy::ChannelPlan::us().channels()) {
    ChannelActivity a;
    a.channel = ch;
    activities.push_back(a);
  }
  Rng rng(3);
  const auto results = scanner.scan_window(activities, phy::noise_floor(20.0), rng);
  EXPECT_EQ(results.size(), activities.size());
}

TEST(Mr18, UtilizationConvergesToDuty) {
  const Mr18Scanner scanner(Duration::millis(5), Duration::minutes(3),
                            /*max_dwells_per_channel=*/200);
  std::vector<ChannelActivity> activities{activity(0.25)};
  Rng rng(7);
  // Average several windows: sampled dwells are noisy individually.
  double total = 0.0;
  const int windows = 30;
  for (int i = 0; i < windows; ++i) {
    const auto results = scanner.scan_window(activities, phy::noise_floor(20.0), rng);
    total += results[0].counters.utilization();
  }
  EXPECT_NEAR(total / windows, 0.25, 0.03);
}

TEST(Mr18, CycleTimeScalesToFullDwellBudget) {
  const auto scanner = default_mr18_scanner();
  std::vector<ChannelActivity> activities{activity(0.1), activity(0.2)};
  Rng rng(9);
  const auto results = scanner.scan_window(activities, phy::noise_floor(20.0), rng);
  // Two channels share the 3-minute window: each listens ~90 s.
  for (const auto& r : results) {
    EXPECT_NEAR(static_cast<double>(r.counters.cycle_us), 90e6, 5e6);
  }
}

TEST(Mr18, NeighborCountPassesThrough) {
  const auto scanner = default_mr18_scanner();
  Rng rng(11);
  const auto results = scanner.scan_window({activity(0.1)}, phy::noise_floor(20.0), rng);
  EXPECT_EQ(results[0].neighbor_count, 3);
}

TEST(Mr18, QuietChannelReadsZero) {
  const auto scanner = default_mr18_scanner();
  ChannelActivity quiet;
  quiet.channel = *phy::ChannelPlan::us().find(phy::Band::k5GHz, 100);
  Rng rng(13);
  const auto results = scanner.scan_window({quiet}, phy::noise_floor(20.0), rng);
  EXPECT_EQ(results[0].counters.busy_us, 0);
  EXPECT_DOUBLE_EQ(results[0].counters.utilization(), 0.0);
}

}  // namespace
}  // namespace wlm::scan
