#include "scan/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wlm::scan {
namespace {

TEST(Fft, PowerOfTwoCheck) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(4096));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(1000));
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<std::complex<double>> data(64, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  fft_inplace(data);
  for (const auto& bin : data) {
    EXPECT_NEAR(std::abs(bin), 1.0, 1e-9);
  }
}

TEST(Fft, DcGivesSingleBin) {
  std::vector<std::complex<double>> data(64, {1.0, 0.0});
  fft_inplace(data);
  EXPECT_NEAR(std::abs(data[0]), 64.0, 1e-9);
  for (std::size_t i = 1; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-9);
  }
}

TEST(Fft, ComplexToneLandsInExactBin) {
  const std::size_t n = 256;
  const int k = 37;
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = 2.0 * M_PI * k * static_cast<double>(i) / n;
    data[i] = {std::cos(ph), std::sin(ph)};
  }
  fft_inplace(data);
  EXPECT_NEAR(std::abs(data[k]), static_cast<double>(n), 1e-6);
  EXPECT_NEAR(std::abs(data[k + 1]), 0.0, 1e-6);
}

TEST(Fft, ParsevalHolds) {
  Rng rng(3);
  std::vector<std::complex<double>> data(128);
  double time_energy = 0.0;
  for (auto& v : data) {
    v = {rng.normal(), rng.normal()};
    time_energy += std::norm(v);
  }
  fft_inplace(data);
  double freq_energy = 0.0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 128.0, time_energy, time_energy * 1e-9);
}

TEST(Psd, ToneAppearsAtShiftedOffset) {
  // A +4 MHz tone at 32 MHz sampling lands right of center after fft-shift.
  const std::size_t n = 1024;
  std::vector<std::complex<double>> iq(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = 2.0 * M_PI * (4.0 / 32.0) * static_cast<double>(i);
    iq[i] = {std::cos(ph), std::sin(ph)};
  }
  const auto psd = psd_db(iq);
  const auto peak =
      std::max_element(psd.begin(), psd.end()) - psd.begin();
  const auto expected = static_cast<std::ptrdiff_t>(n / 2 + n * 4 / 32);
  EXPECT_NEAR(static_cast<double>(peak), static_cast<double>(expected), 2.0);
}

TEST(Spectrum, Figure11ScenesOrdering) {
  SpectrumConfig config;
  config.slices = 16;  // keep the test fast
  Rng rng24(1);
  const auto wf24 = capture_spectrum(config, figure11_scene_2_4ghz(), rng24);
  Rng rng5(2);
  const auto wf5 = capture_spectrum(config, figure11_scene_5ghz(), rng5);
  const double occ24 = occupied_fraction(wf24, config.noise_floor_db);
  const double occ5 = occupied_fraction(wf5, config.noise_floor_db);
  // Paper: 2.4 GHz ~22% busy, 5 GHz ~2%: an order-of-magnitude gap.
  EXPECT_GT(occ24, occ5 * 2.0);
  EXPECT_GT(occ24, 0.10);
  EXPECT_LT(occ5, 0.40);
}

TEST(Spectrum, WaterfallShapeMatchesConfig) {
  SpectrumConfig config;
  config.fft_size = 512;
  config.slices = 8;
  Rng rng(5);
  const auto wf = capture_spectrum(config, figure11_scene_2_4ghz(), rng);
  EXPECT_EQ(wf.rows_db.size(), 8u);
  for (const auto& row : wf.rows_db) EXPECT_EQ(row.size(), 512u);
  EXPECT_EQ(wf.average_db.size(), 512u);
}

TEST(Spectrum, NoiseOnlyFloorIsQuiet) {
  SpectrumConfig config;
  config.fft_size = 512;
  config.slices = 8;
  Rng rng(7);
  const auto wf = capture_spectrum(config, {}, rng);
  EXPECT_LT(occupied_fraction(wf, config.noise_floor_db, 10.0), 0.05);
}

TEST(Spectrum, OfdmBurstOccupiesItsBand) {
  SpectrumConfig config;
  config.fft_size = 1024;
  config.slices = 12;
  SpectralSource src;
  src.kind = SpectralSource::Kind::kOfdm;
  src.center_offset_mhz = 0.0;
  src.occupied_mhz = 20.0;
  src.power_db = 30.0;
  src.duty_cycle = 1.0;
  Rng rng(9);
  const auto wf = capture_spectrum(config, {{src}}, rng);
  // 20 of 32 MHz occupied -> ~60% of bins hot.
  const double occ = occupied_fraction(wf, config.noise_floor_db, 10.0);
  EXPECT_NEAR(occ, 20.0 / 32.0, 0.12);
}

}  // namespace
}  // namespace wlm::scan
