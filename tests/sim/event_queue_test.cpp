#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace wlm::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime::from_micros(300), [&](SimTime) { order.push_back(3); });
  q.schedule_at(SimTime::from_micros(100), [&](SimTime) { order.push_back(1); });
  q.schedule_at(SimTime::from_micros(200), [&](SimTime) { order.push_back(2); });
  q.run_until(SimTime::from_micros(1000));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, SimultaneousEventsStable) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(SimTime::from_micros(100), [&, i](SimTime) { order.push_back(i); });
  }
  q.run_until(SimTime::from_micros(100));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(SimTime::from_micros(100), [&](SimTime) { ++fired; });
  q.schedule_at(SimTime::from_micros(200), [&](SimTime) { ++fired; });
  q.run_until(SimTime::from_micros(150));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.now(), SimTime::from_micros(150));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int chain = 0;
  q.schedule_at(SimTime::from_micros(10), [&](SimTime) {
    ++chain;
    q.schedule_in(Duration::micros(10), [&](SimTime) { ++chain; });
  });
  q.run_until(SimTime::from_micros(100));
  EXPECT_EQ(chain, 2);
}

TEST(EventQueue, PeriodicFiresUntilDeadline) {
  EventQueue q;
  std::vector<std::int64_t> times;
  q.schedule_every(Duration::seconds(15), SimTime::from_micros(Duration::seconds(70).as_micros()),
                   [&](SimTime t) { times.push_back(t.as_micros()); });
  q.run_until(SimTime::from_micros(Duration::minutes(5).as_micros()));
  ASSERT_EQ(times.size(), 4u);  // 15, 30, 45, 60 s
  EXPECT_EQ(times[0], Duration::seconds(15).as_micros());
  EXPECT_EQ(times[3], Duration::seconds(60).as_micros());
}

TEST(EventQueue, ClearDropsPending) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(SimTime::from_micros(100), [&](SimTime) { ++fired; });
  q.clear();
  q.run_until(SimTime::from_micros(1000));
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CallbackReceivesFiringTime) {
  EventQueue q;
  SimTime seen;
  q.schedule_at(SimTime::from_micros(12345), [&](SimTime t) { seen = t; });
  q.run_until(SimTime::from_micros(20000));
  EXPECT_EQ(seen, SimTime::from_micros(12345));
}

}  // namespace
}  // namespace wlm::sim
