#include "sim/fleet_runner.hpp"

#include <gtest/gtest.h>

#include "core/checksum.hpp"
#include "wire/messages.hpp"

namespace wlm::sim {
namespace {

WorldConfig small_fleet(int networks = 12, std::uint64_t seed = 11, int threads = 1) {
  WorldConfig cfg;
  cfg.fleet.epoch = deploy::Epoch::kJan2015;
  cfg.fleet.network_count = networks;
  cfg.fleet.seed = seed;
  cfg.seed = seed + 1;
  cfg.threads = threads;
  return cfg;
}

/// Byte-exact digest of the whole store: every report re-encoded with the
/// real wire codec, walked in sorted-AP order so the digest is a pure
/// function of content, not of hash-map iteration.
std::uint32_t store_digest(backend::ReportStore& store) {
  std::uint32_t crc = 0;
  for (const ApId ap : store.aps()) {
    for (const auto& report : store.reports_for(ap)) {
      const auto bytes = wire::encode_report(report);
      crc = crc32_update(crc, bytes);
    }
  }
  return crc;
}

std::uint32_t run_campaigns_and_digest(const WorldConfig& cfg) {
  FleetRunner runner(cfg);
  runner.run_usage_week(/*reports_per_week=*/7);
  runner.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
  runner.run_link_windows(SimTime::epoch() + Duration::hours(14));
  runner.snapshot_clients(SimTime::epoch() + Duration::hours(20));
  runner.harvest();
  return store_digest(runner.store());
}

TEST(FleetRunner, StructureMatchesFleet) {
  FleetRunner runner(small_fleet());
  EXPECT_EQ(runner.shards().size(), runner.fleet().networks.size());
  EXPECT_EQ(static_cast<int>(runner.aps().size()), runner.fleet().total_aps());
  std::size_t shard_links = 0;
  for (const auto& shard : runner.shards()) shard_links += shard->links().size();
  EXPECT_EQ(runner.mesh_links().size(), shard_links);
  for (const auto& ap : runner.aps()) {
    EXPECT_EQ(runner.find_ap(ap.id()), &ap);
  }
}

TEST(FleetRunner, OutputBitIdenticalAcrossThreadCounts) {
  // The determinism contract: the merged store is byte-identical whether
  // campaigns ran serially or on a worker pool.
  const std::uint32_t serial = run_campaigns_and_digest(small_fleet(12, 11, 1));
  const std::uint32_t parallel4 = run_campaigns_and_digest(small_fleet(12, 11, 4));
  const std::uint32_t parallel3 = run_campaigns_and_digest(small_fleet(12, 11, 3));
  EXPECT_EQ(serial, parallel4);
  EXPECT_EQ(serial, parallel3);
}

TEST(FleetRunner, SeedChangesOutput) {
  EXPECT_NE(run_campaigns_and_digest(small_fleet(12, 11)),
            run_campaigns_and_digest(small_fleet(12, 12)));
}

TEST(FleetRunner, FlappedTunnelsSurviveShardedHarvest) {
  // Paper §2: a flapped WAN tunnel queues reports device-side and the
  // backend catches up when the connection returns. A sharded, parallel
  // harvest must not drop that backlog — flapped tunnels stay down until
  // harvest reconnects them, so every enqueued report lands in the store.
  auto count_reports = [](double flap_fraction, int threads) {
    WorldConfig cfg = small_fleet(10, 21, threads);
    cfg.wan_flap_fraction = flap_fraction;
    FleetRunner runner(cfg);
    runner.run_usage_week(/*reports_per_week=*/7);
    runner.harvest();
    return runner.store().report_count();
  };
  const std::size_t clean = count_reports(0.0, 1);
  EXPECT_GT(clean, 0u);
  EXPECT_EQ(count_reports(0.9, 1), clean);
  EXPECT_EQ(count_reports(0.9, 4), clean);
}

TEST(FleetRunner, HarvestDrainsEveryTunnel) {
  FleetRunner runner(small_fleet());
  runner.run_usage_week(7);
  runner.harvest();
  for (const auto& ap : runner.aps()) {
    EXPECT_EQ(ap.tunnel().queued(), 0u);
  }
  // Shard-local stores were moved into the global store.
  for (const auto& shard : runner.shards()) {
    EXPECT_EQ(shard->store().report_count(), 0u);
  }
}

TEST(FleetRunner, ShardRngsAreSubstreamsOfBaseSeed) {
  FleetRunner runner(small_fleet(4, 33));
  for (const auto& shard : runner.shards()) {
    Rng expected = Rng::substream(33 + 1, shard->id().value());
    // The shard consumed draws during construction; fresh substreams from
    // the same derivation must agree with each other instead.
    Rng again = Rng::substream(33 + 1, shard->id().value());
    EXPECT_EQ(expected.next_u64(), again.next_u64());
  }
}

}  // namespace
}  // namespace wlm::sim
