#include "sim/link.hpp"

#include <gtest/gtest.h>

namespace wlm::sim {
namespace {

MeshLink link_with_rx(double rx_dbm, phy::Band band = phy::Band::k2_4GHz,
                      std::uint64_t seed = 3) {
  return MeshLink{ApId{1}, ApId{2}, LinkBudget{rx_dbm, band}, Rng{seed}};
}

TEST(MeshLink, StrongLinkDeliversCleanAir) {
  MeshLink link = link_with_rx(-55.0);
  ProbeOutcomeModel model;  // no interference
  const auto window = link.measure_window(model);
  EXPECT_EQ(window.expected, 20);
  EXPECT_GE(window.received, 19);
}

TEST(MeshLink, HopelessLinkDeliversNothing) {
  MeshLink link = link_with_rx(-105.0);
  ProbeOutcomeModel model;
  const auto window = link.measure_window(model);
  EXPECT_LE(window.received, 1);
}

TEST(MeshLink, DeliveryMonotonicInBudget) {
  ProbeOutcomeModel model;
  double last = -0.01;
  for (double rx : {-100.0, -94.0, -90.0, -86.0, -80.0, -70.0}) {
    MeshLink link = link_with_rx(rx, phy::Band::k2_4GHz, 7);
    double total = 0.0;
    for (int i = 0; i < 50; ++i) total += link.measure_window(model).ratio();
    const double mean = total / 50.0;
    EXPECT_GE(mean, last - 0.05) << "rx " << rx;
    last = mean;
  }
}

TEST(MeshLink, InterferenceDegradesDelivery) {
  ProbeOutcomeModel quiet;
  ProbeOutcomeModel busy;
  busy.receiver_utilization = 0.5;
  MeshLink a = link_with_rx(-60.0, phy::Band::k2_4GHz, 9);
  MeshLink b = link_with_rx(-60.0, phy::Band::k2_4GHz, 9);
  double quiet_total = 0.0;
  double busy_total = 0.0;
  for (int i = 0; i < 40; ++i) {
    quiet_total += a.measure_window(quiet).ratio();
    busy_total += b.measure_window(busy).ratio();
  }
  EXPECT_GT(quiet_total, busy_total + 2.0);
}

TEST(MeshLink, MarginalLinkIsIntermediate) {
  // Near the DSSS-1 threshold, fading makes windows land strictly between
  // 0 and 1 most of the time — the paper's core observation.
  MeshLink link = link_with_rx(-89.0, phy::Band::k2_4GHz, 11);
  ProbeOutcomeModel model;
  model.receiver_utilization = 0.25;
  int intermediate = 0;
  for (int i = 0; i < 60; ++i) {
    const auto r = link.measure_window(model).ratio();
    if (r > 0.02 && r < 0.98) ++intermediate;
  }
  EXPECT_GT(intermediate, 30);
}

TEST(MeshLink, HiddenFractionDefaultsByBand) {
  EXPECT_GT(ProbeOutcomeModel::default_hidden_fraction(phy::Band::k2_4GHz),
            ProbeOutcomeModel::default_hidden_fraction(phy::Band::k5GHz));
}

TEST(ComputeLinkBudget, DistanceAndWallsReduceRx) {
  phy::PathLossModel model;
  model.shadowing_sigma_db = 0.0;  // deterministic for the comparison
  Rng rng(3);
  const auto near = compute_link_budget({0, 0}, {10, 0}, 0, phy::Band::k2_4GHz, 23.0,
                                        model, rng);
  const auto far = compute_link_budget({0, 0}, {60, 0}, 0, phy::Band::k2_4GHz, 23.0,
                                       model, rng);
  const auto walled = compute_link_budget({0, 0}, {10, 0}, 4, phy::Band::k2_4GHz, 23.0,
                                          model, rng);
  EXPECT_GT(near.median_rx_dbm, far.median_rx_dbm);
  EXPECT_GT(near.median_rx_dbm, walled.median_rx_dbm);
}

TEST(ComputeLinkBudget, FiveGhzLosesMoreOverAir) {
  phy::PathLossModel model;
  model.shadowing_sigma_db = 0.0;
  Rng rng(5);
  const auto b24 =
      compute_link_budget({0, 0}, {30, 0}, 0, phy::Band::k2_4GHz, 24.0, model, rng);
  const auto b5 =
      compute_link_budget({0, 0}, {30, 0}, 0, phy::Band::k5GHz, 24.0, model, rng);
  // Higher frequency loses ~6.7 dB more, partly offset by +2 dB antennas.
  EXPECT_GT(b24.median_rx_dbm, b5.median_rx_dbm);
}

}  // namespace
}  // namespace wlm::sim
