// Fleet-level byte-identity between the scalar kReference PER path and the
// kTable lookup fast path, across worker counts — the acceptance gate for
// the hot-path rewrite. Rendered paper artifacts (Table 2/3, Figure 3/6),
// the `wlmctl stats` Prometheus export, and campaign checkpoint bytes must
// all be byte-for-byte identical for every (per_mode, jobs) combination;
// "close" is a failure.
//
// Carries the `perf` ctest label: it replays several small fleets end to
// end, so the sanitizer lanes in tools/ci.sh exclude it (like `slow`).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "ckpt/campaign.hpp"
#include "sim/world.hpp"
#include "telemetry/export.hpp"

namespace wlm {
namespace {

analysis::ScenarioScale scale_for(phy::PerMode mode, int threads) {
  analysis::ScenarioScale scale;
  scale.networks = 10;
  scale.seed = 2015;
  scale.threads = threads;
  scale.per_mode = mode;
  return scale;
}

TEST(PerModeIdentity, RendersIdenticalAcrossModes) {
  const auto ref = scale_for(phy::PerMode::kReference, 1);
  const auto tab = scale_for(phy::PerMode::kTable, 1);

  EXPECT_EQ(analysis::render_table2(ref), analysis::render_table2(tab));

  const auto usage_ref = analysis::run_usage_study(ref);
  const auto usage_tab = analysis::run_usage_study(tab);
  EXPECT_EQ(analysis::render_table3(usage_ref), analysis::render_table3(usage_tab));

  const auto link_ref = analysis::run_link_study(ref);
  const auto link_tab = analysis::run_link_study(tab);
  EXPECT_EQ(analysis::render_fig3(link_ref), analysis::render_fig3(link_tab));

  const auto util_ref = analysis::run_utilization_study(ref);
  const auto util_tab = analysis::run_utilization_study(tab);
  EXPECT_EQ(analysis::render_fig6(util_ref), analysis::render_fig6(util_tab));
}

TEST(PerModeIdentity, StatsExportAndCheckpointIdenticalAcrossModesAndJobs) {
  // The full cross product {reference, table} x {1, 2, 8 workers} must
  // produce one identical metrics export and one identical checkpoint byte
  // stream. Mirrors what `wlmctl stats --jobs N` prints to stdout.
  std::string baseline_stats;
  std::vector<std::uint8_t> baseline_ckpt;
  bool have_baseline = false;

  for (const auto mode : {phy::PerMode::kReference, phy::PerMode::kTable}) {
    for (const int jobs : {1, 2, 8}) {
      sim::WorldConfig cfg;
      cfg.fleet.epoch = deploy::Epoch::kJan2015;
      cfg.fleet.network_count = 8;
      cfg.fleet.seed = 2015;
      cfg.seed = 2015;
      cfg.per_mode = mode;
      cfg.threads = jobs;
      sim::World world(cfg);
      world.run_usage_week();
      world.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
      world.harvest(sim::HarvestMode::kFinal);

      const std::string stats = telemetry::to_prometheus(world.metrics());
      ckpt::CampaignProgress progress;
      progress.phases_done = {"usage_week", "mr16", "harvest"};
      const auto ckpt_bytes = ckpt::save_campaign(world.runner(), progress);
      ASSERT_FALSE(ckpt_bytes.empty());

      if (!have_baseline) {
        baseline_stats = stats;
        baseline_ckpt = ckpt_bytes;
        have_baseline = true;
        continue;
      }
      EXPECT_EQ(stats, baseline_stats)
          << "stats diverge: mode=" << phy::per_mode_name(mode) << " jobs=" << jobs;
      EXPECT_EQ(ckpt_bytes, baseline_ckpt)
          << "checkpoint diverges: mode=" << phy::per_mode_name(mode) << " jobs=" << jobs;
    }
  }
}

}  // namespace
}  // namespace wlm
