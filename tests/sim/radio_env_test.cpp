#include "sim/radio_env.hpp"

#include <gtest/gtest.h>

#include "phy/propagation.hpp"
#include "scan/scanner.hpp"

namespace wlm::sim {
namespace {

deploy::NeighborInfo neighbor(int channel, double rssi, phy::Band band = phy::Band::k2_4GHz) {
  deploy::NeighborInfo n;
  n.band = band;
  n.channel = channel;
  n.rssi_dbm = rssi;
  n.ssid_count = 1;
  n.day_duty = 0.10;
  n.night_duty = 0.02;
  return n;
}

const phy::Channel& ch(phy::Band band, int number) {
  static phy::Channel result;
  result = *phy::ChannelPlan::us().find(band, number);
  return result;
}

TEST(RadioEnv, CoChannelNeighborIsDecodableWifi) {
  deploy::NeighborEnvironment env;
  env.neighbors.push_back(neighbor(6, -70.0));
  RadioEnvironment radio(&env, {});
  const auto activity = radio.activity_on(ch(phy::Band::k2_4GHz, 6), 12.0);
  // One neighbor yields a beacon source plus a (bursty) data source.
  ASSERT_EQ(activity.sources.size(), 2u);
  for (const auto& src : activity.sources) {
    EXPECT_EQ(src.kind, mac::SourceKind::kWifi);
    EXPECT_GT(src.plcp_decode_prob, 0.9);
  }
  EXPECT_DOUBLE_EQ(activity.sources[0].window_active_prob, 1.0);  // beacons
  EXPECT_LT(activity.sources[1].window_active_prob, 1.0);         // data bursts
  EXPECT_EQ(activity.neighbor_count, 1);
}

TEST(RadioEnv, AdjacentChannelIsCorruptEnergy) {
  deploy::NeighborEnvironment env;
  env.neighbors.push_back(neighbor(6, -60.0));
  RadioEnvironment radio(&env, {});
  const auto activity = radio.activity_on(ch(phy::Band::k2_4GHz, 8), 12.0);
  ASSERT_EQ(activity.sources.size(), 2u);
  for (const auto& src : activity.sources) {
    EXPECT_EQ(src.kind, mac::SourceKind::kWifiCorrupt);
  }
  EXPECT_EQ(activity.neighbor_count, 0);  // not decodable here
}

TEST(RadioEnv, DisjointChannelInvisible) {
  deploy::NeighborEnvironment env;
  env.neighbors.push_back(neighbor(1, -50.0));
  RadioEnvironment radio(&env, {});
  const auto activity = radio.activity_on(ch(phy::Band::k2_4GHz, 11), 12.0);
  EXPECT_TRUE(activity.sources.empty());
}

TEST(RadioEnv, DayDutyExceedsNight) {
  deploy::NeighborEnvironment env;
  env.neighbors.push_back(neighbor(6, -70.0));
  RadioEnvironment radio(&env, {});
  const auto day = radio.activity_on(ch(phy::Band::k2_4GHz, 6), 10.0);
  const auto night = radio.activity_on(ch(phy::Band::k2_4GHz, 6), 22.0);
  auto total_duty = [](const scan::ChannelActivity& a) {
    double d = 0.0;
    for (const auto& s : a.sources) d += s.duty_cycle;
    return d;
  };
  EXPECT_GT(total_duty(day), total_duty(night));
}

TEST(RadioEnv, BeaconDutyAlwaysPresent) {
  deploy::NeighborEnvironment env;
  auto quiet = neighbor(6, -70.0);
  quiet.day_duty = 0.0;
  quiet.night_duty = 0.0;
  env.neighbors.push_back(quiet);
  RadioEnvironment radio(&env, {});
  const auto activity = radio.activity_on(ch(phy::Band::k2_4GHz, 6), 3.0);
  EXPECT_GT(activity.sources[0].duty_cycle, 0.003);  // one beacon per 102.4 ms
}

TEST(RadioEnv, LegacyBeaconsCostMoreDuty) {
  deploy::NeighborEnvironment env;
  auto legacy = neighbor(6, -70.0);
  legacy.legacy_11b = true;
  legacy.day_duty = 0.0;
  env.neighbors.push_back(legacy);
  auto modern = neighbor(6, -70.0);
  modern.day_duty = 0.0;
  deploy::NeighborEnvironment env2;
  env2.neighbors.push_back(modern);
  RadioEnvironment r1(&env, {});
  RadioEnvironment r2(&env2, {});
  EXPECT_GT(r1.activity_on(ch(phy::Band::k2_4GHz, 6), 12.0).sources[0].duty_cycle,
            5.0 * r2.activity_on(ch(phy::Band::k2_4GHz, 6), 12.0).sources[0].duty_cycle);
}

TEST(RadioEnv, FleetPeersAppearCoChannel) {
  deploy::NeighborEnvironment env;
  FleetPeer peer;
  peer.channel_24 = 6;
  peer.rx_power_24_dbm = -55.0;
  peer.tx_duty_24 = 0.05;
  RadioEnvironment radio(&env, {peer});
  const auto activity = radio.activity_on(ch(phy::Band::k2_4GHz, 6), 12.0);
  ASSERT_EQ(activity.sources.size(), 1u);
  EXPECT_EQ(activity.sources[0].kind, mac::SourceKind::kWifi);
  EXPECT_GT(activity.sources[0].duty_cycle, 0.05);
}

TEST(RadioEnv, NonWifiOnlyNearItsChannel) {
  deploy::NeighborEnvironment env;
  deploy::NonWifiInterferer mw;
  mw.band = phy::Band::k2_4GHz;
  mw.channel = 8;
  mw.rssi_dbm = -55.0;
  mw.day_duty = 0.02;
  env.interferers.push_back(mw);
  RadioEnvironment radio(&env, {});
  EXPECT_EQ(radio.activity_on(ch(phy::Band::k2_4GHz, 8), 12.0).sources.size(), 1u);
  EXPECT_EQ(radio.activity_on(ch(phy::Band::k2_4GHz, 1), 12.0).sources.size(), 0u);
}

TEST(RadioEnv, AudibleCountsRespectFloor) {
  deploy::NeighborEnvironment env;
  env.neighbors.push_back(neighbor(1, -70.0));
  env.neighbors.push_back(neighbor(6, -93.5));  // below the decode floor
  auto hotspot = neighbor(11, -80.0);
  hotspot.is_hotspot = true;
  env.neighbors.push_back(hotspot);
  env.neighbors.push_back(neighbor(36, -70.0, phy::Band::k5GHz));
  RadioEnvironment radio(&env, {});
  EXPECT_EQ(radio.audible_neighbors(phy::Band::k2_4GHz), 2);
  EXPECT_EQ(radio.audible_hotspots(phy::Band::k2_4GHz), 1);
  EXPECT_EQ(radio.audible_neighbors(phy::Band::k5GHz), 1);
}

TEST(RadioEnv, ActivitiesAllCoversPlan) {
  deploy::NeighborEnvironment env;
  RadioEnvironment radio(&env, {});
  const auto all = radio.activities_all(phy::ChannelPlan::us(), 12.0);
  EXPECT_EQ(all.size(), phy::ChannelPlan::us().channels().size());
}

TEST(IsDaytime, BusinessHours) {
  EXPECT_TRUE(is_daytime(10.0));
  EXPECT_TRUE(is_daytime(14.0));
  EXPECT_FALSE(is_daytime(22.0));
  EXPECT_FALSE(is_daytime(3.0));
}

}  // namespace
}  // namespace wlm::sim
