#include "sim/world.hpp"

#include <gtest/gtest.h>

#include "backend/aggregate.hpp"

namespace wlm::sim {
namespace {

WorldConfig small_world(int networks = 15, std::uint64_t seed = 5) {
  WorldConfig cfg;
  cfg.fleet.epoch = deploy::Epoch::kJan2015;
  cfg.fleet.network_count = networks;
  cfg.fleet.seed = seed;
  cfg.seed = seed + 1;
  return cfg;
}

TEST(World, ConstructionInvariants) {
  World world(small_world());
  EXPECT_EQ(static_cast<int>(world.aps().size()), world.fleet().total_aps());
  EXPECT_GT(world.client_count(), 100u);
  EXPECT_GT(world.mesh_links().size(), 0u);
  // Every mesh link references existing APs and was strong enough to track.
  for (auto& link : world.mesh_links()) {
    EXPECT_NE(link.from(), link.to());
    EXPECT_GE(link.median_rx_dbm(), -95.0);
  }
}

TEST(World, ClientsAssociatedWithPlausibleRssi) {
  World world(small_world());
  int clients = 0;
  for (const auto& ap : world.aps()) {
    for (const double rssi : ap.clients().rssi_at_ap_dbm()) {
      ++clients;
      EXPECT_GT(rssi, -115.0);
      EXPECT_LT(rssi, 0.0);
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(clients), world.client_count());
}

TEST(World, MajorityOfClientsOn24GHz) {
  // Paper Figure 1: ~80% of associated clients sit on 2.4 GHz.
  World world(small_world(40, 11));
  int on24 = 0;
  int total = 0;
  for (const auto& ap : world.aps()) {
    for (const phy::Band band : ap.clients().bands()) {
      ++total;
      on24 += band == phy::Band::k2_4GHz;
    }
  }
  ASSERT_GT(total, 500);
  const double frac = static_cast<double>(on24) / total;
  EXPECT_GT(frac, 0.6);
  EXPECT_LT(frac, 0.95);
}

TEST(World, UsageCampaignFlowsThroughPipeline) {
  World world(small_world());
  world.run_usage_week(/*reports_per_week=*/2);
  EXPECT_GT(world.flows_classified(), 100u);
  // Nothing reaches the store until harvest.
  EXPECT_EQ(world.store().report_count(), 0u);
  world.harvest();
  EXPECT_EQ(world.store().report_count(), world.aps().size() * 2);
  // Every tunnel fully drained.
  for (const auto& ap : world.aps()) EXPECT_EQ(ap.tunnel().queued(), 0u);
}

TEST(World, UsageBytesConservedThroughWire) {
  World world(small_world(10, 7));
  world.run_usage_week(7);
  world.harvest();
  backend::UsageAggregator agg;
  agg.consume(world.store(), SimTime::epoch(), SimTime::epoch() + Duration::days(8));
  // Every associated client that generated traffic appears exactly once.
  EXPECT_LE(agg.client_count(), world.client_count());
  EXPECT_GT(agg.client_count(), world.client_count() * 8 / 10);
  std::uint64_t total = 0;
  for (const auto& [mac, client] : agg.clients()) total += client.total();
  EXPECT_GT(total, 0u);
}

TEST(World, WanFlapLosesNothing) {
  auto cfg = small_world(10, 9);
  cfg.wan_flap_fraction = 0.5;
  World world(cfg);
  world.run_usage_week(3);
  world.harvest();  // reconnects and drains queues
  EXPECT_EQ(world.store().report_count(), world.aps().size() * 3);
  for (const auto& ap : world.aps()) {
    EXPECT_EQ(ap.tunnel().stats().frames_dropped, 0u);
  }
}

TEST(World, SnapshotCarriesCapabilitiesAndOs) {
  World world(small_world(40));
  world.snapshot_clients(SimTime::epoch() + Duration::hours(20));
  world.harvest();
  int snapshots = 0;
  int with_os = 0;
  world.store().for_each([&](const wire::ApReport& report) {
    for (const auto& snap : report.clients) {
      ++snapshots;
      with_os += snap.os_id != 0;
      EXPECT_NE(snap.capability_bits, 0u);
    }
  });
  // The instantaneous snapshot sees only in-session clients (the paper's
  // evening snapshot caught ~5% of the week's population); ours is larger
  // because clients_per_ap counts weekly *actives*.
  EXPECT_GT(snapshots, 0);
  EXPECT_LT(static_cast<std::size_t>(snapshots), world.client_count());
  // The OS detector should classify the overwhelming majority.
  EXPECT_GT(static_cast<double>(with_os) / snapshots, 0.75);
}

TEST(World, SnapshotLargerByDayThanNight) {
  World day_world(small_world(30, 41));
  day_world.snapshot_clients(SimTime::epoch() + Duration::hours(14));
  day_world.harvest();
  World night_world(small_world(30, 41));
  night_world.snapshot_clients(SimTime::epoch() + Duration::hours(3));
  night_world.harvest();
  auto count = [](World& w) {
    int n = 0;
    w.store().for_each(
        [&](const wire::ApReport& r) { n += static_cast<int>(r.clients.size()); });
    return n;
  };
  EXPECT_GT(count(day_world), count(night_world) * 2);
}

TEST(World, Mr16ReportsServingChannels) {
  World world(small_world());
  world.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
  world.harvest();
  world.store().for_each([&](const wire::ApReport& report) {
    EXPECT_EQ(report.utilization.size(), 2u);  // one per band
    for (const auto& u : report.utilization) {
      EXPECT_GT(u.cycle_us, 0u);
      EXPECT_LE(u.busy_us, u.cycle_us);
      EXPECT_LE(u.rx_frame_us, u.busy_us);
    }
  });
}

TEST(World, Mr18ScanCoversAllChannels) {
  auto cfg = small_world(5, 13);
  cfg.fleet.model = deploy::ApModel::kMr18;
  World world(cfg);
  world.run_mr18_scan(SimTime::epoch() + Duration::hours(10), 10.0);
  world.harvest();
  world.store().for_each([&](const wire::ApReport& report) {
    EXPECT_EQ(report.utilization.size(), phy::ChannelPlan::us().channels().size());
  });
}

TEST(World, LinkWindowsReportedByReceiver) {
  World world(small_world());
  world.run_link_windows(SimTime::epoch() + Duration::hours(14));
  world.harvest();
  std::size_t windows = 0;
  world.store().for_each([&](const wire::ApReport& report) {
    for (const auto& l : report.links) {
      ++windows;
      EXPECT_EQ(l.probes_expected, 20u);
      EXPECT_LE(l.probes_received, l.probes_expected);
    }
  });
  EXPECT_EQ(windows, world.mesh_links().size());
}

TEST(World, WeekSeriesHasDiurnalStructure) {
  World world(small_world(25, 17));
  ASSERT_GT(world.mesh_links().size(), 0u);
  const auto series = world.link_week_series(0, Duration::hours(2));
  EXPECT_EQ(series.size(), 7u * 12u);
  for (const auto& pt : series) {
    EXPECT_GE(pt.ratio, 0.0);
    EXPECT_LE(pt.ratio, 1.0);
  }
}

TEST(World, DeterministicAcrossRuns) {
  World a(small_world(8, 21));
  World b(small_world(8, 21));
  EXPECT_EQ(a.client_count(), b.client_count());
  EXPECT_EQ(a.mesh_links().size(), b.mesh_links().size());
  a.run_usage_week(1);
  b.run_usage_week(1);
  a.harvest();
  b.harvest();
  EXPECT_EQ(a.flows_classified(), b.flows_classified());
  EXPECT_EQ(a.flows_misclassified(), b.flows_misclassified());
}

TEST(World, RoamingClientsAppearOnMultipleAps) {
  // Paper SS2.3: the backend merges usage by MAC because phones roam.
  World world(small_world(25, 29));
  world.run_usage_week(2);
  world.harvest();
  backend::UsageAggregator agg;
  agg.consume(world.store(), SimTime::epoch(), SimTime::epoch() + Duration::days(8));
  int roamers = 0;
  for (const auto& [mac, client] : agg.clients()) {
    if (client.ap_count > 1) ++roamers;
  }
  // A meaningful share of the population roams (mobile devices).
  EXPECT_GT(roamers, static_cast<int>(agg.client_count() / 20));
}

TEST(World, UpdateSpikeInflatesReleaseDay) {
  traffic::UpdateSpike spike;
  spike.start = SimTime::epoch() + Duration::days(2);
  spike.duration = Duration::hours(12);
  spike.affects_windows = true;
  spike.download_multiplier = 10.0;

  World world(small_world(10, 31));
  world.run_usage_week(7, {spike});
  world.harvest();
  std::vector<double> daily(7, 0.0);
  world.store().for_each([&](const wire::ApReport& report) {
    const auto day =
        static_cast<std::size_t>(report.timestamp_us / Duration::days(1).as_micros());
    if (day >= daily.size()) return;
    for (const auto& u : report.usage) daily[day] += static_cast<double>(u.rx_bytes);
  });
  // Day 2 carries the surge; a neighboring day is the baseline.
  EXPECT_GT(daily[2], daily[1] * 1.5);
}

TEST(World, MisclassificationRateIsLow) {
  World world(small_world(20, 23));
  world.run_usage_week(1);
  EXPECT_LT(static_cast<double>(world.flows_misclassified()) /
                static_cast<double>(world.flows_classified()),
            0.08);
}

}  // namespace
}  // namespace wlm::sim
