#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace wlm::telemetry {
namespace {

TEST(MetricsRegistry, CounterFindOrCreateAndLookup) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter_value("wlm_x_total"), 0u);
  reg.counter("wlm_x_total").inc();
  reg.counter("wlm_x_total").inc(4);
  EXPECT_EQ(reg.counter_value("wlm_x_total"), 5u);
  // A different entity is a different instance.
  reg.counter("wlm_x_total", 7).inc();
  EXPECT_EQ(reg.counter_value("wlm_x_total", 7), 1u);
  EXPECT_EQ(reg.counter_value("wlm_x_total"), 5u);
}

TEST(MetricsRegistry, CounterReferencesStayValid) {
  MetricsRegistry reg;
  Counter& hot = reg.counter("wlm_hot_total");
  // Creating many other keys must not invalidate the cached handle.
  for (int i = 0; i < 100; ++i) reg.counter("wlm_other_total", static_cast<std::uint64_t>(i));
  hot.inc(3);
  EXPECT_EQ(reg.counter_value("wlm_hot_total"), 3u);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  reg.gauge("wlm_depth").set(4.0);
  reg.gauge("wlm_depth").set(2.0);  // set overwrites
  EXPECT_DOUBLE_EQ(reg.gauge_value("wlm_depth"), 2.0);
  reg.gauge("wlm_depth").add(1.5);
  EXPECT_DOUBLE_EQ(reg.gauge_value("wlm_depth"), 3.5);
}

TEST(Histogram, BucketsAreUpperBoundsPlusOverflow) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // <= 1
  h.observe(1.0);  // <= 1 (bounds are inclusive upper bounds)
  h.observe(3.0);  // <= 4
  h.observe(100.0);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 0u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
}

TEST(Histogram, ConstructorSortsAndUniquesBounds) {
  Histogram h({4.0, 1.0, 2.0, 2.0});
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 4.0}));
}

TEST(Histogram, MergeSumsBucketwise) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  a.observe(0.5);
  b.observe(0.5);
  b.observe(5.0);
  a.merge(b);
  EXPECT_EQ(a.bucket_counts()[0], 2u);
  EXPECT_EQ(a.bucket_counts()[2], 1u);
  EXPECT_EQ(a.count(), 3u);
}

TEST(Histogram, MergeIntoEmptyCopies) {
  Histogram a;
  Histogram b({1.0});
  b.observe(0.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.bounds(), b.bounds());
}

TEST(Histogram, MergeMismatchedBoundsIsIgnored) {
  Histogram a({1.0});
  Histogram b({2.0});
  a.observe(0.5);
  b.observe(0.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);  // untouched: a merge must never corrupt counts
}

TEST(MetricsRegistry, MergeIsAdditiveAcrossAllKinds) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("wlm_c_total").inc(2);
  b.counter("wlm_c_total").inc(3);
  b.counter("wlm_only_b_total").inc(1);
  a.gauge("wlm_g").set(1.5);
  b.gauge("wlm_g").set(2.5);
  a.histogram("wlm_h", {1.0}).observe(0.5);
  b.histogram("wlm_h", {1.0}).observe(2.0);

  a.merge(b);
  EXPECT_EQ(a.counter_value("wlm_c_total"), 5u);
  EXPECT_EQ(a.counter_value("wlm_only_b_total"), 1u);
  EXPECT_DOUBLE_EQ(a.gauge_value("wlm_g"), 4.0);  // gauges sum (shard contributions)
  const Histogram* h = a.find_histogram("wlm_h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
}

TEST(MetricsRegistry, MergeIsOrderIndependent) {
  MetricsRegistry a1, a2, b1, b2;
  for (MetricsRegistry* reg : {&a1, &b2}) {
    reg->counter("wlm_c_total", 1).inc(2);
    reg->gauge("wlm_g").set(1.0);
  }
  for (MetricsRegistry* reg : {&b1, &a2}) {
    reg->counter("wlm_c_total", 2).inc(5);
    reg->gauge("wlm_g").set(3.0);
  }
  a1.merge(b1);  // shard A then B
  a2.merge(b2);  // shard B then A
  EXPECT_EQ(a1.counter_value("wlm_c_total", 1), a2.counter_value("wlm_c_total", 1));
  EXPECT_EQ(a1.counter_value("wlm_c_total", 2), a2.counter_value("wlm_c_total", 2));
  EXPECT_DOUBLE_EQ(a1.gauge_value("wlm_g"), a2.gauge_value("wlm_g"));
}

TEST(MetricsRegistry, VisitationIsSortedByNameThenEntity) {
  MetricsRegistry reg;
  reg.counter("wlm_b_total", 2).inc();
  reg.counter("wlm_b_total", 1).inc();
  reg.counter("wlm_a_total").inc();
  std::vector<MetricKey> keys;
  reg.for_each_counter([&](const MetricKey& key, const Counter&) { keys.push_back(key); });
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0].name, "wlm_a_total");
  EXPECT_EQ(keys[1], (MetricKey{"wlm_b_total", 1}));
  EXPECT_EQ(keys[2], (MetricKey{"wlm_b_total", 2}));
}

TEST(MetricsRegistry, HistogramBoundsApplyOnlyOnFirstCreation) {
  MetricsRegistry reg;
  reg.histogram("wlm_h", {1.0, 2.0}).observe(0.5);
  reg.histogram("wlm_h", {99.0}).observe(0.5);  // bounds ignored: key exists
  const Histogram* h = reg.find_histogram("wlm_h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->bounds(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(h->count(), 2u);
}

TEST(MetricsRegistry, SizeAndClear) {
  MetricsRegistry reg;
  reg.counter("wlm_c_total").inc();
  reg.gauge("wlm_g").set(1.0);
  reg.histogram("wlm_h", {1.0}).observe(0.5);
  EXPECT_EQ(reg.size(), 3u);
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.counter_value("wlm_c_total"), 0u);
}

}  // namespace
}  // namespace wlm::telemetry
