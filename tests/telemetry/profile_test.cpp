#include "telemetry/profile.hpp"

#include <gtest/gtest.h>

namespace wlm::telemetry {
namespace {

TEST(PhaseProfiler, AccumulatesSecondsAndCounts) {
  PhaseProfiler profiler;
  profiler.record("build", 0.5);
  profiler.record("build", 0.25);
  profiler.record("harvest", 1.0);
  const auto phases = profiler.phases();
  ASSERT_EQ(phases.size(), 2u);
  // Sorted by name.
  EXPECT_EQ(phases[0].first, "build");
  EXPECT_DOUBLE_EQ(phases[0].second.seconds, 0.75);
  EXPECT_EQ(phases[0].second.count, 2u);
  EXPECT_EQ(phases[1].first, "harvest");
  EXPECT_EQ(phases[1].second.count, 1u);
}

TEST(PhaseProfiler, ToJsonShape) {
  PhaseProfiler profiler;
  profiler.record("build", 0.5);
  const std::string json = profiler.to_json();
  EXPECT_NE(json.find("{\"phases\":[{\"name\":\"build\",\"seconds\":0.500000,"
                      "\"count\":1}]}"),
            std::string::npos);
}

TEST(PhaseProfiler, EmptyToJson) {
  PhaseProfiler profiler;
  EXPECT_EQ(profiler.to_json(), "{\"phases\":[]}");
}

TEST(PhaseProfiler, ClearEmpties) {
  PhaseProfiler profiler;
  profiler.record("build", 0.5);
  profiler.clear();
  EXPECT_TRUE(profiler.phases().empty());
}

TEST(ScopedPhase, RecordsOnDestruction) {
  PhaseProfiler profiler;
  {
    ScopedPhase phase(profiler, "scoped");
  }
  const auto phases = profiler.phases();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].first, "scoped");
  EXPECT_EQ(phases[0].second.count, 1u);
  EXPECT_GE(phases[0].second.seconds, 0.0);
}

TEST(Stopwatch, SecondsIsNonNegativeAndRestartable) {
  Stopwatch watch;
  EXPECT_GE(watch.seconds(), 0.0);
  watch.restart();
  EXPECT_GE(watch.seconds(), 0.0);
}

TEST(GlobalProfiler, IsASingleton) {
  EXPECT_EQ(&global_profiler(), &global_profiler());
}

TEST(GlobalProfiler, ResetDropsAccumulatedPhasesButKeepsTheSingleton) {
  // The leak fix: bench reps call reset_global_profiler() between runs so
  // one rep's phases never bleed into the next BENCH_*.json record. The
  // object itself must survive (static-duration Timers record into it from
  // destructors).
  auto& profiler = global_profiler();
  profiler.record("stale_phase", 1.25);
  ASSERT_FALSE(profiler.phases().empty());
  reset_global_profiler();
  EXPECT_TRUE(global_profiler().phases().empty());
  EXPECT_EQ(&global_profiler(), &profiler);
  // Still usable after the reset.
  global_profiler().record("fresh_phase", 0.5);
  const auto phases = global_profiler().phases();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].first, "fresh_phase");
  reset_global_profiler();
}

TEST(WorkTally, AccumulatesAndResets) {
  auto& tally = work_tally();
  tally.reset();
  tally.fragments.fetch_add(250, std::memory_order_relaxed);
  tally.fragments.fetch_add(1, std::memory_order_relaxed);
  tally.frames.fetch_add(42, std::memory_order_relaxed);
  EXPECT_EQ(tally.fragments.load(), 251u);
  EXPECT_EQ(tally.frames.load(), 42u);
  tally.reset();
  EXPECT_EQ(tally.fragments.load(), 0u);
  EXPECT_EQ(tally.frames.load(), 0u);
  EXPECT_EQ(&work_tally(), &tally);
}

}  // namespace
}  // namespace wlm::telemetry
