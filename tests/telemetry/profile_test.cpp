#include "telemetry/profile.hpp"

#include <gtest/gtest.h>

namespace wlm::telemetry {
namespace {

TEST(PhaseProfiler, AccumulatesSecondsAndCounts) {
  PhaseProfiler profiler;
  profiler.record("build", 0.5);
  profiler.record("build", 0.25);
  profiler.record("harvest", 1.0);
  const auto phases = profiler.phases();
  ASSERT_EQ(phases.size(), 2u);
  // Sorted by name.
  EXPECT_EQ(phases[0].first, "build");
  EXPECT_DOUBLE_EQ(phases[0].second.seconds, 0.75);
  EXPECT_EQ(phases[0].second.count, 2u);
  EXPECT_EQ(phases[1].first, "harvest");
  EXPECT_EQ(phases[1].second.count, 1u);
}

TEST(PhaseProfiler, ToJsonShape) {
  PhaseProfiler profiler;
  profiler.record("build", 0.5);
  const std::string json = profiler.to_json();
  EXPECT_NE(json.find("{\"phases\":[{\"name\":\"build\",\"seconds\":0.500000,"
                      "\"count\":1}]}"),
            std::string::npos);
}

TEST(PhaseProfiler, EmptyToJson) {
  PhaseProfiler profiler;
  EXPECT_EQ(profiler.to_json(), "{\"phases\":[]}");
}

TEST(PhaseProfiler, ClearEmpties) {
  PhaseProfiler profiler;
  profiler.record("build", 0.5);
  profiler.clear();
  EXPECT_TRUE(profiler.phases().empty());
}

TEST(ScopedPhase, RecordsOnDestruction) {
  PhaseProfiler profiler;
  {
    ScopedPhase phase(profiler, "scoped");
  }
  const auto phases = profiler.phases();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].first, "scoped");
  EXPECT_EQ(phases[0].second.count, 1u);
  EXPECT_GE(phases[0].second.seconds, 0.0);
}

TEST(Stopwatch, SecondsIsNonNegativeAndRestartable) {
  Stopwatch watch;
  EXPECT_GE(watch.seconds(), 0.0);
  watch.restart();
  EXPECT_GE(watch.seconds(), 0.0);
}

TEST(GlobalProfiler, IsASingleton) {
  EXPECT_EQ(&global_profiler(), &global_profiler());
}

}  // namespace
}  // namespace wlm::telemetry
