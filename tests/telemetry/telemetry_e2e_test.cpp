// End-to-end telemetry: a faulted fleet campaign must produce a metrics
// snapshot that (a) reconciles exactly with the independently derived
// LossLedger and (b) is byte-identical for any worker-pool size.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "sim/fleet_runner.hpp"
#include "telemetry/export.hpp"

namespace wlm::sim {
namespace {

WorldConfig faulted_fleet(int networks = 8, std::uint64_t seed = 17, int threads = 1) {
  WorldConfig cfg;
  cfg.fleet.epoch = deploy::Epoch::kJan2015;
  cfg.fleet.network_count = networks;
  cfg.fleet.seed = seed;
  cfg.seed = seed + 1;
  cfg.threads = threads;
  cfg.faults.outage_rate_per_week = 2.0;
  cfg.faults.outage_mean_hours = 12.0;
  cfg.faults.reboot_rate_per_week = 1.0;
  cfg.faults.corrupt_probability = 0.02;
  cfg.faults.tunnel_queue_limit = 64;
  return cfg;
}

std::unique_ptr<FleetRunner> run_faulted(const WorldConfig& cfg) {
  auto runner = std::make_unique<FleetRunner>(cfg);
  runner->run_usage_week(/*reports_per_week=*/7);
  runner->run_mr16_interference(SimTime::epoch() + Duration::hours(14));
  runner->harvest(HarvestMode::kFinal);
  return runner;
}

TEST(TelemetryE2E, CountersReconcileWithLossLedger) {
  const auto runner = run_faulted(faulted_fleet());
  const fault::LossLedger ledger = runner->loss_ledger();
  ASSERT_TRUE(ledger.conserved());
  ASSERT_GT(ledger.generated, 0u);
  const auto& m = runner->metrics();

  // Live hot-path counters against the ledger's derived totals.
  EXPECT_EQ(m.counter_value("wlm_sim_reports_enqueued_total"), ledger.generated);
  EXPECT_EQ(m.counter_value("wlm_poller_reports_stored_total"), ledger.delivered);
  EXPECT_EQ(m.counter_value("wlm_poller_corrupt_frames_total") +
                m.counter_value("wlm_poller_malformed_reports_total"),
            ledger.lost_corruption);

  // Harvest-published gauges, summed across shards by the merge.
  EXPECT_DOUBLE_EQ(m.gauge_value("wlm_ledger_generated"),
                   static_cast<double>(ledger.generated));
  EXPECT_DOUBLE_EQ(m.gauge_value("wlm_ledger_delivered"),
                   static_cast<double>(ledger.delivered));
  EXPECT_DOUBLE_EQ(m.gauge_value("wlm_ledger_shed"), static_cast<double>(ledger.shed));
  EXPECT_DOUBLE_EQ(m.gauge_value("wlm_ledger_lost_reboot"),
                   static_cast<double>(ledger.lost_reboot));
  EXPECT_DOUBLE_EQ(m.gauge_value("wlm_ledger_lost_corruption"),
                   static_cast<double>(ledger.lost_corruption));
  EXPECT_DOUBLE_EQ(m.gauge_value("wlm_ledger_in_flight"),
                   static_cast<double>(ledger.in_flight));

  // Fault-side counters agree with the injector's own accounting.
  std::uint64_t reboots = 0;
  std::uint64_t corrupted = 0;
  for (const auto& shard : runner->shards()) {
    reboots += shard->injector().reboots_applied();
    corrupted += shard->injector().frames_corrupted();
  }
  EXPECT_EQ(m.counter_value("wlm_fault_reboots_total"), reboots);
  EXPECT_EQ(m.counter_value("wlm_fault_frames_corrupted_total"), corrupted);

  // Fleet structure gauges.
  EXPECT_DOUBLE_EQ(m.gauge_value("wlm_fleet_networks"),
                   static_cast<double>(runner->shards().size()));
  EXPECT_DOUBLE_EQ(m.gauge_value("wlm_fleet_aps"),
                   static_cast<double>(runner->aps().size()));
}

TEST(TelemetryE2E, SnapshotByteIdenticalAcrossJobs) {
  const auto serial = run_faulted(faulted_fleet(8, 17, 1));
  const auto jobs2 = run_faulted(faulted_fleet(8, 17, 2));
  const auto jobs8 = run_faulted(faulted_fleet(8, 17, 8));

  const std::string prom1 = telemetry::to_prometheus(serial->metrics());
  EXPECT_FALSE(prom1.empty());
  EXPECT_EQ(prom1, telemetry::to_prometheus(jobs2->metrics()));
  EXPECT_EQ(prom1, telemetry::to_prometheus(jobs8->metrics()));

  const std::string json1 = telemetry::to_json_lines(serial->metrics());
  EXPECT_EQ(json1, telemetry::to_json_lines(jobs2->metrics()));
  EXPECT_EQ(json1, telemetry::to_json_lines(jobs8->metrics()));

  const std::string trace1 = telemetry::spans_to_json_lines(serial->trace());
  EXPECT_FALSE(trace1.empty());
  EXPECT_EQ(trace1, telemetry::spans_to_json_lines(jobs2->trace()));
  EXPECT_EQ(trace1, telemetry::spans_to_json_lines(jobs8->trace()));
}

TEST(TelemetryE2E, FaultSpansAppearInTrace) {
  const auto runner = run_faulted(faulted_fleet());
  const auto& trace = runner->trace();
  ASSERT_FALSE(trace.empty());
  const auto has_kind = [&](telemetry::SpanKind kind) {
    return std::any_of(trace.begin(), trace.end(),
                       [kind](const telemetry::TraceSpan& s) { return s.kind == kind; });
  };
  EXPECT_TRUE(has_kind(telemetry::SpanKind::kEnqueue));
  EXPECT_TRUE(has_kind(telemetry::SpanKind::kPoll));
  EXPECT_TRUE(has_kind(telemetry::SpanKind::kHarvest));
  EXPECT_TRUE(has_kind(telemetry::SpanKind::kOutage));
  EXPECT_TRUE(has_kind(telemetry::SpanKind::kReboot));
  // Outage spans must be well-formed windows inside the simulated week.
  for (const auto& span : trace) {
    EXPECT_LE(span.start_us, span.end_us);
    if (span.kind == telemetry::SpanKind::kOutage) {
      EXPECT_LE(span.end_us, fault::FaultPlan::horizon().as_micros());
    }
  }
}

TEST(TelemetryE2E, SecondHarvestDoesNotDoubleCount) {
  auto runner = std::make_unique<FleetRunner>(faulted_fleet());
  runner->run_usage_week(7);
  runner->harvest(HarvestMode::kWeekEnd);
  const double generated_first = runner->metrics().gauge_value("wlm_ledger_generated");
  runner->harvest(HarvestMode::kFinal);
  // The merged registry is rebuilt each harvest, so the gauge tracks the
  // ledger instead of accumulating one copy per harvest call.
  EXPECT_DOUBLE_EQ(runner->metrics().gauge_value("wlm_ledger_generated"),
                   generated_first);
  EXPECT_DOUBLE_EQ(runner->metrics().gauge_value("wlm_ledger_generated"),
                   static_cast<double>(runner->loss_ledger().generated));
}

TEST(TelemetryE2E, CleanRunHasNoFaultTelemetry) {
  WorldConfig cfg = faulted_fleet(6, 5, 1);
  cfg.faults = fault::FaultSpec{};
  const auto runner = run_faulted(cfg);
  const auto& m = runner->metrics();
  EXPECT_EQ(m.counter_value("wlm_fault_outages_total"), 0u);
  EXPECT_EQ(m.counter_value("wlm_fault_reboots_total"), 0u);
  EXPECT_EQ(m.counter_value("wlm_sim_reports_enqueued_total"),
            runner->loss_ledger().generated);
  EXPECT_EQ(m.counter_value("wlm_poller_reports_stored_total"),
            runner->loss_ledger().delivered);
}

TEST(TelemetryE2E, ProfilerRecordsCampaignPhases) {
  const auto runner = run_faulted(faulted_fleet(4, 3, 1));
  const auto phases = runner->profiler().phases();
  const auto has_phase = [&](const char* name) {
    return std::any_of(phases.begin(), phases.end(),
                       [&](const auto& p) { return p.first == name; });
  };
  EXPECT_TRUE(has_phase("build"));
  EXPECT_TRUE(has_phase("usage_week"));
  EXPECT_TRUE(has_phase("mr16"));
  EXPECT_TRUE(has_phase("harvest_drain"));
  EXPECT_TRUE(has_phase("harvest_merge"));
}

}  // namespace
}  // namespace wlm::sim
