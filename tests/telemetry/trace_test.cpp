#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include "telemetry/export.hpp"

namespace wlm::telemetry {
namespace {

TraceSpan span_at(std::int64_t t, std::uint64_t detail = 0) {
  return TraceSpan{SpanKind::kEnqueue, 1, t, t, detail};
}

TEST(FlightRecorder, RecordsUpToCapacity) {
  FlightRecorder rec(4);
  EXPECT_EQ(rec.capacity(), 4u);
  for (std::int64_t t = 0; t < 3; ++t) rec.record(span_at(t));
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans.front().start_us, 0);
  EXPECT_EQ(spans.back().start_us, 2);
}

TEST(FlightRecorder, OverwritesOldestWhenFull) {
  FlightRecorder rec(4);
  for (std::int64_t t = 0; t < 10; ++t) rec.record(span_at(t));
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first: the retained window is [6, 9].
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].start_us, static_cast<std::int64_t>(6 + i));
  }
}

TEST(FlightRecorder, ClearResets) {
  FlightRecorder rec(2);
  rec.record(span_at(0));
  rec.record(span_at(1));
  rec.record(span_at(2));
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(FlightRecorder, ZeroCapacityClampsToOne) {
  FlightRecorder rec(0);
  rec.record(span_at(1));
  EXPECT_EQ(rec.size(), 1u);
}

TEST(SpanKind, NamesAreStable) {
  EXPECT_STREQ(span_kind_name(SpanKind::kEnqueue), "enqueue");
  EXPECT_STREQ(span_kind_name(SpanKind::kPoll), "poll");
  EXPECT_STREQ(span_kind_name(SpanKind::kHarvest), "harvest");
  EXPECT_STREQ(span_kind_name(SpanKind::kOutage), "outage");
  EXPECT_STREQ(span_kind_name(SpanKind::kReboot), "reboot");
  EXPECT_STREQ(span_kind_name(SpanKind::kQuarantine), "quarantine");
}

TEST(Export, SpansToJsonLines) {
  std::vector<TraceSpan> spans;
  spans.push_back(TraceSpan{SpanKind::kOutage, 42, 10, 20, 0});
  spans.push_back(TraceSpan{SpanKind::kReboot, 7, 30, 30, 5});
  const std::string json = spans_to_json_lines(spans);
  EXPECT_EQ(json,
            "{\"span\":\"outage\",\"entity\":42,\"start_us\":10,\"end_us\":20,"
            "\"detail\":0}\n"
            "{\"span\":\"reboot\",\"entity\":7,\"start_us\":30,\"end_us\":30,"
            "\"detail\":5}\n");
}

TEST(Export, PrometheusRendersAllKinds) {
  MetricsRegistry reg;
  reg.counter("wlm_c_total").inc(3);
  reg.counter("wlm_c_total", 9).inc(1);
  reg.gauge("wlm_g").set(2.5);
  reg.histogram("wlm_h", {1.0, 4.0}).observe(0.5);
  reg.histogram("wlm_h", {1.0, 4.0}).observe(9.0);
  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE wlm_c_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("wlm_c_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("wlm_c_total{ap=\"9\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wlm_g gauge\n"), std::string::npos);
  EXPECT_NE(text.find("wlm_g 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wlm_h histogram\n"), std::string::npos);
  EXPECT_NE(text.find("wlm_h_bucket{le=\"1\"} 1\n"), std::string::npos);
  // Cumulative buckets: the +Inf bucket equals the total count.
  EXPECT_NE(text.find("wlm_h_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("wlm_h_sum 9.5\n"), std::string::npos);
  EXPECT_NE(text.find("wlm_h_count 2\n"), std::string::npos);
}

TEST(Export, JsonLinesRoundTripShape) {
  MetricsRegistry reg;
  reg.counter("wlm_c_total", 3).inc(7);
  reg.histogram("wlm_h", {2.0}).observe(1.0);
  const std::string json = to_json_lines(reg);
  EXPECT_NE(json.find("{\"kind\":\"counter\",\"name\":\"wlm_c_total\",\"entity\":3,"
                      "\"value\":7}\n"),
            std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[2]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\":[1,0]"), std::string::npos);
}

TEST(Export, ByteIdenticalForEqualRegistries) {
  MetricsRegistry a;
  MetricsRegistry b;
  // Insert in different orders; sorted storage must erase the difference.
  a.counter("wlm_x_total").inc(1);
  a.counter("wlm_y_total").inc(2);
  b.counter("wlm_y_total").inc(2);
  b.counter("wlm_x_total").inc(1);
  EXPECT_EQ(to_prometheus(a), to_prometheus(b));
  EXPECT_EQ(to_json_lines(a), to_json_lines(b));
}

}  // namespace
}  // namespace wlm::telemetry
