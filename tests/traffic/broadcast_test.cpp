#include "traffic/broadcast.hpp"

#include <gtest/gtest.h>

namespace wlm::traffic {
namespace {

TEST(Broadcast, ScalesLinearlyWithClients) {
  const BroadcastProfile profile;
  const auto one = broadcast_load(100, profile, phy::Modulation::kDsss1);
  const auto two = broadcast_load(200, profile, phy::Modulation::kDsss1);
  EXPECT_NEAR(two.airtime_duty, 2.0 * one.airtime_duty, 1e-9);
  EXPECT_NEAR(two.frames_per_second, 2.0 * one.frames_per_second, 1e-9);
}

TEST(Broadcast, HomeScaleIsNegligible) {
  const auto load = broadcast_load(10, BroadcastProfile{}, phy::Modulation::kDsss1);
  EXPECT_LT(load.airtime_duty, 0.01);
}

TEST(Broadcast, CampusScaleHurtsAtBasicRate) {
  // Paper §6.3: mDNS "works in home environments but causes broadcast
  // issues at campus scale". A couple thousand devices on one flat L2
  // domain at a 1 Mb/s basic rate eats a meaningful channel share.
  const auto load = broadcast_load(2000, BroadcastProfile{}, phy::Modulation::kDsss1);
  EXPECT_GT(load.airtime_duty, 0.10);
}

TEST(Broadcast, HigherBasicRateShrinksDuty) {
  const auto slow = broadcast_load(1000, BroadcastProfile{}, phy::Modulation::kDsss1);
  const auto fast = broadcast_load(1000, BroadcastProfile{}, phy::Modulation::kOfdm24);
  EXPECT_LT(fast.airtime_duty, slow.airtime_duty / 5.0);
  // Frame counts are rate-independent.
  EXPECT_DOUBLE_EQ(fast.frames_per_second, slow.frames_per_second);
}

TEST(Broadcast, SuppressionRestoresHeadroom) {
  const BroadcastProfile raw;
  const auto suppressed = with_mdns_suppression(raw);
  const int raw_limit = broadcast_client_limit(raw, phy::Modulation::kDsss1);
  const int clean_limit = broadcast_client_limit(suppressed, phy::Modulation::kDsss1);
  EXPECT_GT(clean_limit, raw_limit * 3);
  EXPECT_DOUBLE_EQ(suppressed.mdns_per_min, 0.0);
  EXPECT_DOUBLE_EQ(suppressed.arp_per_min, raw.arp_per_min);  // ARP must stay
}

TEST(Broadcast, DutyCapsAtOne) {
  const auto load = broadcast_load(1'000'000, BroadcastProfile{}, phy::Modulation::kDsss1);
  EXPECT_DOUBLE_EQ(load.airtime_duty, 1.0);
}

TEST(Broadcast, ZeroClients) {
  const auto load = broadcast_load(0, BroadcastProfile{}, phy::Modulation::kDsss1);
  EXPECT_DOUBLE_EQ(load.airtime_duty, 0.0);
  EXPECT_DOUBLE_EQ(load.frames_per_second, 0.0);
}

}  // namespace
}  // namespace wlm::traffic
