#include "traffic/diurnal.hpp"

#include <gtest/gtest.h>

namespace wlm::traffic {
namespace {

TEST(Diurnal, OfficePeaksMidday) {
  const auto i = deploy::Industry::kTech;
  EXPECT_GT(diurnal_multiplier(12.0, i), diurnal_multiplier(3.0, i));
  EXPECT_GT(diurnal_multiplier(10.0, i), diurnal_multiplier(22.0, i));
}

TEST(Diurnal, HospitalityPeaksEvening) {
  const auto i = deploy::Industry::kRestaurants;
  EXPECT_GT(diurnal_multiplier(19.5, i), diurnal_multiplier(9.0, i));
}

TEST(Diurnal, MeanIsNearUnity) {
  for (auto industry : {deploy::Industry::kTech, deploy::Industry::kRestaurants,
                        deploy::Industry::kRetail}) {
    double total = 0.0;
    for (int h = 0; h < 24; ++h) total += diurnal_multiplier(h + 0.5, industry);
    EXPECT_NEAR(total / 24.0, 1.0, 0.25) << static_cast<int>(industry);
  }
}

TEST(Diurnal, AlwaysPositive) {
  for (double h = 0.0; h < 24.0; h += 0.25) {
    EXPECT_GT(diurnal_multiplier(h, deploy::Industry::kEducation), 0.0);
  }
}

TEST(UpdateSpike, ActiveWindow) {
  UpdateSpike s;
  s.start = SimTime::epoch() + Duration::hours(48);
  s.duration = Duration::hours(6);
  EXPECT_FALSE(s.active(SimTime::epoch() + Duration::hours(47)));
  EXPECT_TRUE(s.active(SimTime::epoch() + Duration::hours(50)));
  EXPECT_FALSE(s.active(SimTime::epoch() + Duration::hours(54)));
}

TEST(UpdateSpike, SampledSpikesAreReasonable) {
  Rng rng(3);
  int total_spikes = 0;
  for (int i = 0; i < 1000; ++i) {
    for (const auto& s : sample_update_spikes(rng)) {
      ++total_spikes;
      EXPECT_TRUE(s.affects_apple || s.affects_windows);
      EXPECT_GE(s.download_multiplier, 5.0);
      EXPECT_LE(s.download_multiplier, 12.0);
      EXPECT_GE(s.start.as_micros(), 0);
      EXPECT_LT(s.start.as_micros(), Duration::days(7).as_micros());
    }
  }
  // Roughly one release every other week.
  EXPECT_NEAR(total_spikes / 1000.0, 0.5, 0.1);
}

}  // namespace
}  // namespace wlm::traffic
