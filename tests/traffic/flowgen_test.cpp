#include "traffic/flowgen.hpp"

#include <gtest/gtest.h>

namespace wlm::traffic {
namespace {

using classify::AppId;

class FlowRoundTrip : public ::testing::TestWithParam<AppId> {};

TEST_P(FlowRoundTrip, GeneratedFlowsClassifyToTruth) {
  // The generator and classifier share only the app catalog; this closes
  // the loop over the real DNS/HTTP/TLS parsers for every application.
  const AppId app = GetParam();
  FlowGenerator gen{Rng{static_cast<std::uint64_t>(app) * 7 + 1}};
  int correct = 0;
  const int n = 60;
  for (int i = 0; i < n; ++i) {
    const auto flow = gen.make_flow(app, classify::OsType::kWindows, 1000, 10'000);
    if (classify::classify_flow(flow.sample) == app) ++correct;
  }
  // Some flows legitimately degrade (cached DNS and no SNI -> misc bucket),
  // but the vast majority must classify exactly.
  EXPECT_GE(correct, n * 8 / 10) << classify::app_info(app).name;
}

INSTANTIATE_TEST_SUITE_P(
    NamedApps, FlowRoundTrip,
    ::testing::Values(AppId::kNetflix, AppId::kYouTube, AppId::kITunes, AppId::kFacebook,
                      AppId::kDropbox, AppId::kInstagram, AppId::kBitTorrent,
                      AppId::kSpotify, AppId::kGmail, AppId::kSteam, AppId::kDropcam,
                      AppId::kWindowsFileSharing, AppId::kRtmp, AppId::kHulu,
                      AppId::kTwitter, AppId::kEspn, AppId::kPandora));

class FallbackRoundTrip : public ::testing::TestWithParam<AppId> {};

TEST_P(FallbackRoundTrip, BucketAppsLandInTheirBucket) {
  const AppId app = GetParam();
  FlowGenerator gen{Rng{static_cast<std::uint64_t>(app) * 13 + 5}};
  int correct = 0;
  const int n = 60;
  for (int i = 0; i < n; ++i) {
    const auto flow = gen.make_flow(app, classify::OsType::kAndroid, 500, 500);
    if (classify::classify_flow(flow.sample) == app) ++correct;
  }
  EXPECT_GE(correct, n * 9 / 10) << classify::app_info(app).name;
}

INSTANTIATE_TEST_SUITE_P(Buckets, FallbackRoundTrip,
                         ::testing::Values(AppId::kMiscWeb, AppId::kMiscSecureWeb,
                                           AppId::kMiscVideo, AppId::kMiscAudio,
                                           AppId::kNonWebTcp, AppId::kUdp,
                                           AppId::kEncryptedTcp, AppId::kEncryptedP2p));

TEST(FlowGen, BytesCarriedThrough) {
  FlowGenerator gen{Rng{3}};
  const auto flow = gen.make_flow(AppId::kNetflix, classify::OsType::kMacOsX, 123, 4567);
  EXPECT_EQ(flow.upstream_bytes, 123u);
  EXPECT_EQ(flow.downstream_bytes, 4567u);
  EXPECT_EQ(flow.truth, AppId::kNetflix);
}

TEST(FlowGen, TlsFlowsHaveParsableHello) {
  FlowGenerator gen{Rng{5}};
  int tls_seen = 0;
  for (int i = 0; i < 50; ++i) {
    const auto flow = gen.make_flow(AppId::kMiscSecureWeb, classify::OsType::kWindows, 1, 1);
    const auto meta = classify::extract_metadata(flow.sample);
    if (meta.saw_tls) ++tls_seen;
  }
  EXPECT_EQ(tls_seen, 50);
}

TEST(FlowGen, DnsPacketsAreWellFormedWhenPresent) {
  FlowGenerator gen{Rng{7}};
  for (int i = 0; i < 100; ++i) {
    const auto flow = gen.make_flow(AppId::kYouTube, classify::OsType::kAndroid, 1, 1);
    if (flow.sample.dns_packet.empty()) continue;
    const auto meta = classify::extract_metadata(flow.sample);
    EXPECT_FALSE(meta.dns_hostname.empty());
  }
}

TEST(FlowGen, MakeFlowIntoMatchesByValueAcrossReusedSlot) {
  // Two same-seeded generators must stay in lockstep when one produces
  // flows by value and the other writes into a single reused slot — same
  // bytes, same ports, same RNG sequence, no stale state from the previous
  // (possibly larger) flow in the slot.
  FlowGenerator by_value{Rng{0xF10}};
  FlowGenerator into{Rng{0xF10}};
  GeneratedFlow slot;
  const AppId apps[] = {AppId::kNetflix, AppId::kMiscWeb, AppId::kBitTorrent,
                        AppId::kUdp, AppId::kGmail, AppId::kMiscSecureWeb};
  const classify::OsType oses[] = {classify::OsType::kWindows, classify::OsType::kAppleIos,
                                   classify::OsType::kAndroid};
  for (int i = 0; i < 300; ++i) {
    const AppId app = apps[static_cast<std::size_t>(i) % std::size(apps)];
    const auto os = oses[static_cast<std::size_t>(i) % std::size(oses)];
    const auto expected =
        by_value.make_flow(app, os, static_cast<std::uint64_t>(i) * 11, 1000 + i);
    into.make_flow_into(app, os, static_cast<std::uint64_t>(i) * 11, 1000 + i, slot);
    ASSERT_EQ(slot.sample.transport, expected.sample.transport) << i;
    ASSERT_EQ(slot.sample.dst_port, expected.sample.dst_port) << i;
    ASSERT_EQ(slot.sample.dns_packet, expected.sample.dns_packet) << i;
    ASSERT_EQ(slot.sample.first_payload, expected.sample.first_payload) << i;
    ASSERT_EQ(slot.truth, expected.truth) << i;
    ASSERT_EQ(slot.upstream_bytes, expected.upstream_bytes) << i;
    ASSERT_EQ(slot.downstream_bytes, expected.downstream_bytes) << i;
    ASSERT_EQ(slot.src_port, expected.src_port) << i;
    ASSERT_EQ(slot.dst_host, expected.dst_host) << i;
    ASSERT_EQ(slot.fragments, expected.fragments) << i;
  }
}

}  // namespace
}  // namespace wlm::traffic
