#include "traffic/os_model.hpp"

#include <gtest/gtest.h>

namespace wlm::traffic {
namespace {

using classify::AppId;
using classify::OsType;

TEST(OsUsage, Table3Calibration2015) {
  EXPECT_DOUBLE_EQ(os_usage(OsType::kWindows, deploy::Epoch::kJan2015).mb_per_client, 751);
  EXPECT_DOUBLE_EQ(os_usage(OsType::kAppleIos, deploy::Epoch::kJan2015).mb_per_client, 224);
  EXPECT_DOUBLE_EQ(os_usage(OsType::kMacOsX, deploy::Epoch::kJan2015).mb_per_client, 1487);
  EXPECT_DOUBLE_EQ(os_usage(OsType::kPlaystation, deploy::Epoch::kJan2015).mb_per_client,
                   5319);
}

TEST(OsUsage, DownloadFractions) {
  EXPECT_DOUBLE_EQ(os_usage(OsType::kAndroid, deploy::Epoch::kJan2015).download_frac, 0.89);
  // Unknown devices are upload-heavy (embedded cameras etc.).
  EXPECT_LT(os_usage(OsType::kUnknown, deploy::Epoch::kJan2015).download_frac, 0.5);
}

TEST(OsUsage, Derives2014FromIncrease) {
  // Windows grew 12% per client: 751 / 1.12.
  EXPECT_NEAR(os_usage(OsType::kWindows, deploy::Epoch::kJan2014).mb_per_client,
              751.0 / 1.12, 0.1);
}

TEST(SampleWeeklyBytes, MeanTracksProfile) {
  Rng rng(3);
  double total = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    total += sample_weekly_bytes(OsType::kAppleIos, deploy::Epoch::kJan2015, rng);
  }
  EXPECT_NEAR(total / n / 1e6, 224.0, 15.0);
}

TEST(SampleWeeklyBytes, HeavyTailed) {
  // Paper SS6.2: a subset of clients drives most usage.
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 50'000; ++i) {
    samples.push_back(sample_weekly_bytes(OsType::kWindows, deploy::Epoch::kJan2015, rng));
  }
  std::sort(samples.begin(), samples.end());
  double total = 0.0;
  for (double s : samples) total += s;
  double top_decile = 0.0;
  for (std::size_t i = samples.size() * 9 / 10; i < samples.size(); ++i) {
    top_decile += samples[i];
  }
  EXPECT_GT(top_decile / total, 0.5);
}

TEST(Affinity, PlatformExclusives) {
  EXPECT_EQ(app_affinity(OsType::kAndroid, AppId::kAppleFileSharing), 0.0);
  EXPECT_EQ(app_affinity(OsType::kAppleIos, AppId::kWindowsFileSharing), 0.0);
  EXPECT_GT(app_affinity(OsType::kMacOsX, AppId::kAppleFileSharing), 1.0);
  EXPECT_GT(app_affinity(OsType::kOther, AppId::kDropcam), 10.0);
  EXPECT_EQ(app_affinity(OsType::kWindows, AppId::kDropcam), 0.0);
}

TEST(Affinity, MobileVsDesktopLeanings) {
  EXPECT_GT(app_affinity(OsType::kAppleIos, AppId::kInstagram),
            app_affinity(OsType::kWindows, AppId::kInstagram));
  EXPECT_GT(app_affinity(OsType::kWindows, AppId::kBitTorrent), 0.0);
  EXPECT_EQ(app_affinity(OsType::kAppleIos, AppId::kBitTorrent), 0.0);
}

TEST(Affinity, ConsolesStreamOnly) {
  EXPECT_GT(app_affinity(OsType::kPlaystation, AppId::kNetflix), 1.0);
  EXPECT_LT(app_affinity(OsType::kPlaystation, AppId::kGmail), 0.5);
}

}  // namespace
}  // namespace wlm::traffic
