#include "traffic/pcap.hpp"

#include <gtest/gtest.h>

namespace wlm::traffic {
namespace {

PacketEndpoints endpoints() {
  PacketEndpoints e;
  e.src_mac = MacAddress::from_u64(0x3c0754000001ULL);
  e.dst_mac = MacAddress::from_u64(0x88154e000002ULL);
  return e;
}

TEST(InternetChecksum, Rfc1071Example) {
  // Classic worked example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  const std::vector<std::uint8_t> data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, OddLengthHandled) {
  const std::vector<std::uint8_t> data{0x01, 0x02, 0x03};
  // Manually: 0x0102 + 0x0300 = 0x0402 -> ~ = 0xFBFD.
  EXPECT_EQ(internet_checksum(data), 0xFBFD);
}

TEST(Encapsulate, TcpFrameLayout) {
  const std::vector<std::uint8_t> payload{'G', 'E', 'T', ' ', '/'};
  const auto frame = encapsulate(endpoints(), classify::Transport::kTcp, payload);
  ASSERT_EQ(frame.size(), 14u + 20u + 20u + payload.size());
  // EtherType IPv4.
  EXPECT_EQ(frame[12], 0x08);
  EXPECT_EQ(frame[13], 0x00);
  // IPv4 version/IHL and protocol TCP.
  EXPECT_EQ(frame[14], 0x45);
  EXPECT_EQ(frame[14 + 9], 6);
  // Total length field.
  const std::uint16_t total = static_cast<std::uint16_t>((frame[16] << 8) | frame[17]);
  EXPECT_EQ(total, 20u + 20u + payload.size());
  // The IPv4 header checksum must verify: checksum over the header == 0.
  EXPECT_EQ(internet_checksum(std::span<const std::uint8_t>(frame.data() + 14, 20)), 0);
  // Payload is at the tail.
  EXPECT_EQ(frame[frame.size() - payload.size()], 'G');
}

TEST(Encapsulate, UdpLengthField) {
  const std::vector<std::uint8_t> payload(100, 0xAB);
  const auto frame = encapsulate(endpoints(), classify::Transport::kUdp, payload);
  ASSERT_EQ(frame.size(), 14u + 20u + 8u + payload.size());
  EXPECT_EQ(frame[14 + 9], 17);  // protocol UDP
  const std::uint16_t udp_len =
      static_cast<std::uint16_t>((frame[14 + 20 + 4] << 8) | frame[14 + 20 + 5]);
  EXPECT_EQ(udp_len, 108);
}

TEST(PcapWriter, HeaderAndRecords) {
  PcapWriter writer;
  EXPECT_EQ(writer.bytes().size(), 24u);  // global header only
  const std::vector<std::uint8_t> frame(60, 0x11);
  writer.add_packet(SimTime::epoch() + Duration::seconds(5), frame);
  writer.add_packet(SimTime::epoch() + Duration::seconds(6), frame);
  EXPECT_EQ(writer.packet_count(), 2u);
  const auto lengths = parse_pcap_lengths(writer.bytes());
  ASSERT_EQ(lengths.size(), 2u);
  EXPECT_EQ(lengths[0], 60u);
}

TEST(PcapWriter, FlowExportCarriesDnsAndData) {
  FlowGenerator gen{Rng{9}};
  // Find a flow that includes a DNS lookup.
  for (int attempt = 0; attempt < 20; ++attempt) {
    const auto flow =
        gen.make_flow(classify::AppId::kNetflix, classify::OsType::kWindows, 10, 100);
    if (flow.sample.dns_packet.empty()) continue;
    PcapWriter writer;
    writer.add_flow(SimTime::epoch(), flow, endpoints());
    EXPECT_EQ(writer.packet_count(), 2u);  // DNS query + first data packet
    const auto lengths = parse_pcap_lengths(writer.bytes());
    ASSERT_EQ(lengths.size(), 2u);
    // DNS rides UDP (8B header), data is TLS over TCP (20B header).
    EXPECT_EQ(lengths[0], 14 + 20 + 8 + flow.sample.dns_packet.size());
    EXPECT_EQ(lengths[1], 14 + 20 + 20 + flow.sample.first_payload.size());
    return;
  }
  FAIL() << "no flow with DNS evidence generated";
}

TEST(PcapParse, RejectsGarbage) {
  EXPECT_TRUE(parse_pcap_lengths({}).empty());
  const std::vector<std::uint8_t> junk(64, 0x42);
  EXPECT_TRUE(parse_pcap_lengths(junk).empty());
}

TEST(PcapParse, TruncatedRecordIgnored) {
  PcapWriter writer;
  writer.add_packet(SimTime::epoch(), std::vector<std::uint8_t>(40, 1));
  auto bytes = writer.bytes();
  writer.add_packet(SimTime::epoch(), std::vector<std::uint8_t>(40, 2));
  auto full = writer.bytes();
  full.resize(full.size() - 10);  // cut into the second record
  EXPECT_EQ(parse_pcap_lengths(full).size(), 1u);
  EXPECT_EQ(parse_pcap_lengths(bytes).size(), 1u);
}

}  // namespace
}  // namespace wlm::traffic
