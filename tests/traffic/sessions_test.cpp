#include "traffic/sessions.hpp"

#include <gtest/gtest.h>

#include "traffic/diurnal.hpp"

namespace wlm::traffic {
namespace {

SessionModel model(std::uint64_t seed = 3, double per_day = 3.0) {
  SessionModelParams params;
  params.sessions_per_day = per_day;
  return SessionModel{params, Rng{seed}};
}

TEST(Sessions, WeeklyCountTracksRate) {
  auto m = model();
  double total = 0.0;
  const int devices = 500;
  for (int i = 0; i < devices; ++i) total += static_cast<double>(m.sample_week().size());
  // ~3/day * 7 days, minus overlap suppression.
  EXPECT_NEAR(total / devices, 21.0, 6.0);
}

TEST(Sessions, NoOverlapAndInSpan) {
  auto m = model(7);
  for (int i = 0; i < 50; ++i) {
    const auto sessions = m.sample_week();
    const SimTime horizon = SimTime::epoch() + Duration::days(7);
    for (std::size_t k = 0; k < sessions.size(); ++k) {
      EXPECT_GE(sessions[k].start, SimTime::epoch());
      EXPECT_LE(sessions[k].end(), horizon);
      EXPECT_GT(sessions[k].duration, Duration{});
      if (k > 0) {
        EXPECT_GE(sessions[k].start, sessions[k - 1].end());
      }
    }
  }
}

TEST(Sessions, DiurnalConcentration) {
  auto m = model(11);
  std::int64_t work_hours = 0;
  std::int64_t night_hours = 0;
  for (int i = 0; i < 400; ++i) {
    for (const auto& s : m.sample_week()) {
      const double h = s.start.hour_of_day();
      if (h >= 9.0 && h < 17.0) ++work_hours;
      if (h >= 0.0 && h < 6.0) ++night_hours;
    }
  }
  // Office diurnal: business hours dominate overnight by a wide margin.
  EXPECT_GT(work_hours, night_hours * 3);
}

TEST(Sessions, ActiveAtSemantics) {
  Session s;
  s.start = SimTime::epoch() + Duration::hours(10);
  s.duration = Duration::minutes(30);
  EXPECT_FALSE(s.active_at(SimTime::epoch() + Duration::hours(9)));
  EXPECT_TRUE(s.active_at(SimTime::epoch() + Duration::hours(10) + Duration::minutes(15)));
  EXPECT_FALSE(s.active_at(s.end()));
}

TEST(Sessions, PresenceProbabilityShape) {
  auto m = model();
  const double midday = m.presence_probability(12.5);
  const double night = m.presence_probability(3.0);
  EXPECT_GT(midday, night);
  EXPECT_GT(midday, 0.02);
  EXPECT_LE(midday, 0.95);
}

TEST(Sessions, PresenceMatchesSampledOccupancy) {
  // The analytic presence probability should track the empirical fraction
  // of devices in-session at a probe instant.
  auto m = model(17, 4.0);
  const SimTime probe = SimTime::epoch() + Duration::days(2) + Duration::hours(14);
  int online = 0;
  const int devices = 3000;
  for (int i = 0; i < devices; ++i) {
    for (const auto& s : m.sample_week()) {
      if (s.active_at(probe)) {
        ++online;
        break;
      }
    }
  }
  const double empirical = static_cast<double>(online) / devices;
  EXPECT_NEAR(empirical, m.presence_probability(14.0), 0.10);
}

}  // namespace
}  // namespace wlm::traffic
