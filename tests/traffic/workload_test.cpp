#include "traffic/workload.hpp"

#include <gtest/gtest.h>

#include "traffic/os_model.hpp"

namespace wlm::traffic {
namespace {

using classify::AppId;
using classify::OsType;

deploy::ClientDevice device_with(OsType os, std::uint32_t id = 1) {
  deploy::ClientDevice dev;
  dev.id = ClientId{id};
  dev.mac = MacAddress::from_u64(id);
  dev.os = os;
  dev.caps.bits = deploy::kCap11g | deploy::kCap11n;
  return dev;
}

TEST(Workload, WeeklyBytesTrackOsMean) {
  WorkloadModel model(deploy::Epoch::kJan2015, Rng{3});
  double total = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    total += static_cast<double>(
        model.generate_week(device_with(OsType::kAppleIos, static_cast<std::uint32_t>(i)))
            .total_bytes());
  }
  const double mean_mb = total / n / 1e6;
  EXPECT_NEAR(mean_mb, 224.0, 50.0);  // Table 3 iOS MB/client
}

TEST(Workload, FallbackBucketsNearlyUbiquitous) {
  // Paper Table 5: 4.62 M of 5.58 M clients (~83%) used miscellaneous web.
  WorkloadModel model(deploy::Epoch::kJan2015, Rng{5});
  int has_misc_web = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const auto week =
        model.generate_week(device_with(OsType::kWindows, static_cast<std::uint32_t>(i)));
    for (const auto& u : week.usages) {
      if (u.app == AppId::kMiscWeb) {
        ++has_misc_web;
        break;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(has_misc_web) / n, 0.83, 0.08);
}

TEST(Workload, FlowsMatchUsages) {
  WorkloadModel model(deploy::Epoch::kJan2015, Rng{7});
  const auto week = model.generate_week(device_with(OsType::kMacOsX));
  ASSERT_EQ(week.flows.size(), week.usages.size());
  for (std::size_t i = 0; i < week.flows.size(); ++i) {
    EXPECT_EQ(week.flows[i].truth, week.usages[i].app);
    EXPECT_EQ(week.flows[i].upstream_bytes, week.usages[i].upstream_bytes);
    EXPECT_EQ(week.flows[i].downstream_bytes, week.usages[i].downstream_bytes);
  }
}

TEST(Workload, DownloadDominatesForMobile) {
  WorkloadModel model(deploy::Epoch::kJan2015, Rng{9});
  std::uint64_t up = 0;
  std::uint64_t down = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto week =
        model.generate_week(device_with(OsType::kAndroid, static_cast<std::uint32_t>(i)));
    for (const auto& u : week.usages) {
      up += u.upstream_bytes;
      down += u.downstream_bytes;
    }
  }
  // Paper: mobile devices download ~9x more than they upload.
  EXPECT_GT(static_cast<double>(down) / static_cast<double>(up), 4.0);
}

TEST(Workload, PlatformExclusivesRespected) {
  WorkloadModel model(deploy::Epoch::kJan2015, Rng{11});
  for (int i = 0; i < 500; ++i) {
    const auto week =
        model.generate_week(device_with(OsType::kAndroid, static_cast<std::uint32_t>(i)));
    for (const auto& u : week.usages) {
      EXPECT_NE(u.app, AppId::kAppleFileSharing);
      EXPECT_NE(u.app, AppId::kWindowsFileSharing);
    }
  }
}

TEST(Workload, EpochGrowthInTotalBytes) {
  WorkloadModel now(deploy::Epoch::kJan2015, Rng{13});
  WorkloadModel before(deploy::Epoch::kJan2014, Rng{13});
  double total_now = 0.0;
  double total_before = 0.0;
  for (int i = 0; i < 3000; ++i) {
    total_now += static_cast<double>(
        now.generate_week(device_with(OsType::kAndroid, static_cast<std::uint32_t>(i)))
            .total_bytes());
    total_before += static_cast<double>(
        before.generate_week(device_with(OsType::kAndroid, static_cast<std::uint32_t>(i)))
            .total_bytes());
  }
  // Android per-client usage grew ~69% (Table 3).
  EXPECT_GT(total_now / total_before, 1.3);
}

TEST(Workload, EveryDeviceGetsSomething) {
  WorkloadModel model(deploy::Epoch::kJan2015, Rng{17});
  for (int i = 0; i < 300; ++i) {
    const auto week = model.generate_week(
        device_with(OsType::kBlackberry, static_cast<std::uint32_t>(i)));
    EXPECT_FALSE(week.usages.empty());
  }
}

TEST(Workload, GenerateWeekIntoMatchesByValueAcrossReusedSlot) {
  // The out-param overload reuses usage/flow slots across devices; it must
  // stay in RNG lockstep with the by-value original and trim stale flows
  // when the next device generates fewer.
  WorkloadModel by_value(deploy::Epoch::kJan2015, Rng{23});
  WorkloadModel into(deploy::Epoch::kJan2015, Rng{23});
  DeviceWeek slot;
  const OsType oses[] = {OsType::kWindows, OsType::kAppleIos, OsType::kAndroid,
                         OsType::kMacOsX, OsType::kBlackberry};
  for (int i = 0; i < 200; ++i) {
    const auto dev = device_with(oses[static_cast<std::size_t>(i) % std::size(oses)],
                                 static_cast<std::uint32_t>(i + 1));
    const auto expected = by_value.generate_week(dev);
    into.generate_week(dev, slot);
    ASSERT_EQ(slot.usages.size(), expected.usages.size()) << i;
    for (std::size_t u = 0; u < expected.usages.size(); ++u) {
      ASSERT_EQ(slot.usages[u].app, expected.usages[u].app) << i;
      ASSERT_EQ(slot.usages[u].upstream_bytes, expected.usages[u].upstream_bytes) << i;
      ASSERT_EQ(slot.usages[u].downstream_bytes, expected.usages[u].downstream_bytes) << i;
    }
    ASSERT_EQ(slot.flows.size(), expected.flows.size()) << i;
    for (std::size_t f = 0; f < expected.flows.size(); ++f) {
      ASSERT_EQ(slot.flows[f].sample.dns_packet, expected.flows[f].sample.dns_packet) << i;
      ASSERT_EQ(slot.flows[f].sample.first_payload, expected.flows[f].sample.first_payload)
          << i;
      ASSERT_EQ(slot.flows[f].truth, expected.flows[f].truth) << i;
      ASSERT_EQ(slot.flows[f].fragments, expected.flows[f].fragments) << i;
    }
    ASSERT_EQ(slot.total_bytes(), expected.total_bytes()) << i;
  }
}

}  // namespace
}  // namespace wlm::traffic
