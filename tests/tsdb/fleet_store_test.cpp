// FleetStore: the segment vault behind the streaming harvest. Covers the
// append/read contract against the row store it replaces, spill-to-disk
// transparency, the adopt (checkpoint restore) path, and quarantine drops.
#include <gtest/gtest.h>

#include <string>

#include "backend/store.hpp"
#include "core/rng.hpp"
#include "tsdb/fleet_store.hpp"
#include "wire/messages.hpp"

namespace wlm {
namespace {

wire::ApReport make_report(std::uint32_t ap, std::int64_t t_us, Rng& rng) {
  wire::ApReport r;
  r.ap_id = ap;
  r.timestamp_us = t_us;
  r.firmware = 3;
  wire::ClientUsage u;
  u.client = MacAddress::from_u64(0x3c0754000000ULL + rng.next_u64() % 6);
  u.app_id = static_cast<std::uint32_t>(rng.next_u64() % 12);
  u.tx_bytes = rng.next_u64() % 50000;
  u.rx_bytes = rng.next_u64() % 400000;
  r.usage.push_back(u);
  wire::ClientSnapshot c;
  c.client = u.client;
  c.band = static_cast<std::uint8_t>(ap % 2);
  c.rssi_dbm = -50.0 - static_cast<double>(rng.next_u64() % 30);
  r.clients.push_back(c);
  return r;
}

/// One network's poll batch as a canonical row store. AP ids are globally
/// ascending across networks, like deploy hands them out.
backend::ReportStore make_store(std::uint32_t first_ap, int aps, int per_ap,
                                std::uint64_t seed) {
  Rng rng(seed);
  backend::ReportStore store;
  for (int a = 0; a < aps; ++a) {
    for (int k = 0; k < per_ap; ++k) {
      store.add(make_report(first_ap + static_cast<std::uint32_t>(a),
                            600'000'000LL * (k + 1), rng));
    }
  }
  return store;
}

/// Row-encodes every report a source visits, in visit order — the byte-level
/// identity both storage backends must agree on.
std::vector<std::uint8_t> flatten(const backend::ReportSource& source) {
  std::vector<std::uint8_t> out;
  source.for_each([&](const wire::ApReport& r) {
    const auto bytes = wire::encode_report(r);
    out.insert(out.end(), bytes.begin(), bytes.end());
  });
  return out;
}

/// Three networks' batches appended in fleet order, plus the equivalent
/// merged row store for comparison.
struct Fixture {
  tsdb::FleetStore fleet;
  backend::ReportStore rows;
};

Fixture make_fixture() {
  Fixture f;
  std::uint32_t first_ap = 100;
  for (std::uint32_t net = 1; net <= 3; ++net) {
    auto store = make_store(first_ap, /*aps=*/3, /*per_ap=*/4, /*seed=*/net);
    backend::ReportStore copy;
    store.for_each([&](const wire::ApReport& r) { copy.add(r); });
    f.rows.merge(std::move(copy));
    f.fleet.append_store(net, std::move(store));
    first_ap += 3;
  }
  return f;
}

TEST(FleetStore, ReadsBackTheCanonicalOrderOfTheRowStore) {
  const Fixture f = make_fixture();
  EXPECT_EQ(f.fleet.report_count(), f.rows.report_count());
  EXPECT_EQ(f.fleet.ap_count(), f.rows.ap_count());
  EXPECT_EQ(flatten(f.fleet), flatten(f.rows));
  EXPECT_FALSE(f.fleet.last_error());
}

TEST(FleetStore, ForEachInMatchesRowStoreWindow) {
  const Fixture f = make_fixture();
  const SimTime from = SimTime::epoch() + Duration::millis(700'000);
  const SimTime to = SimTime::epoch() + Duration::millis(1'900'000);
  std::vector<std::uint8_t> fleet_bytes, row_bytes;
  f.fleet.for_each_in(from, to, [&](const wire::ApReport& r) {
    const auto b = wire::encode_report(r);
    fleet_bytes.insert(fleet_bytes.end(), b.begin(), b.end());
  });
  f.rows.for_each_in(from, to, [&](const wire::ApReport& r) {
    const auto b = wire::encode_report(r);
    row_bytes.insert(row_bytes.end(), b.begin(), b.end());
  });
  EXPECT_FALSE(fleet_bytes.empty());
  EXPECT_EQ(fleet_bytes, row_bytes);
}

TEST(FleetStore, ForEachApVisitsAscendingBatches) {
  const Fixture f = make_fixture();
  std::vector<std::uint32_t> visited;
  std::size_t reports = 0;
  f.fleet.for_each_ap([&](ApId ap, const std::vector<wire::ApReport>& batch) {
    visited.push_back(ap.value());
    reports += batch.size();
    for (const auto& r : batch) EXPECT_EQ(r.ap_id, ap.value());
  });
  ASSERT_EQ(visited.size(), 9u);
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
  EXPECT_EQ(reports, f.fleet.report_count());
}

TEST(FleetStore, StatsAccountForSealedBytes) {
  const Fixture f = make_fixture();
  const auto& stats = f.fleet.stats();
  EXPECT_EQ(stats.segments_sealed, 3u);
  EXPECT_EQ(stats.reports, 36u);
  EXPECT_EQ(stats.segments_spilled, 0u);
  EXPECT_GT(stats.raw_wire_bytes, 0u);
  EXPECT_EQ(stats.spilled_bytes, 0u);
  EXPECT_GT(stats.resident_bytes, 0u);
  EXPECT_GT(stats.compression_ratio(), 1.0);
}

TEST(FleetStore, SpillIsInvisibleToReaders) {
  Fixture f = make_fixture();
  const auto before = flatten(f.fleet);

  f.fleet.set_mem_ceiling(1);  // 1 byte: everything is over the threshold
  f.fleet.set_spill_dir(testing::TempDir());
  ASSERT_FALSE(f.fleet.maybe_spill());
  const auto& stats = f.fleet.stats();
  EXPECT_EQ(stats.segments_spilled, 3u);
  EXPECT_EQ(stats.spill_files, 1u);
  EXPECT_EQ(stats.resident_bytes, 0u);
  EXPECT_GT(stats.spilled_bytes, 0u);

  // Reads pull segments back from disk, re-validate, and produce the same
  // bytes; accounting totals don't move.
  EXPECT_EQ(flatten(f.fleet), before);
  EXPECT_FALSE(f.fleet.last_error());
  EXPECT_EQ(f.fleet.stats().segment_bytes(), stats.segment_bytes());
}

TEST(FleetStore, SpillWithoutCeilingIsANoOp) {
  Fixture f = make_fixture();
  ASSERT_FALSE(f.fleet.maybe_spill());
  EXPECT_EQ(f.fleet.stats().segments_spilled, 0u);
}

TEST(FleetStore, AdoptedSegmentsReproduceTheOriginal) {
  const Fixture f = make_fixture();
  tsdb::FleetStore restored;
  for (std::size_t i = 0; i < f.fleet.segment_count(); ++i) {
    std::vector<std::uint8_t> bytes;
    ASSERT_FALSE(f.fleet.segment_bytes(i, bytes));
    ASSERT_FALSE(restored.adopt_segment(std::move(bytes)));
  }
  EXPECT_EQ(restored.report_count(), f.fleet.report_count());
  EXPECT_EQ(flatten(restored), flatten(f.fleet));
}

TEST(FleetStore, AdoptRejectsGarbageTyped) {
  tsdb::FleetStore store;
  std::vector<std::uint8_t> junk(64, 0xAB);
  const auto err = store.adopt_segment(std::move(junk));
  EXPECT_TRUE(err);
  EXPECT_EQ(store.segment_count(), 0u);
  EXPECT_EQ(store.report_count(), 0u);
}

TEST(FleetStore, DropNetworkRemovesItsReportsOnly) {
  Fixture f = make_fixture();
  const std::size_t before = f.fleet.report_count();
  f.fleet.drop_network(2);
  EXPECT_EQ(f.fleet.report_count(), before - 12);
  f.fleet.for_each([&](const wire::ApReport& r) {
    EXPECT_TRUE(r.ap_id < 103 || r.ap_id >= 106) << "dropped network's AP survived";
  });
}

TEST(FleetStore, ClearResetsEverything) {
  Fixture f = make_fixture();
  f.fleet.clear();
  EXPECT_EQ(f.fleet.segment_count(), 0u);
  EXPECT_EQ(f.fleet.report_count(), 0u);
  EXPECT_EQ(f.fleet.stats().segment_bytes(), 0u);
  int visits = 0;
  f.fleet.for_each([&](const wire::ApReport&) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(FleetStore, BatchSequencesAdvancePerNetwork) {
  tsdb::FleetStore fleet;
  fleet.append_store(5, make_store(10, 2, 2, 1));
  fleet.append_store(5, make_store(10, 2, 2, 2));
  fleet.append_store(9, make_store(20, 2, 2, 3));
  ASSERT_EQ(fleet.segment_count(), 3u);
  EXPECT_EQ(fleet.info(0).network_id, 5u);
  EXPECT_EQ(fleet.info(0).batch_seq, 0u);
  EXPECT_EQ(fleet.info(1).batch_seq, 1u);
  EXPECT_EQ(fleet.info(2).network_id, 9u);
  EXPECT_EQ(fleet.info(2).batch_seq, 0u);
}

}  // namespace
}  // namespace wlm
