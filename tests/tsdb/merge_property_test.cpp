// Merge-associativity properties behind the streaming harvest.
//
// The incremental harvest path merges MANY partial results (one per shard,
// per phase boundary) where the classic path merged once at the end. These
// tests pin the property that makes that safe: merging N partials in fleet
// order is byte-identical to one final merge — for the time-series store,
// the usage aggregator, and the full FleetRunner pipeline across worker
// counts and spill modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "backend/aggregate.hpp"
#include "backend/store.hpp"
#include "backend/timeseries.hpp"
#include "core/rng.hpp"
#include "sim/fleet_runner.hpp"
#include "tsdb/series_codec.hpp"
#include "wire/messages.hpp"

namespace wlm {
namespace {

// ---------------------------------------------------------------------------
// TimeSeriesStore: incremental fleet-order merges vs one big merge.

/// One shard's partial week: a few metrics over overlapping entities, with
/// deliberate equal-timestamp collisions across shards (the case where merge
/// order is the only tie-breaker).
backend::TimeSeriesStore make_partial(std::uint64_t seed) {
  Rng rng(seed);
  backend::TimeSeriesStore store;
  const char* metrics[] = {"util24", "util5", "clients"};
  for (const char* metric : metrics) {
    for (std::uint64_t entity = 1; entity <= 4; ++entity) {
      for (int k = 0; k < 20; ++k) {
        // Quantized to whole minutes so different shards collide on time.
        const auto t = SimTime::epoch() + Duration::seconds(60 * static_cast<std::int64_t>(
                                                                     rng.next_u64() % 90));
        store.append({metric, entity}, t, static_cast<double>(seed * 1000 + k));
      }
    }
  }
  return store;
}

/// Canonical bytes of a store: every series in key order through the same
/// columnar codec the checkpoint uses. Byte equality here is exactly the
/// "checkpoint bytes identical" acceptance criterion.
std::vector<std::uint8_t> canonical_bytes(const backend::TimeSeriesStore& store) {
  std::vector<std::uint8_t> out;
  store.for_each_series([&](const backend::SeriesKey& key, const std::vector<backend::Point>& raw,
                            const std::vector<backend::Point>& rollups) {
    out.insert(out.end(), key.metric.begin(), key.metric.end());
    for (int shift = 0; shift < 64; shift += 8) {
      out.push_back(static_cast<std::uint8_t>(key.entity >> shift));
    }
    tsdb::encode_points(out, raw);
    tsdb::encode_points(out, rollups);
  });
  return out;
}

TEST(MergeProperty, TimeSeriesIncrementalMergeMatchesSingleMerge) {
  constexpr int kShards = 7;

  // Incremental: fold partials in one at a time, in fleet order — the
  // streaming harvest's shape (a merge at every phase boundary).
  backend::TimeSeriesStore incremental;
  for (int s = 0; s < kShards; ++s) {
    incremental.merge(make_partial(static_cast<std::uint64_t>(s + 1)));
  }

  // Single: build one interim store from the same partials in the same
  // order, then merge once — the classic hold-until-final harvest.
  backend::TimeSeriesStore staged;
  for (int s = 0; s < kShards; ++s) {
    staged.merge(make_partial(static_cast<std::uint64_t>(s + 1)));
  }
  backend::TimeSeriesStore single;
  single.merge(std::move(staged));

  EXPECT_EQ(canonical_bytes(incremental), canonical_bytes(single));
}

TEST(MergeProperty, TimeSeriesPairwiseGroupingsAgree) {
  // ((1+2)+3) vs (1+(2+3)): associativity under the fixed fleet order.
  backend::TimeSeriesStore left;
  left.merge(make_partial(1));
  left.merge(make_partial(2));
  left.merge(make_partial(3));

  backend::TimeSeriesStore tail;
  tail.merge(make_partial(2));
  tail.merge(make_partial(3));
  backend::TimeSeriesStore right;
  right.merge(make_partial(1));
  right.merge(std::move(tail));

  EXPECT_EQ(canonical_bytes(left), canonical_bytes(right));
}

// ---------------------------------------------------------------------------
// UsageAggregator: per-shard partial aggregation vs one global pass.

/// A shard's report batch with clients drawn from a SHARED mac pool, so the
/// same client roams across shards and its OS majority / distinct-AP spread
/// only resolves correctly if merge() truly unions observations.
backend::ReportStore make_shard_reports(std::uint32_t first_ap, std::uint64_t seed) {
  Rng rng(seed);
  backend::ReportStore store;
  for (std::uint32_t a = 0; a < 3; ++a) {
    for (int k = 0; k < 4; ++k) {
      wire::ApReport r;
      r.ap_id = first_ap + a;
      r.timestamp_us = 600'000'000LL * (k + 1);
      r.firmware = 2;
      for (int c = 0; c < 3; ++c) {
        const auto mac = MacAddress::from_u64(0x3c0754000000ULL + rng.next_u64() % 10);
        wire::ClientUsage u;
        u.client = mac;
        u.app_id = static_cast<std::uint32_t>(rng.next_u64() % 15);
        u.tx_bytes = rng.next_u64() % 200'000;
        u.rx_bytes = rng.next_u64() % 2'000'000;
        r.usage.push_back(u);
        wire::ClientSnapshot snap;
        snap.client = mac;
        snap.capability_bits = static_cast<std::uint32_t>(1u << (rng.next_u64() % 8));
        snap.band = static_cast<std::uint8_t>(a % 2);
        snap.rssi_dbm = -55.0;
        snap.os_id = static_cast<std::uint8_t>(rng.next_u64() % 5);
        r.clients.push_back(snap);
      }
      store.add(r);
    }
  }
  return store;
}

/// Field-by-field equality of two aggregators, compared in sorted MAC order
/// (the containers are unordered; the contents must not be).
void expect_aggregators_equal(const backend::UsageAggregator& a,
                              const backend::UsageAggregator& b) {
  ASSERT_EQ(a.client_count(), b.client_count());
  std::vector<MacAddress> macs;
  for (const auto& [mac, agg] : a.clients()) macs.push_back(mac);
  std::sort(macs.begin(), macs.end(),
            [](MacAddress x, MacAddress y) { return x.to_u64() < y.to_u64(); });
  for (const auto mac : macs) {
    const auto it = b.clients().find(mac);
    ASSERT_NE(it, b.clients().end()) << mac.to_string();
    const auto& ca = a.clients().at(mac);
    const auto& cb = it->second;
    EXPECT_EQ(ca.os, cb.os) << mac.to_string();
    EXPECT_EQ(ca.capability_bits, cb.capability_bits) << mac.to_string();
    EXPECT_EQ(ca.ap_count, cb.ap_count) << mac.to_string();
    EXPECT_EQ(ca.upstream(), cb.upstream()) << mac.to_string();
    EXPECT_EQ(ca.downstream(), cb.downstream()) << mac.to_string();
    ASSERT_EQ(ca.app_bytes.size(), cb.app_bytes.size()) << mac.to_string();
    for (const auto& [app, bytes] : ca.app_bytes) {
      EXPECT_EQ(cb.app_bytes.at(app), bytes) << mac.to_string();
    }
  }
  const auto os_a = a.by_os();
  const auto os_b = b.by_os();
  ASSERT_EQ(os_a.size(), os_b.size());
  for (std::size_t i = 0; i < os_a.size(); ++i) {
    EXPECT_EQ(os_a[i].up, os_b[i].up);
    EXPECT_EQ(os_a[i].down, os_b[i].down);
    EXPECT_EQ(os_a[i].clients, os_b[i].clients);
  }
}

TEST(MergeProperty, AggregatorShardMergesMatchGlobalConsume) {
  constexpr int kShards = 5;
  const SimTime from = SimTime::epoch();
  const SimTime to = SimTime::epoch() + Duration::days(7);

  // Per-shard partials merged in fleet order (streaming harvest shape).
  backend::UsageAggregator merged;
  for (int s = 0; s < kShards; ++s) {
    backend::UsageAggregator partial;
    const auto store =
        make_shard_reports(100 + 3 * static_cast<std::uint32_t>(s), static_cast<std::uint64_t>(s + 1));
    partial.consume(store, from, to);
    merged.merge(partial);
  }

  // One aggregator over the union of all shards' reports.
  backend::ReportStore all;
  for (int s = 0; s < kShards; ++s) {
    all.merge(make_shard_reports(100 + 3 * static_cast<std::uint32_t>(s),
                                 static_cast<std::uint64_t>(s + 1)));
  }
  backend::UsageAggregator global;
  global.consume(all, from, to);

  expect_aggregators_equal(merged, global);
}

TEST(MergeProperty, AggregatorMergeIsIdempotentOnEmpty) {
  backend::UsageAggregator agg;
  const auto store = make_shard_reports(10, 42);
  agg.consume(store, SimTime::epoch(), SimTime::epoch() + Duration::days(7));
  const std::size_t before = agg.client_count();
  agg.merge(backend::UsageAggregator{});
  EXPECT_EQ(agg.client_count(), before);
  backend::UsageAggregator empty;
  empty.merge(agg);
  expect_aggregators_equal(empty, agg);
}

// ---------------------------------------------------------------------------
// FleetRunner end to end: classic vs streaming vs spilled, across workers.

/// Full campaign on a small fleet; returns the row-encoded report stream —
/// the byte-level artifact every mode must reproduce exactly.
std::vector<std::uint8_t> run_fleet(std::uint64_t ceiling_mb, const std::string& spill_dir,
                                    int threads) {
  sim::WorldConfig config;
  config.fleet.network_count = 6;
  config.fleet.seed = 99;
  config.seed = 100;
  config.client_scale = 0.3;
  config.threads = threads;
  config.mem_ceiling_mb = ceiling_mb;
  config.spill_dir = spill_dir;
  sim::FleetRunner runner(config);
  runner.run_usage_week();
  runner.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
  runner.run_link_windows(SimTime::epoch() + Duration::hours(14));
  runner.harvest();

  std::vector<std::uint8_t> out;
  runner.reports().for_each([&](const wire::ApReport& r) {
    const auto bytes = wire::encode_report(r);
    out.insert(out.end(), bytes.begin(), bytes.end());
  });
  EXPECT_FALSE(out.empty());
  return out;
}

TEST(MergeProperty, FleetReportStreamIdenticalAcrossModesAndWorkers) {
  // Classic hold-until-final harvest, serial: the baseline.
  const auto classic = run_fleet(0, ".", 1);

  // Streaming harvest with a roomy ceiling (never spills): the incremental
  // per-phase merge must land on the same bytes.
  EXPECT_EQ(run_fleet(4096, ".", 1), classic) << "streaming != classic";

  // Streaming across worker counts.
  EXPECT_EQ(run_fleet(4096, ".", 2), classic) << "jobs 2 diverged";
  EXPECT_EQ(run_fleet(4096, ".", 8), classic) << "jobs 8 diverged";

  // Streaming with a 1 MiB ceiling: forces spill-to-disk mid-campaign.
  const std::string spill_dir = testing::TempDir();
  EXPECT_EQ(run_fleet(1, spill_dir, 2), classic) << "spilled run diverged";
}

}  // namespace
}  // namespace wlm
