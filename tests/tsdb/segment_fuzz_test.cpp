// Adversarial segment inputs (style of tests/ckpt/ckpt_fuzz_test.cpp).
//
// Sealed segments cross a trust boundary once they spill to disk: a reader
// may meet a torn write, a corrupted sector, or a tampered file. Every such
// input must come back as a typed tsdb::Error — never a crash, hang,
// out-of-bounds read (the ASan/UBSan lanes run this file), or a partially
// decoded batch.
#include <gtest/gtest.h>

#include <cstring>

#include "core/checksum.hpp"
#include "core/rng.hpp"
#include "tsdb/segment.hpp"
#include "wire/messages.hpp"
#include "wire/varint.hpp"

namespace wlm {
namespace {

std::vector<std::uint8_t> valid_segment() {
  Rng rng(77);
  tsdb::SegmentWriter writer(11, 2);
  for (std::uint32_t ap = 50; ap < 54; ++ap) {
    for (int k = 0; k < 3; ++k) {
      wire::ApReport r;
      r.ap_id = ap;
      r.timestamp_us = 1'000'000LL * (k + 1);
      r.firmware = 1;
      wire::ClientUsage u;
      u.client = MacAddress::from_u64(0x3c0754000000ULL + rng.next_u64() % 4);
      u.app_id = static_cast<std::uint32_t>(rng.next_u64() % 10);
      u.tx_bytes = rng.next_u64() % 10000;
      u.rx_bytes = rng.next_u64() % 90000;
      r.usage.push_back(u);
      wire::NeighborBss nbr;
      nbr.bssid = MacAddress::from_u64(0x88154E000000ULL + rng.next_u64() % 3);
      nbr.channel = 6;
      nbr.rssi_dbm = -60.0;
      r.neighbors.push_back(nbr);
      writer.add(r);
    }
  }
  return writer.seal();
}

/// Recomputes the segment trailer CRC after a deliberate mutation, so the
/// tamper is NOT caught by the cheap whole-segment checksum and the reader
/// has to catch it structurally.
void reseal_trailer_crc(std::vector<std::uint8_t>& bytes) {
  ASSERT_GE(bytes.size(), tsdb::kMagic.size() + 4);
  const std::span<const std::uint8_t> guarded{bytes.data() + tsdb::kMagic.size(),
                                              bytes.size() - tsdb::kMagic.size() - 4};
  const std::uint32_t crc = crc32(guarded);
  std::uint8_t* trailer = bytes.data() + bytes.size() - 4;
  trailer[0] = static_cast<std::uint8_t>(crc);
  trailer[1] = static_cast<std::uint8_t>(crc >> 8);
  trailer[2] = static_cast<std::uint8_t>(crc >> 16);
  trailer[3] = static_cast<std::uint8_t>(crc >> 24);
}

/// The one assertion every adversarial case reduces to: the reader either
/// succeeds or reports a typed error with nothing emitted.
void expect_typed_outcome(std::span<const std::uint8_t> bytes) {
  std::vector<wire::ApReport> decoded;
  const auto err = tsdb::SegmentReader::for_each(
      bytes, [&](wire::ApReport&& r) { decoded.push_back(std::move(r)); });
  if (err) {
    EXPECT_NE(err.status, tsdb::Status::kOk);
    EXPECT_TRUE(decoded.empty()) << "partial decode emitted reports";
  }
  // validate() must never be more permissive than for_each().
  const auto verr = tsdb::SegmentReader::validate(bytes);
  EXPECT_EQ(verr.status, err.status);
}

TEST(SegmentFuzz, EveryTruncationFailsTyped) {
  const auto valid = valid_segment();
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const std::span<const std::uint8_t> prefix{valid.data(), cut};
    std::vector<wire::ApReport> decoded;
    const auto err = tsdb::SegmentReader::for_each(
        prefix, [&](wire::ApReport&& r) { decoded.push_back(std::move(r)); });
    EXPECT_TRUE(err) << "truncation at " << cut << " decoded successfully";
    EXPECT_TRUE(decoded.empty());
  }
}

TEST(SegmentFuzz, BitFlipsNeverCrash) {
  const auto valid = valid_segment();
  Rng rng(201);
  for (int i = 0; i < 500; ++i) {
    auto mutated = valid;
    const int flips = 1 + static_cast<int>(rng.next_u64() % 8);
    for (int f = 0; f < flips; ++f) {
      mutated[rng.next_u64() % mutated.size()] ^=
          static_cast<std::uint8_t>(1 + rng.next_u64() % 255);
    }
    expect_typed_outcome(mutated);
  }
}

TEST(SegmentFuzz, SingleBitFlipsAcrossTheWholeSegment) {
  const auto valid = valid_segment();
  for (std::size_t byte = 0; byte < valid.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = valid;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      expect_typed_outcome(mutated);
    }
  }
}

TEST(SegmentFuzz, ResealedBitFlipsMustFailStructurally) {
  // Flip a bit, then FIX the trailer CRC: the cheap checksum passes, so the
  // block CRCs and structural checks must catch the damage (or the flip
  // lands in a block payload whose own CRC fails — either way, typed).
  const auto valid = valid_segment();
  Rng rng(202);
  for (int i = 0; i < 300; ++i) {
    auto mutated = valid;
    // Keep the magic intact so the mutation tests deep validation, and stay
    // off the trailer itself (it gets recomputed anyway).
    const std::size_t lo = tsdb::kMagic.size();
    const std::size_t span = mutated.size() - lo - 4;
    mutated[lo + rng.next_u64() % span] ^=
        static_cast<std::uint8_t>(1 + rng.next_u64() % 255);
    reseal_trailer_crc(mutated);
    expect_typed_outcome(mutated);
  }
}

TEST(SegmentFuzz, RandomGarbageFailsTyped) {
  Rng rng(203);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> junk(rng.next_u64() % 300);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    std::vector<wire::ApReport> decoded;
    const auto err = tsdb::SegmentReader::for_each(
        junk, [&](wire::ApReport&& r) { decoded.push_back(std::move(r)); });
    EXPECT_TRUE(err);
    EXPECT_TRUE(decoded.empty());
  }
}

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/// Hand-builds a segment header for crafted-field attacks the mutation
/// fuzzers cannot reach (multi-byte varints near 2^64 never arise from
/// flipping bits of a small valid segment).
std::vector<std::uint8_t> crafted_header(std::uint64_t n_reports, std::uint64_t n_aps,
                                         std::uint64_t raw_wire_bytes,
                                         std::uint64_t n_blocks) {
  std::vector<std::uint8_t> out(tsdb::kMagic.begin(), tsdb::kMagic.end());
  put_u32le(out, tsdb::kFormatVersion);
  put_u32le(out, 1);  // network id
  put_u32le(out, 0);  // batch seq
  wire::put_varint(out, n_reports);
  wire::put_varint(out, n_aps);
  wire::put_varint(out, raw_wire_bytes);
  wire::put_varint(out, n_blocks);
  return out;
}

void append_crafted_block(std::vector<std::uint8_t>& out, tsdb::ColumnId id,
                          tsdb::Encoding enc, std::uint64_t rows, std::uint64_t len,
                          std::span<const std::uint8_t> payload, std::int64_t min = 0,
                          std::int64_t max = 0) {
  out.push_back(static_cast<std::uint8_t>(id));
  out.push_back(static_cast<std::uint8_t>(enc));
  wire::put_varint(out, rows);
  wire::put_varint(out, wire::zigzag_encode(min));
  wire::put_varint(out, wire::zigzag_encode(max));
  wire::put_varint(out, len);
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32le(out, crc32(payload));
}

void append_trailer_crc(std::vector<std::uint8_t>& out) {
  const std::span<const std::uint8_t> guarded{out.data() + tsdb::kMagic.size(),
                                              out.size() - tsdb::kMagic.size()};
  put_u32le(out, crc32(guarded));
}

TEST(SegmentFuzz, BlockLenVarintNearU64MaxIsTruncatedNotOutOfBounds) {
  // A block-length varint >= 2^64-8 once wrapped the `len + crc + trailer`
  // truncation sum and sent an out-of-bounds count into subspan. Must be a
  // typed truncation (ASan holds the no-OOB line).
  auto bytes = crafted_header(/*n_reports=*/1, /*n_aps=*/1, /*raw_wire_bytes=*/100,
                              /*n_blocks=*/1);
  append_crafted_block(bytes, tsdb::ColumnId::kApId, tsdb::Encoding::kDeltaZigzag,
                       /*rows=*/1, /*len=*/~std::uint64_t{0} - 7, {});
  append_trailer_crc(bytes);
  EXPECT_EQ(tsdb::SegmentReader::validate(bytes).status, tsdb::Status::kTruncated);
  std::int64_t lo = 0, hi = 0;
  EXPECT_EQ(tsdb::SegmentReader::time_bounds(bytes, lo, hi).status,
            tsdb::Status::kTruncated);
}

TEST(SegmentFuzz, Fixed64RowsNearU64MaxIsBadCountNotOverflow) {
  // rows=2^61 made `rows * 8` wrap to 0, matching an empty payload exactly
  // and sending the decoder into a 2^61-row reserve.
  auto bytes = crafted_header(1, 1, 100, 1);
  append_crafted_block(bytes, tsdb::ColumnId::kNbrRssi, tsdb::Encoding::kFixed64,
                       /*rows=*/std::uint64_t{1} << 61, /*len=*/0, {});
  append_trailer_crc(bytes);
  EXPECT_EQ(tsdb::SegmentReader::validate(bytes).status, tsdb::Status::kBadCount);
}

TEST(SegmentFuzz, ConstantDictHugeRowsIsBadCountNotAllocCrash) {
  // Width-0 packed indices (single-entry dictionary) put no payload-derived
  // bound on rows; only the raw-wire-bytes gate stands between a crafted
  // 2^61 row count and an uncaught bad_alloc.
  std::vector<std::uint8_t> payload;
  wire::put_varint(payload, 1);                        // dict size
  wire::put_varint(payload, wire::zigzag_encode(5));   // lone entry
  auto bytes = crafted_header(1, 1, 100, 1);
  append_crafted_block(bytes, tsdb::ColumnId::kUsageTx, tsdb::Encoding::kDictVarint,
                       /*rows=*/std::uint64_t{1} << 61, payload.size(), payload);
  append_trailer_crc(bytes);
  EXPECT_EQ(tsdb::SegmentReader::validate(bytes).status, tsdb::Status::kBadCount);
}

TEST(SegmentFuzz, RawWireBytesNearU64MaxFailsInTheHeader) {
  // raw_wire_bytes is the ceiling later row/count checks lean on, so a
  // 2^64-1 claim must die in walk_header before any block is trusted.
  auto bytes = crafted_header(0, 0, ~std::uint64_t{0}, 0);
  append_trailer_crc(bytes);
  tsdb::SegmentHeader header;
  EXPECT_EQ(tsdb::SegmentReader::read_header(bytes, header).status,
            tsdb::Status::kBadCount);
  EXPECT_EQ(tsdb::SegmentReader::validate(bytes).status, tsdb::Status::kBadCount);
}

TEST(SegmentFuzz, ChildCountNearU64MaxIsBadCountNotWrappedSum) {
  // Per-report child counts of 2^63+2^63 wrap to 0, matching absent child
  // columns; checked_sum must reject each count on its own.
  const std::uint64_t half = std::uint64_t{1} << 63;
  // The block summary tracks values through an i64 cast, so the crafted
  // count block's min/max must claim INT64_MIN to survive decode and reach
  // cross_check, where the attack actually aims.
  const auto half_signed = static_cast<std::int64_t>(half);
  std::vector<std::uint8_t> count_payload;
  wire::put_varint(count_payload, half);
  wire::put_varint(count_payload, half);
  std::vector<std::uint8_t> plain1;  // value 0 per row, two rows
  plain1.push_back(0);
  plain1.push_back(0);
  auto bytes = crafted_header(/*n_reports=*/2, /*n_aps=*/1, /*raw_wire_bytes=*/1000,
                              /*n_blocks=*/8);
  append_crafted_block(bytes, tsdb::ColumnId::kApId, tsdb::Encoding::kVarint, 2, 2,
                       plain1);
  append_crafted_block(bytes, tsdb::ColumnId::kTimestamp, tsdb::Encoding::kDeltaZigzag,
                       2, 2, plain1);
  append_crafted_block(bytes, tsdb::ColumnId::kFirmware, tsdb::Encoding::kVarint, 2, 2,
                       plain1);
  append_crafted_block(bytes, tsdb::ColumnId::kUsageCount, tsdb::Encoding::kVarint, 2,
                       count_payload.size(), count_payload, half_signed, half_signed);
  append_crafted_block(bytes, tsdb::ColumnId::kUtilCount, tsdb::Encoding::kVarint, 2, 2,
                       plain1);
  append_crafted_block(bytes, tsdb::ColumnId::kNeighborCount, tsdb::Encoding::kVarint, 2,
                       2, plain1);
  append_crafted_block(bytes, tsdb::ColumnId::kLinkCount, tsdb::Encoding::kVarint, 2, 2,
                       plain1);
  append_crafted_block(bytes, tsdb::ColumnId::kClientCount, tsdb::Encoding::kVarint, 2,
                       2, plain1);
  append_trailer_crc(bytes);
  std::vector<wire::ApReport> decoded;
  const auto err = tsdb::SegmentReader::for_each(
      bytes, [&](wire::ApReport&& r) { decoded.push_back(std::move(r)); });
  EXPECT_EQ(err.status, tsdb::Status::kBadCount);
  EXPECT_TRUE(decoded.empty());
}

TEST(SegmentFuzz, WrongMagicIsTyped) {
  auto mutated = valid_segment();
  mutated[0] = 'X';
  tsdb::SegmentHeader header;
  EXPECT_EQ(tsdb::SegmentReader::read_header(mutated, header).status,
            tsdb::Status::kBadMagic);
  EXPECT_EQ(tsdb::SegmentReader::validate(mutated).status, tsdb::Status::kBadMagic);
}

TEST(SegmentFuzz, VersionBumpFailsClosedEvenWithValidCrc) {
  // A future format revision must fail kBadVersion, not half-parse — even
  // when the trailer CRC is made internally consistent.
  auto mutated = valid_segment();
  const std::size_t version_at = tsdb::kMagic.size();
  mutated[version_at] = 0xFF;
  reseal_trailer_crc(mutated);
  tsdb::SegmentHeader header;
  EXPECT_EQ(tsdb::SegmentReader::read_header(mutated, header).status,
            tsdb::Status::kBadVersion);
  EXPECT_EQ(tsdb::SegmentReader::validate(mutated).status, tsdb::Status::kBadVersion);
}

TEST(SegmentFuzz, CrcValidTamperedCountIsBadCount) {
  // Bump the header's n_reports varint (12 -> 13 stays one byte), reseal
  // the trailer CRC: every CRC in the file now passes, but the column row
  // counts disagree with the header. kBadCount territory.
  auto mutated = valid_segment();
  const std::size_t n_reports_at = tsdb::kMagic.size() + 4 + 4 + 4;
  ASSERT_EQ(mutated[n_reports_at], 12) << "batch size changed; fix the offset math";
  mutated[n_reports_at] = 13;
  reseal_trailer_crc(mutated);
  EXPECT_EQ(tsdb::SegmentReader::validate(mutated).status, tsdb::Status::kBadCount);
  std::vector<wire::ApReport> decoded;
  const auto err = tsdb::SegmentReader::for_each(
      mutated, [&](wire::ApReport&& r) { decoded.push_back(std::move(r)); });
  EXPECT_EQ(err.status, tsdb::Status::kBadCount);
  EXPECT_TRUE(decoded.empty());
}

TEST(SegmentFuzz, CrcValidTamperedApCountIsTyped) {
  // Same trick on n_aps: the distinct-AP summary disagrees with the AP id
  // column's actual cardinality.
  auto mutated = valid_segment();
  const std::size_t n_aps_at = tsdb::kMagic.size() + 4 + 4 + 4 + 1;
  ASSERT_EQ(mutated[n_aps_at], 4) << "batch size changed; fix the offset math";
  mutated[n_aps_at] = 3;
  reseal_trailer_crc(mutated);
  const auto err = tsdb::SegmentReader::validate(mutated);
  EXPECT_TRUE(err);
  EXPECT_EQ(err.status, tsdb::Status::kBadCount);
}

}  // namespace
}  // namespace wlm
