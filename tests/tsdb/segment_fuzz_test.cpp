// Adversarial segment inputs (style of tests/ckpt/ckpt_fuzz_test.cpp).
//
// Sealed segments cross a trust boundary once they spill to disk: a reader
// may meet a torn write, a corrupted sector, or a tampered file. Every such
// input must come back as a typed tsdb::Error — never a crash, hang,
// out-of-bounds read (the ASan/UBSan lanes run this file), or a partially
// decoded batch.
#include <gtest/gtest.h>

#include <cstring>

#include "core/checksum.hpp"
#include "core/rng.hpp"
#include "tsdb/segment.hpp"
#include "wire/messages.hpp"

namespace wlm {
namespace {

std::vector<std::uint8_t> valid_segment() {
  Rng rng(77);
  tsdb::SegmentWriter writer(11, 2);
  for (std::uint32_t ap = 50; ap < 54; ++ap) {
    for (int k = 0; k < 3; ++k) {
      wire::ApReport r;
      r.ap_id = ap;
      r.timestamp_us = 1'000'000LL * (k + 1);
      r.firmware = 1;
      wire::ClientUsage u;
      u.client = MacAddress::from_u64(0x3c0754000000ULL + rng.next_u64() % 4);
      u.app_id = static_cast<std::uint32_t>(rng.next_u64() % 10);
      u.tx_bytes = rng.next_u64() % 10000;
      u.rx_bytes = rng.next_u64() % 90000;
      r.usage.push_back(u);
      wire::NeighborBss nbr;
      nbr.bssid = MacAddress::from_u64(0x88154E000000ULL + rng.next_u64() % 3);
      nbr.channel = 6;
      nbr.rssi_dbm = -60.0;
      r.neighbors.push_back(nbr);
      writer.add(r);
    }
  }
  return writer.seal();
}

/// Recomputes the segment trailer CRC after a deliberate mutation, so the
/// tamper is NOT caught by the cheap whole-segment checksum and the reader
/// has to catch it structurally.
void reseal_trailer_crc(std::vector<std::uint8_t>& bytes) {
  ASSERT_GE(bytes.size(), tsdb::kMagic.size() + 4);
  const std::span<const std::uint8_t> guarded{bytes.data() + tsdb::kMagic.size(),
                                              bytes.size() - tsdb::kMagic.size() - 4};
  const std::uint32_t crc = crc32(guarded);
  std::uint8_t* trailer = bytes.data() + bytes.size() - 4;
  trailer[0] = static_cast<std::uint8_t>(crc);
  trailer[1] = static_cast<std::uint8_t>(crc >> 8);
  trailer[2] = static_cast<std::uint8_t>(crc >> 16);
  trailer[3] = static_cast<std::uint8_t>(crc >> 24);
}

/// The one assertion every adversarial case reduces to: the reader either
/// succeeds or reports a typed error with nothing emitted.
void expect_typed_outcome(std::span<const std::uint8_t> bytes) {
  std::vector<wire::ApReport> decoded;
  const auto err = tsdb::SegmentReader::for_each(
      bytes, [&](wire::ApReport&& r) { decoded.push_back(std::move(r)); });
  if (err) {
    EXPECT_NE(err.status, tsdb::Status::kOk);
    EXPECT_TRUE(decoded.empty()) << "partial decode emitted reports";
  }
  // validate() must never be more permissive than for_each().
  const auto verr = tsdb::SegmentReader::validate(bytes);
  EXPECT_EQ(verr.status, err.status);
}

TEST(SegmentFuzz, EveryTruncationFailsTyped) {
  const auto valid = valid_segment();
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const std::span<const std::uint8_t> prefix{valid.data(), cut};
    std::vector<wire::ApReport> decoded;
    const auto err = tsdb::SegmentReader::for_each(
        prefix, [&](wire::ApReport&& r) { decoded.push_back(std::move(r)); });
    EXPECT_TRUE(err) << "truncation at " << cut << " decoded successfully";
    EXPECT_TRUE(decoded.empty());
  }
}

TEST(SegmentFuzz, BitFlipsNeverCrash) {
  const auto valid = valid_segment();
  Rng rng(201);
  for (int i = 0; i < 500; ++i) {
    auto mutated = valid;
    const int flips = 1 + static_cast<int>(rng.next_u64() % 8);
    for (int f = 0; f < flips; ++f) {
      mutated[rng.next_u64() % mutated.size()] ^=
          static_cast<std::uint8_t>(1 + rng.next_u64() % 255);
    }
    expect_typed_outcome(mutated);
  }
}

TEST(SegmentFuzz, SingleBitFlipsAcrossTheWholeSegment) {
  const auto valid = valid_segment();
  for (std::size_t byte = 0; byte < valid.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = valid;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      expect_typed_outcome(mutated);
    }
  }
}

TEST(SegmentFuzz, ResealedBitFlipsMustFailStructurally) {
  // Flip a bit, then FIX the trailer CRC: the cheap checksum passes, so the
  // block CRCs and structural checks must catch the damage (or the flip
  // lands in a block payload whose own CRC fails — either way, typed).
  const auto valid = valid_segment();
  Rng rng(202);
  for (int i = 0; i < 300; ++i) {
    auto mutated = valid;
    // Keep the magic intact so the mutation tests deep validation, and stay
    // off the trailer itself (it gets recomputed anyway).
    const std::size_t lo = tsdb::kMagic.size();
    const std::size_t span = mutated.size() - lo - 4;
    mutated[lo + rng.next_u64() % span] ^=
        static_cast<std::uint8_t>(1 + rng.next_u64() % 255);
    reseal_trailer_crc(mutated);
    expect_typed_outcome(mutated);
  }
}

TEST(SegmentFuzz, RandomGarbageFailsTyped) {
  Rng rng(203);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> junk(rng.next_u64() % 300);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    std::vector<wire::ApReport> decoded;
    const auto err = tsdb::SegmentReader::for_each(
        junk, [&](wire::ApReport&& r) { decoded.push_back(std::move(r)); });
    EXPECT_TRUE(err);
    EXPECT_TRUE(decoded.empty());
  }
}

TEST(SegmentFuzz, WrongMagicIsTyped) {
  auto mutated = valid_segment();
  mutated[0] = 'X';
  tsdb::SegmentHeader header;
  EXPECT_EQ(tsdb::SegmentReader::read_header(mutated, header).status,
            tsdb::Status::kBadMagic);
  EXPECT_EQ(tsdb::SegmentReader::validate(mutated).status, tsdb::Status::kBadMagic);
}

TEST(SegmentFuzz, VersionBumpFailsClosedEvenWithValidCrc) {
  // A future format revision must fail kBadVersion, not half-parse — even
  // when the trailer CRC is made internally consistent.
  auto mutated = valid_segment();
  const std::size_t version_at = tsdb::kMagic.size();
  mutated[version_at] = 0xFF;
  reseal_trailer_crc(mutated);
  tsdb::SegmentHeader header;
  EXPECT_EQ(tsdb::SegmentReader::read_header(mutated, header).status,
            tsdb::Status::kBadVersion);
  EXPECT_EQ(tsdb::SegmentReader::validate(mutated).status, tsdb::Status::kBadVersion);
}

TEST(SegmentFuzz, CrcValidTamperedCountIsBadCount) {
  // Bump the header's n_reports varint (12 -> 13 stays one byte), reseal
  // the trailer CRC: every CRC in the file now passes, but the column row
  // counts disagree with the header. kBadCount territory.
  auto mutated = valid_segment();
  const std::size_t n_reports_at = tsdb::kMagic.size() + 4 + 4 + 4;
  ASSERT_EQ(mutated[n_reports_at], 12) << "batch size changed; fix the offset math";
  mutated[n_reports_at] = 13;
  reseal_trailer_crc(mutated);
  EXPECT_EQ(tsdb::SegmentReader::validate(mutated).status, tsdb::Status::kBadCount);
  std::vector<wire::ApReport> decoded;
  const auto err = tsdb::SegmentReader::for_each(
      mutated, [&](wire::ApReport&& r) { decoded.push_back(std::move(r)); });
  EXPECT_EQ(err.status, tsdb::Status::kBadCount);
  EXPECT_TRUE(decoded.empty());
}

TEST(SegmentFuzz, CrcValidTamperedApCountIsTyped) {
  // Same trick on n_aps: the distinct-AP summary disagrees with the AP id
  // column's actual cardinality.
  auto mutated = valid_segment();
  const std::size_t n_aps_at = tsdb::kMagic.size() + 4 + 4 + 4 + 1;
  ASSERT_EQ(mutated[n_aps_at], 4) << "batch size changed; fix the offset math";
  mutated[n_aps_at] = 3;
  reseal_trailer_crc(mutated);
  const auto err = tsdb::SegmentReader::validate(mutated);
  EXPECT_TRUE(err);
  EXPECT_EQ(err.status, tsdb::Status::kBadCount);
}

}  // namespace
}  // namespace wlm
