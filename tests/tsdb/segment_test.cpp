// SegmentWriter/SegmentReader: roundtrip fidelity, header metadata,
// summary-based pruning, and sealed-byte determinism.
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "tsdb/segment.hpp"
#include "wire/messages.hpp"

namespace wlm {
namespace {

/// A report exercising every column: child rows of each kind, repeated MACs
/// (dictionary pressure), negative-adjacent channel/RSSI values.
wire::ApReport make_report(std::uint32_t ap, std::int64_t t_us, Rng& rng) {
  wire::ApReport r;
  r.ap_id = ap;
  r.timestamp_us = t_us;
  r.firmware = 20667;
  for (int i = 0; i < 4; ++i) {
    wire::ClientUsage u;
    u.client = MacAddress::from_u64(0x3c0754000000ULL + rng.next_u64() % 8);
    u.app_id = static_cast<std::uint32_t>(rng.next_u64() % 40);
    u.tx_bytes = rng.next_u64() % 1'000'000;
    u.rx_bytes = rng.next_u64() % 9'000'000;
    r.usage.push_back(u);
  }
  for (int band = 0; band < 2; ++band) {
    wire::ChannelUtilization util;
    util.band = static_cast<std::uint8_t>(band);
    util.channel = band == 0 ? 6 : 149;
    util.cycle_us = 1'000'000;
    util.busy_us = rng.next_u64() % 1'000'000;
    util.rx_frame_us = util.busy_us / 2;
    util.tx_us = util.busy_us / 4;
    r.utilization.push_back(util);
  }
  for (int i = 0; i < 3; ++i) {
    wire::NeighborBss nbr;
    nbr.bssid = MacAddress::from_u64(0x88154E000000ULL + rng.next_u64() % 5);
    nbr.band = static_cast<std::uint8_t>(i % 2);
    nbr.channel = 1 + static_cast<std::int32_t>(rng.next_u64() % 11);
    nbr.rssi_dbm = -30.0 - static_cast<double>(rng.next_u64() % 60);
    nbr.is_hotspot = (i == 1);
    nbr.is_same_fleet = (i == 2);
    r.neighbors.push_back(nbr);
  }
  {
    wire::LinkProbeWindow link;
    link.from_ap = ap > 0 ? ap - 1 : 0;
    link.band = 1;
    link.channel = 36;
    link.probes_expected = 300;
    link.probes_received = 280 + static_cast<std::uint32_t>(rng.next_u64() % 20);
    r.links.push_back(link);
  }
  for (int i = 0; i < 2; ++i) {
    wire::ClientSnapshot c;
    c.client = MacAddress::from_u64(0x3c0754000000ULL + rng.next_u64() % 8);
    c.capability_bits = static_cast<std::uint32_t>(rng.next_u64() % 256);
    c.band = static_cast<std::uint8_t>(i % 2);
    c.rssi_dbm = -45.5 - static_cast<double>(i);
    c.os_id = static_cast<std::uint8_t>(rng.next_u64() % 6);
    r.clients.push_back(c);
  }
  return r;
}

/// Canonical-order batch: ascending AP id, several reports per AP.
std::vector<wire::ApReport> make_batch(std::uint64_t seed, int aps, int per_ap) {
  Rng rng(seed);
  std::vector<wire::ApReport> reports;
  for (int a = 0; a < aps; ++a) {
    for (int k = 0; k < per_ap; ++k) {
      reports.push_back(make_report(100 + static_cast<std::uint32_t>(a),
                                    3'600'000'000LL * (k + 1), rng));
    }
  }
  return reports;
}

std::vector<std::uint8_t> seal_batch(const std::vector<wire::ApReport>& reports,
                                     std::uint32_t network = 7, std::uint32_t batch = 0) {
  tsdb::SegmentWriter writer(network, batch);
  for (const auto& r : reports) writer.add(r);
  return writer.seal();
}

TEST(Segment, RoundTripsEveryFieldInOrder) {
  const auto reports = make_batch(1, /*aps=*/5, /*per_ap=*/3);
  const auto bytes = seal_batch(reports);

  std::vector<wire::ApReport> decoded;
  const auto err = tsdb::SegmentReader::for_each(
      bytes, [&](wire::ApReport&& r) { decoded.push_back(std::move(r)); });
  ASSERT_FALSE(err) << err.detail;
  ASSERT_EQ(decoded.size(), reports.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(decoded[i], reports[i]) << "report " << i;
  }
}

TEST(Segment, HeaderCarriesCountsAndBaseline) {
  const auto reports = make_batch(2, 4, 2);
  tsdb::SegmentWriter writer(42, 9);
  std::uint64_t raw = 0;
  for (const auto& r : reports) {
    writer.add(r);
    raw += wire::encode_report(r).size();
  }
  EXPECT_EQ(writer.raw_wire_bytes(), raw);
  const auto bytes = writer.seal();

  tsdb::SegmentHeader header;
  ASSERT_FALSE(tsdb::SegmentReader::read_header(bytes, header));
  EXPECT_EQ(header.network_id, 42u);
  EXPECT_EQ(header.batch_seq, 9u);
  EXPECT_EQ(header.n_reports, reports.size());
  EXPECT_EQ(header.n_aps, 4u);
  EXPECT_EQ(header.raw_wire_bytes, raw);
  EXPECT_GT(header.n_blocks, 0u);
}

TEST(Segment, SummariesAnswerWithoutDecode) {
  const auto reports = make_batch(3, 3, 4);
  const auto bytes = seal_batch(reports);

  std::int64_t lo = 0, hi = 0;
  ASSERT_FALSE(tsdb::SegmentReader::time_bounds(bytes, lo, hi));
  EXPECT_EQ(lo, 3'600'000'000LL);
  EXPECT_EQ(hi, 4 * 3'600'000'000LL);

  std::vector<std::uint32_t> aps;
  ASSERT_FALSE(tsdb::SegmentReader::ap_ids(bytes, aps));
  EXPECT_EQ(aps, (std::vector<std::uint32_t>{100, 101, 102}));
}

TEST(Segment, SealedBytesAreDeterministic) {
  // Same canonical input, two independent writers: identical bytes. This is
  // the property the fleet's cross---jobs identity reduces to.
  const auto reports = make_batch(4, 6, 3);
  EXPECT_EQ(seal_batch(reports), seal_batch(reports));
}

TEST(Segment, CompresssesRepeatedTelemetryAtLeastThreefold) {
  // A realistic poll batch (repeated MACs, near-sorted timestamps, small
  // value ranges) must hit the >= 3x north star against the row encoding.
  // Week-scale depth: ~12 polls per AP, matching what one network seals at
  // a phase boundary (tiny batches stay under 3x — headers and dictionaries
  // haven't amortized yet; BENCH_fullscale measures 3.8x at fleet scale).
  const auto reports = make_batch(5, 8, 12);
  tsdb::SegmentWriter writer(1, 0);
  for (const auto& r : reports) writer.add(r);
  const std::uint64_t raw = writer.raw_wire_bytes();
  const auto bytes = writer.seal();
  EXPECT_GE(static_cast<double>(raw) / static_cast<double>(bytes.size()), 3.0)
      << raw << " raw vs " << bytes.size() << " sealed";
}

TEST(Segment, EmptySegmentSealsAndValidates) {
  tsdb::SegmentWriter writer(3, 0);
  const auto bytes = writer.seal();
  ASSERT_FALSE(tsdb::SegmentReader::validate(bytes));
  tsdb::SegmentHeader header;
  ASSERT_FALSE(tsdb::SegmentReader::read_header(bytes, header));
  EXPECT_EQ(header.n_reports, 0u);
  int visits = 0;
  ASSERT_FALSE(tsdb::SegmentReader::for_each(bytes, [&](wire::ApReport&&) { ++visits; }));
  EXPECT_EQ(visits, 0);
  std::int64_t lo = -1, hi = -1;
  ASSERT_FALSE(tsdb::SegmentReader::time_bounds(bytes, lo, hi));
  EXPECT_EQ(lo, -1);  // untouched per contract
  EXPECT_EQ(hi, -1);
}

TEST(Segment, ValidateAcceptsWhatForEachAccepts) {
  const auto bytes = seal_batch(make_batch(6, 2, 2));
  EXPECT_FALSE(tsdb::SegmentReader::validate(bytes));
}

}  // namespace
}  // namespace wlm
