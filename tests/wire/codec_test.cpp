#include <gtest/gtest.h>

#include "wire/decoder.hpp"
#include "wire/encoder.hpp"

namespace wlm::wire {
namespace {

TEST(Codec, UintField) {
  Encoder e;
  e.add_uint(1, 42);
  Decoder d(e.bytes());
  const auto f = d.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->number, 1u);
  EXPECT_EQ(f->type, WireType::kVarint);
  EXPECT_EQ(f->as_uint(), 42u);
  EXPECT_FALSE(d.next().has_value());
  EXPECT_TRUE(d.ok());
}

TEST(Codec, SintField) {
  Encoder e;
  e.add_sint(3, -123456);
  Decoder d(e.bytes());
  const auto f = d.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->as_sint(), -123456);
}

TEST(Codec, BoolField) {
  Encoder e;
  e.add_bool(2, true);
  e.add_bool(4, false);
  Decoder d(e.bytes());
  EXPECT_TRUE(d.next()->as_bool());
  EXPECT_FALSE(d.next()->as_bool());
}

TEST(Codec, DoubleFieldExact) {
  Encoder e;
  e.add_double(7, -78.125);
  e.add_double(8, 0.1);
  Decoder d(e.bytes());
  EXPECT_DOUBLE_EQ(d.next()->as_double(), -78.125);
  EXPECT_DOUBLE_EQ(d.next()->as_double(), 0.1);
}

TEST(Codec, StringField) {
  Encoder e;
  e.add_string(5, "netflix.com");
  Decoder d(e.bytes());
  const auto f = d.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->type, WireType::kLengthDelimited);
  EXPECT_EQ(f->as_string(), "netflix.com");
}

TEST(Codec, EmptyStringField) {
  Encoder e;
  e.add_string(5, "");
  Decoder d(e.bytes());
  EXPECT_EQ(d.next()->as_string(), "");
}

TEST(Codec, NestedMessage) {
  Encoder child;
  child.add_uint(1, 99);
  Encoder parent;
  parent.add_message(2, child);
  Decoder d(parent.bytes());
  const auto f = d.next();
  ASSERT_TRUE(f);
  Decoder inner(f->payload);
  EXPECT_EQ(inner.next()->as_uint(), 99u);
}

TEST(Codec, UnknownFieldsSkippable) {
  // Forward compatibility: a decoder that only knows field 1 must walk past
  // fields of every wire type without desync.
  Encoder e;
  e.add_uint(10, 7);
  e.add_double(11, 3.5);
  e.add_string(12, "future stuff");
  e.add_uint(1, 42);
  Decoder d(e.bytes());
  std::uint64_t field1 = 0;
  while (auto f = d.next()) {
    if (f->number == 1) field1 = f->as_uint();
  }
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(field1, 42u);
}

TEST(Codec, MalformedTagFlagsError) {
  // Field number 0 is illegal.
  const std::vector<std::uint8_t> bad{0x00, 0x01};
  Decoder d(bad);
  EXPECT_FALSE(d.next().has_value());
  EXPECT_FALSE(d.ok());
}

TEST(Codec, TruncatedLengthDelimitedFlagsError) {
  Encoder e;
  e.add_string(1, "hello world");
  auto bytes = e.bytes();
  bytes.resize(bytes.size() - 4);
  Decoder d(bytes);
  EXPECT_FALSE(d.next().has_value());
  EXPECT_FALSE(d.ok());
}

TEST(Codec, TruncatedFixed64FlagsError) {
  Encoder e;
  e.add_double(1, 1.0);
  auto bytes = e.bytes();
  bytes.resize(bytes.size() - 1);
  Decoder d(bytes);
  EXPECT_FALSE(d.next().has_value());
  EXPECT_FALSE(d.ok());
}

TEST(Codec, EmptyMessageDecodesToNothing) {
  Decoder d(std::span<const std::uint8_t>{});
  EXPECT_FALSE(d.next().has_value());
  EXPECT_TRUE(d.ok());
  EXPECT_TRUE(d.at_end());
}

TEST(Codec, ManyFieldsRoundTrip) {
  Encoder e;
  for (std::uint32_t i = 1; i <= 100; ++i) e.add_uint(i, i * 17);
  Decoder d(e.bytes());
  std::uint32_t count = 0;
  while (auto f = d.next()) {
    ++count;
    EXPECT_EQ(f->as_uint(), f->number * 17);
  }
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(count, 100u);
}

}  // namespace
}  // namespace wlm::wire
