#include "wire/framing.hpp"

#include <gtest/gtest.h>

namespace wlm::wire {
namespace {

std::vector<std::uint8_t> payload_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Framing, SingleFrameRoundTrip) {
  std::vector<std::uint8_t> stream;
  append_frame(stream, payload_of("hello"));
  const auto result = decode_stream(stream);
  ASSERT_EQ(result.payloads.size(), 1u);
  EXPECT_EQ(result.payloads[0], payload_of("hello"));
  EXPECT_EQ(result.corrupt_frames, 0u);
  EXPECT_EQ(result.resync_bytes, 0u);
}

TEST(Framing, MultipleFramesInOrder) {
  std::vector<std::uint8_t> stream;
  append_frame(stream, payload_of("one"));
  append_frame(stream, payload_of("two"));
  append_frame(stream, payload_of("three"));
  const auto result = decode_stream(stream);
  ASSERT_EQ(result.payloads.size(), 3u);
  EXPECT_EQ(result.payloads[1], payload_of("two"));
}

TEST(Framing, EmptyPayloadAllowed) {
  std::vector<std::uint8_t> stream;
  append_frame(stream, {});
  const auto result = decode_stream(stream);
  ASSERT_EQ(result.payloads.size(), 1u);
  EXPECT_TRUE(result.payloads[0].empty());
}

TEST(Framing, CorruptCrcIsCountedAndSkipped) {
  std::vector<std::uint8_t> stream;
  append_frame(stream, payload_of("good-1"));
  const std::size_t second_start = stream.size();
  append_frame(stream, payload_of("bad!!!"));
  append_frame(stream, payload_of("good-2"));
  stream[second_start + 4] ^= 0xFF;  // flip a payload byte of frame 2
  const auto result = decode_stream(stream);
  ASSERT_EQ(result.payloads.size(), 2u);
  EXPECT_EQ(result.payloads[0], payload_of("good-1"));
  EXPECT_EQ(result.payloads[1], payload_of("good-2"));
  EXPECT_EQ(result.corrupt_frames, 1u);
}

TEST(Framing, ResyncsAfterGarbage) {
  std::vector<std::uint8_t> stream{0x01, 0x02, 0x03, 0x04};  // line noise
  append_frame(stream, payload_of("payload"));
  const auto result = decode_stream(stream);
  ASSERT_EQ(result.payloads.size(), 1u);
  EXPECT_EQ(result.resync_bytes, 4u);
}

TEST(Framing, TruncatedTailIgnored) {
  std::vector<std::uint8_t> stream;
  append_frame(stream, payload_of("complete"));
  std::vector<std::uint8_t> partial;
  append_frame(partial, payload_of("partial frame data"));
  stream.insert(stream.end(), partial.begin(), partial.begin() + 6);
  const auto result = decode_stream(stream);
  EXPECT_EQ(result.payloads.size(), 1u);
}

TEST(Framing, OverheadFormula) {
  std::vector<std::uint8_t> stream;
  const auto payload = payload_of("abcdefgh");
  append_frame(stream, payload);
  EXPECT_EQ(stream.size(), payload.size() + frame_overhead(payload.size()));
  // 2 magic + 1 length byte + 4 CRC for short payloads.
  EXPECT_EQ(frame_overhead(8), 7u);
  EXPECT_EQ(frame_overhead(200), 8u);  // two-byte varint length
}

TEST(Framing, LargePayloadRoundTrip) {
  std::vector<std::uint8_t> payload(100'000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  std::vector<std::uint8_t> stream;
  append_frame(stream, payload);
  const auto result = decode_stream(stream);
  ASSERT_EQ(result.payloads.size(), 1u);
  EXPECT_EQ(result.payloads[0], payload);
}

TEST(Framing, PayloadRangeLocatesExactlyThePayload) {
  std::vector<std::uint8_t> stream;
  append_frame(stream, payload_of("abcdefgh"));
  const auto range = frame_payload_range(stream);
  ASSERT_TRUE(range.has_value());
  // 2 magic + 1 varint length byte precede the 8-byte payload.
  EXPECT_EQ(range->first, 3u);
  EXPECT_EQ(range->second, 11u);
  EXPECT_EQ(stream[range->first], 'a');
  EXPECT_EQ(stream[range->second - 1], 'h');
  // Flipping a bit inside the range damages the CRC, not the framing.
  stream[range->first + 2] ^= 0x01;
  const auto result = decode_stream(stream);
  EXPECT_TRUE(result.payloads.empty());
  EXPECT_EQ(result.corrupt_frames, 1u);
  EXPECT_EQ(result.resync_bytes, 0u);
}

TEST(Framing, PayloadRangeRejectsNonFrames) {
  EXPECT_FALSE(frame_payload_range({}).has_value());
  const std::vector<std::uint8_t> noise{0x01, 0x02, 0x03, 0x04, 0x05};
  EXPECT_FALSE(frame_payload_range(noise).has_value());
  std::vector<std::uint8_t> stream;
  append_frame(stream, payload_of("truncated"));
  stream.pop_back();  // CRC no longer fully present
  EXPECT_FALSE(frame_payload_range(stream).has_value());
}

TEST(Framing, PayloadRangeEmptyPayloadIsEmptyRange) {
  std::vector<std::uint8_t> stream;
  append_frame(stream, {});
  const auto range = frame_payload_range(stream);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->first, range->second);
}

TEST(Framing, MagicInsidePayloadDoesNotConfuse) {
  // A payload containing the magic sequence must not break framing.
  std::vector<std::uint8_t> payload{kFrameMagic0, kFrameMagic1, kFrameMagic0,
                                    kFrameMagic1, 0x42};
  std::vector<std::uint8_t> stream;
  append_frame(stream, payload);
  append_frame(stream, payload_of("next"));
  const auto result = decode_stream(stream);
  ASSERT_EQ(result.payloads.size(), 2u);
  EXPECT_EQ(result.payloads[0], payload);
}

}  // namespace
}  // namespace wlm::wire
