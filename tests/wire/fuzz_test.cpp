// Robustness fuzzing: the decoders sit on the WAN-facing path and must
// survive arbitrary bytes — random garbage, random mutations of valid
// messages, and truncations at every byte — without crashing or reading
// out of bounds (ASAN-clean by construction: spans everywhere).
#include <gtest/gtest.h>

#include "classify/dhcp.hpp"
#include "classify/dns.hpp"
#include "classify/tls.hpp"
#include "core/rng.hpp"
#include "mac/beacon_frame.hpp"
#include "wire/framing.hpp"
#include "wire/messages.hpp"

namespace wlm {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

wire::ApReport sample_report() {
  wire::ApReport r;
  r.ap_id = 42;
  r.timestamp_us = 1'000'000;
  for (std::uint32_t i = 0; i < 20; ++i) {
    r.usage.push_back(wire::ClientUsage{MacAddress::from_u64(i), i % 40, i * 3, i * 7});
  }
  wire::NeighborBss n;
  n.bssid = MacAddress::from_u64(0x001529000001ULL);
  n.channel = 6;
  n.rssi_dbm = -70.5;
  r.neighbors.push_back(n);
  return r;
}

TEST(Fuzz, ReportDecoderSurvivesGarbage) {
  Rng rng(1);
  for (int i = 0; i < 3000; ++i) {
    const auto junk = random_bytes(rng, 1 + rng.next_u64() % 300);
    (void)wire::decode_report(junk);  // must not crash
  }
}

TEST(Fuzz, ReportDecoderSurvivesMutations) {
  Rng rng(2);
  const auto valid = wire::encode_report(sample_report());
  for (int i = 0; i < 3000; ++i) {
    auto mutated = valid;
    const int flips = 1 + static_cast<int>(rng.next_u64() % 8);
    for (int f = 0; f < flips; ++f) {
      mutated[rng.next_u64() % mutated.size()] ^=
          static_cast<std::uint8_t>(1 + rng.next_u64() % 255);
    }
    (void)wire::decode_report(mutated);
  }
}

TEST(Fuzz, ReportDecoderSurvivesEveryTruncation) {
  const auto valid = wire::encode_report(sample_report());
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    std::vector<std::uint8_t> partial(valid.begin(),
                                      valid.begin() + static_cast<std::ptrdiff_t>(cut));
    (void)wire::decode_report(partial);
  }
}

TEST(Fuzz, StreamDecoderSurvivesGarbage) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto junk = random_bytes(rng, rng.next_u64() % 600);
    const auto result = wire::decode_stream(junk);
    EXPECT_LE(result.payloads.size(), junk.size());
  }
}

TEST(Fuzz, DnsParserSurvives) {
  Rng rng(4);
  for (int i = 0; i < 3000; ++i) {
    (void)classify::parse_dns(random_bytes(rng, rng.next_u64() % 200));
  }
  const auto valid = classify::encode_dns_query(7, "fuzz.example.com");
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    std::vector<std::uint8_t> partial(valid.begin(),
                                      valid.begin() + static_cast<std::ptrdiff_t>(cut));
    (void)classify::parse_dns(partial);
  }
}

TEST(Fuzz, TlsParserSurvives) {
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    (void)classify::parse_client_hello(random_bytes(rng, rng.next_u64() % 300));
  }
  auto valid = classify::build_client_hello("fuzz.example.com", 9);
  for (int i = 0; i < 2000; ++i) {
    auto mutated = valid;
    mutated[rng.next_u64() % mutated.size()] ^= static_cast<std::uint8_t>(rng.next_u64());
    (void)classify::parse_client_hello(mutated);
  }
}

TEST(Fuzz, DhcpParserSurvives) {
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    (void)classify::parse_dhcp(random_bytes(rng, rng.next_u64() % 400));
  }
  classify::DhcpPacket pkt;
  pkt.client_mac = MacAddress::from_u64(1);
  pkt.parameter_request_list = classify::canonical_dhcp_params(classify::OsType::kWindows);
  auto valid = classify::encode_dhcp(pkt);
  for (int i = 0; i < 2000; ++i) {
    auto mutated = valid;
    mutated[rng.next_u64() % mutated.size()] ^= static_cast<std::uint8_t>(rng.next_u64());
    (void)classify::parse_dhcp(mutated);
  }
}

TEST(Fuzz, BeaconParserSurvives) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    (void)mac::parse_beacon_frame(random_bytes(rng, rng.next_u64() % 200));
  }
  mac::BeaconFrame frame;
  frame.bssid = MacAddress::from_u64(3);
  frame.ssid = "fuzz";
  frame.rates = mac::rates_11g();
  const auto valid = mac::encode_beacon_frame(frame);
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    std::vector<std::uint8_t> partial(valid.begin(),
                                      valid.begin() + static_cast<std::ptrdiff_t>(cut));
    (void)mac::parse_beacon_frame(partial);
  }
}

}  // namespace
}  // namespace wlm
