#include "wire/messages.hpp"

#include <gtest/gtest.h>

namespace wlm::wire {
namespace {

ApReport sample_report() {
  ApReport r;
  r.ap_id = 1234;
  r.timestamp_us = 86'400'000'000LL;
  r.firmware = 2;
  r.usage.push_back(
      ClientUsage{MacAddress::from_u64(0x3c0754aabbccULL), 7, 1'000'000, 9'000'000});
  r.usage.push_back(ClientUsage{MacAddress::from_u64(0x001b21ddeeffULL), 2, 5, 0});
  ChannelUtilization u;
  u.band = 0;
  u.channel = 6;
  u.cycle_us = 300'000'000;
  u.busy_us = 75'000'000;
  u.rx_frame_us = 60'000'000;
  u.tx_us = 1'000'000;
  r.utilization.push_back(u);
  NeighborBss n;
  n.bssid = MacAddress::from_u64(0x001529123456ULL);
  n.band = 0;
  n.channel = 1;
  n.rssi_dbm = -77.25;
  n.is_hotspot = true;
  r.neighbors.push_back(n);
  LinkProbeWindow l;
  l.from_ap = 99;
  l.band = 1;
  l.channel = 36;
  l.probes_expected = 20;
  l.probes_received = 17;
  r.links.push_back(l);
  ClientSnapshot c;
  c.client = MacAddress::from_u64(0x3c0754aabbccULL);
  c.capability_bits = 0x1F;
  c.band = 1;
  c.rssi_dbm = -64.5;
  c.os_id = 2;
  r.clients.push_back(c);
  return r;
}

TEST(Messages, FullRoundTrip) {
  const ApReport original = sample_report();
  const auto bytes = encode_report(original);
  const auto decoded = decode_report(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
}

TEST(Messages, EmptyReportRoundTrip) {
  ApReport empty;
  const auto decoded = decode_report(encode_report(empty));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, empty);
}

TEST(Messages, NegativeTimestampSurvives) {
  ApReport r;
  r.timestamp_us = -42;  // pre-epoch timestamps must not corrupt
  const auto decoded = decode_report(encode_report(r));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->timestamp_us, -42);
}

TEST(Messages, LinkWindowDeliveryRatio) {
  LinkProbeWindow w;
  w.probes_expected = 20;
  w.probes_received = 15;
  EXPECT_DOUBLE_EQ(w.delivery_ratio(), 0.75);
  w.probes_expected = 0;
  EXPECT_DOUBLE_EQ(w.delivery_ratio(), 0.0);
}

TEST(Messages, MalformedBytesRejected) {
  std::vector<std::uint8_t> junk{0x00, 0xFF, 0x80};
  EXPECT_FALSE(decode_report(junk).has_value());
}

TEST(Messages, TruncatedReportRejected) {
  auto bytes = encode_report(sample_report());
  bytes.resize(bytes.size() / 2);
  // Either cleanly rejected or the truncation lands between fields; it must
  // never crash, and a mid-field cut must be detected.
  (void)decode_report(bytes);
}

TEST(Messages, WireSizeIsCompact) {
  // The §2 overhead budget depends on varint packing: a usage record with
  // small counters must cost far less than its in-memory footprint.
  ApReport r;
  r.ap_id = 1;
  r.usage.push_back(ClientUsage{MacAddress::from_u64(0xAABBCCDDEEFFULL), 3, 100, 2000});
  const auto bytes = encode_report(r);
  EXPECT_LT(bytes.size(), 32u);
}

TEST(Messages, ManyRecordsRoundTrip) {
  ApReport r;
  r.ap_id = 7;
  for (std::uint32_t i = 0; i < 500; ++i) {
    r.usage.push_back(ClientUsage{MacAddress::from_u64(i), i % 40, i, i * 2});
  }
  const auto decoded = decode_report(encode_report(r));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->usage.size(), 500u);
  EXPECT_EQ(*decoded, r);
}

}  // namespace
}  // namespace wlm::wire
