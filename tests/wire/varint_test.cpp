#include "wire/varint.hpp"

#include <gtest/gtest.h>

namespace wlm::wire {
namespace {

TEST(Varint, SingleByteValues) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 0);
  put_varint(buf, 127);
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{0x00, 0x7F}));
}

TEST(Varint, KnownEncodings) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 300);
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{0xAC, 0x02}));
}

TEST(Varint, MaxValueIsTenBytes) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, UINT64_MAX);
  EXPECT_EQ(buf.size(), 10u);
  const auto r = get_varint(buf);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, UINT64_MAX);
  EXPECT_EQ(r->consumed, 10u);
}

TEST(Varint, TruncatedFails) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 1'000'000);
  buf.pop_back();
  EXPECT_FALSE(get_varint(buf).has_value());
  EXPECT_FALSE(get_varint({}).has_value());
}

TEST(Varint, OverlongFails) {
  // Eleven continuation bytes can never terminate legally.
  const std::vector<std::uint8_t> bad(11, 0x80);
  EXPECT_FALSE(get_varint(bad).has_value());
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, EncodeDecode) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, GetParam());
  const auto r = get_varint(buf);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, GetParam());
  EXPECT_EQ(r->consumed, buf.size());
  EXPECT_EQ(varint_size(GetParam()), buf.size());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTrip,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 16'383ULL, 16'384ULL, 2'097'151ULL,
                      2'097'152ULL, 0xFFFFFFFFULL, 0x100000000ULL, UINT64_MAX - 1,
                      UINT64_MAX));

class ZigzagRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ZigzagRoundTrip, EncodeDecode) {
  EXPECT_EQ(zigzag_decode(zigzag_encode(GetParam())), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, ZigzagRoundTrip,
                         ::testing::Values(0LL, 1LL, -1LL, 2LL, -2LL, 1'000'000LL,
                                           -1'000'000LL, INT64_MAX, INT64_MIN));

TEST(Zigzag, SmallNegativesStaySmall) {
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-64), 127u);  // still one varint byte
}

TEST(Varint, SequentialDecodeConsumesCorrectly) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 5);
  put_varint(buf, 70'000);
  put_varint(buf, 0);
  std::span<const std::uint8_t> view = buf;
  const auto a = get_varint(view);
  ASSERT_TRUE(a);
  view = view.subspan(a->consumed);
  const auto b = get_varint(view);
  ASSERT_TRUE(b);
  view = view.subspan(b->consumed);
  const auto c = get_varint(view);
  ASSERT_TRUE(c);
  EXPECT_EQ(a->value, 5u);
  EXPECT_EQ(b->value, 70'000u);
  EXPECT_EQ(c->value, 0u);
  EXPECT_EQ(view.size(), c->consumed);
}

}  // namespace
}  // namespace wlm::wire
