#!/usr/bin/env bash
# Local CI: the tier-1 suite plus sanitizer passes.
#
#   tools/ci.sh            # tier-1 + ASan/UBSan + TSan
#   tools/ci.sh --fast     # tier-1 only
#
# Each configuration builds into its own tree (build/, build-asan/,
# build-tsan/) so switching sanitizers never poisons the plain build.
# TSan specifically vets the sharded fleet harvest: the determinism tests
# run the same campaign at several thread counts, which is exactly the
# interleaving a data race would need to surface.
set -euo pipefail
cd "$(dirname "$0")/.."

run_suite() {
  local dir="$1"
  local ctest_filter="$2"
  shift 2
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  cmake --build "${dir}" -j"$(nproc)"
  (cd "${dir}" && ctest --output-on-failure -j"$(nproc)" ${ctest_filter})
}

run_suite build ""

# Bench smoke: run the two headline benches at a tiny scale and assert the
# emitted BENCH JSON parses and carries the telemetry phase profile. The
# scorecard's paper-figure checks are allowed to fail at this scale (the
# calibration targets assume a full-size fleet); the smoke only cares that
# the harness itself runs and reports.
bench_smoke() {
  local json="build/BENCH_smoke.json"
  rm -f "${json}"
  echo "=== bench smoke (tiny scale) ==="
  WLM_BENCH_JSON="${json}" ./build/bench/bench_scorecard 12 0.2 7 2 > /dev/null \
    || echo "bench_scorecard: nonzero exit tolerated at smoke scale"
  WLM_BENCH_JSON="${json}" ./build/bench/bench_fault_sweep 6 0.2 7 2 > /dev/null
  if [[ ! -s "${json}" ]]; then
    echo "bench smoke: ${json} missing or empty" >&2
    exit 1
  fi
  if command -v python3 > /dev/null 2>&1; then
    # Every line must parse as JSON; at least one record (bench_fault_sweep
    # also appends plain per-cell lines) must carry a non-empty
    # telemetry.phases profile AND the throughput fields (the work tally is
    # deterministic, so a zero fragments_frames_per_sec means the counters
    # came unhooked, not that the machine was slow).
    python3 - "${json}" << 'EOF'
import json, sys
have_phases = have_throughput = False
with open(sys.argv[1]) as f:
    for n, line in enumerate(f, 1):
        rec = json.loads(line)  # raises -> nonzero exit on malformed output
        if rec.get("telemetry", {}).get("phases", []):
            have_phases = True
        if rec.get("fragments_frames_per_sec", 0) > 0 and rec.get("peak_rss_bytes", 0) > 0:
            have_throughput = True
if not have_phases:
    sys.exit("bench smoke: no record carries a telemetry.phases profile")
if not have_throughput:
    sys.exit("bench smoke: no record carries fragments_frames_per_sec/peak_rss_bytes")
print(f"bench smoke: {n} JSON lines, telemetry profile + throughput fields present")
EOF
  else
    grep -q '"telemetry": {"phases":\[{' "${json}" || {
      echo "bench smoke: no telemetry.phases in ${json}" >&2
      exit 1
    }
    grep -q '"fragments_frames_per_sec": ' "${json}" || {
      echo "bench smoke: no fragments_frames_per_sec in ${json}" >&2
      exit 1
    }
    echo "bench smoke: telemetry profile + throughput fields present (grep fallback)"
  fi
}
bench_smoke

# Classify fast-path smoke: run the two-tier contrast at a reduced stream
# size and require the JSON record to parse, the verdict checksums to have
# matched (the bench exits nonzero on a mismatch), and the RuleIndex +
# VerdictCache path to clear the 3x throughput floor over the reference
# engine. `--benchmark_filter=^$` skips the google-benchmark loops so the
# smoke stays fast.
classify_smoke() {
  local json="build/BENCH_classify_smoke.json"
  rm -f "${json}"
  echo "=== classify fast-path smoke ==="
  WLM_CLASSIFY_BENCH_FLOWS=20000 WLM_CLASSIFY_BENCH_JSON="${json}" \
    ./build/bench/bench_perf_micro --benchmark_filter='^$' > /dev/null
  if [[ ! -s "${json}" ]]; then
    echo "classify smoke: ${json} missing or empty" >&2
    exit 1
  fi
  if command -v python3 > /dev/null 2>&1; then
    python3 - "${json}" << 'EOF'
import json, sys
with open(sys.argv[1]) as f:
    rec = json.loads(f.readline())
speedup = rec["speedup"]
cache = rec["cache"]
if speedup < 3.0:
    sys.exit(f"classify smoke: speedup {speedup} below the 3x floor")
if cache["hits"] == 0:
    sys.exit("classify smoke: the verdict cache never hit")
print(f"classify smoke: {speedup}x over reference, "
      f"{cache['hits']} hits / {cache['misses']} misses")
EOF
  else
    grep -q '"speedup"' "${json}" || {
      echo "classify smoke: no speedup field in ${json}" >&2
      exit 1
    }
    echo "classify smoke: record present (grep fallback)"
  fi
}
classify_smoke

# PER-table smoke: run the SINR->PER contrast at a reduced stream size and
# require identical frame-error decisions (bench_perf_micro exits nonzero on
# a mismatch) plus a >= 2x table-over-scalar throughput floor. The floor is
# deliberately below the typical 5-10x so scheduler noise can't flake the
# lane while a real regression (table silently falling back to the scalar
# path) still trips it.
per_smoke() {
  local json="build/BENCH_per_smoke.json"
  rm -f "${json}"
  echo "=== PER table smoke ==="
  WLM_PER_BENCH_EVALS=300000 WLM_PER_BENCH_JSON="${json}" \
    WLM_CLASSIFY_BENCH_FLOWS=2000 WLM_CLASSIFY_BENCH_JSON=/dev/null \
    ./build/bench/bench_perf_micro --benchmark_filter='^$' > /dev/null
  if [[ ! -s "${json}" ]]; then
    echo "per smoke: ${json} missing or empty" >&2
    exit 1
  fi
  if command -v python3 > /dev/null 2>&1; then
    python3 - "${json}" << 'EOF'
import json, sys
with open(sys.argv[1]) as f:
    rec = json.loads(f.readline())
if rec["speedup"] < 2.0:
    sys.exit(f"per smoke: table speedup {rec['speedup']} below the 2x floor")
print(f"per smoke: {rec['speedup']}x over the scalar oracle, decisions identical")
EOF
  else
    grep -q '"speedup"' "${json}" || {
      echo "per smoke: no speedup field in ${json}" >&2
      exit 1
    }
    echo "per smoke: record present (grep fallback)"
  fi
}
per_smoke

# Checkpoint/resume smoke: kill a campaign at a phase boundary, resume it in
# a new process at a different --jobs, and require byte-identical stdout and
# metrics versus the run that never stopped (the tier-1 e2e tests prove this
# in-process; the smoke proves the shipped wlmctl wiring does too).
ckpt_smoke() {
  echo "=== checkpoint/resume smoke ==="
  local dir="build/ckpt-smoke"
  rm -rf "${dir}" && mkdir -p "${dir}"
  local flags=(--networks 5 --seed 11 --faults "outage_rate=2,outage_hours=12,corrupt=0.01")
  ./build/tools/wlmctl simulate "${flags[@]}" --jobs 2 \
    --metrics-out "${dir}/full.metrics" > "${dir}/full.out"
  ./build/tools/wlmctl simulate "${flags[@]}" --jobs 1 \
    --checkpoint-out "${dir}/cut.wlmckpt" --halt-after-phase mr16 \
    > "${dir}/halted.out" 2> /dev/null
  ./build/tools/wlmctl simulate --resume-from "${dir}/cut.wlmckpt" --jobs 4 \
    --metrics-out "${dir}/resumed.metrics" > "${dir}/resumed.out" 2> /dev/null
  cmp "${dir}/full.out" "${dir}/resumed.out" || {
    echo "ckpt smoke: resumed stdout differs from the uninterrupted run" >&2
    exit 1
  }
  cmp "${dir}/full.metrics" "${dir}/resumed.metrics" || {
    echo "ckpt smoke: resumed metrics differ from the uninterrupted run" >&2
    exit 1
  }
  # A truncated checkpoint must fail with a diagnostic, not a crash.
  head -c 40 "${dir}/cut.wlmckpt" > "${dir}/torn.wlmckpt"
  if ./build/tools/wlmctl simulate --resume-from "${dir}/torn.wlmckpt" \
    > /dev/null 2> "${dir}/torn.err"; then
    echo "ckpt smoke: resume from a truncated checkpoint succeeded" >&2
    exit 1
  fi
  grep -q "cannot resume" "${dir}/torn.err" || {
    echo "ckpt smoke: truncated resume died without a diagnostic" >&2
    exit 1
  }
  echo "ckpt smoke: kill/resume byte-identical, torn checkpoint fails closed"
}
ckpt_smoke

# Crash-recovery smoke: the shard supervision layer through the shipped
# wlmctl wiring (the tier-1 `failsafe` label proves it in-process). Kills
# one network with a failpoint and requires: the campaign still completes
# (exit 3 = degraded, not a crash), the manifest names exactly that
# network, the surviving shards' output is byte-identical across --jobs,
# a transient failure recovers to byte-identical clean output, and a
# missing resume checkpoint exits with the distinct I/O code (4).
failsafe_smoke() {
  echo "=== crash-recovery (failsafe) smoke ==="
  local dir="build/failsafe-smoke"
  rm -rf "${dir}" && mkdir -p "${dir}"
  local flags=(--networks 5 --seed 11)
  local kill_spec="site=poller.poll,net=3,action=throw"

  # Kill-one-shard campaign: must finish degraded, naming network 3.
  local rc=0
  ./build/tools/wlmctl simulate "${flags[@]}" --jobs 2 \
    --failpoints "${kill_spec}" --max-shard-retries 1 \
    > "${dir}/degraded-j2.out" 2> /dev/null || rc=$?
  if [[ "${rc}" -ne 3 ]]; then
    echo "failsafe smoke: kill-one-shard run exited ${rc}, want 3 (degraded)" >&2
    exit 1
  fi
  grep -q "\[quarantined\] network 3" "${dir}/degraded-j2.out" || {
    echo "failsafe smoke: manifest does not quarantine network 3" >&2
    exit 1
  }
  # The degraded run is still a deterministic artifact: same bytes per jobs.
  for jobs in 1 8; do
    ./build/tools/wlmctl simulate "${flags[@]}" --jobs "${jobs}" \
      --failpoints "${kill_spec}" --max-shard-retries 1 \
      > "${dir}/degraded-j${jobs}.out" 2> /dev/null || true
    cmp "${dir}/degraded-j2.out" "${dir}/degraded-j${jobs}.out" || {
      echo "failsafe smoke: degraded output differs at --jobs ${jobs}" >&2
      exit 1
    }
  done

  # Transient failure + retry: byte-identical to the unfaulted run.
  ./build/tools/wlmctl simulate "${flags[@]}" --jobs 2 > "${dir}/clean.out"
  ./build/tools/wlmctl simulate "${flags[@]}" --jobs 2 \
    --failpoints "site=shard.step,net=3,action=throw,times=1" \
    --max-shard-retries 2 > "${dir}/recovered.out" 2> /dev/null
  cmp "${dir}/clean.out" "${dir}/recovered.out" || {
    echo "failsafe smoke: recovered run differs from the unfaulted run" >&2
    exit 1
  }

  # A nonexistent --resume-from path is a typed I/O error, exit code 4.
  rc=0
  ./build/tools/wlmctl simulate --resume-from "${dir}/no-such.wlmckpt" \
    > /dev/null 2> "${dir}/missing.err" || rc=$?
  if [[ "${rc}" -ne 4 ]]; then
    echo "failsafe smoke: missing checkpoint exited ${rc}, want 4 (resume I/O)" >&2
    exit 1
  fi
  grep -q "cannot resume" "${dir}/missing.err" || {
    echo "failsafe smoke: missing-checkpoint resume lacked a diagnostic" >&2
    exit 1
  }
  echo "failsafe smoke: degraded completion deterministic, retry recovers, resume I/O typed"
}
failsafe_smoke

# Full-scale streaming-harvest smoke: the tsdb segment store + spill path
# through the shipped wlmctl wiring (the tier-1 `tsdb` label proves the
# store in-process; BENCH_fullscale measures the real 20,667-network
# campaign). A tiny fleet runs once with a roomy segment ceiling (streaming
# on, nothing spills) and once with a deliberately tiny 1 MiB ceiling that
# forces every sealed segment to disk. Requirements: the tiny-ceiling run
# actually produced spill files, its stdout is byte-identical to the
# unspilled run, and its peak RSS stays under a generous absolute bound —
# the ceiling governs resident segment bytes, so the bound catches the
# store accidentally holding everything resident anyway.
fullscale_smoke() {
  echo "=== full-scale streaming-harvest smoke ==="
  local dir="build/fullscale-smoke"
  rm -rf "${dir}" && mkdir -p "${dir}/spill"
  local flags=(--networks 12 --seed 11 --jobs 2)

  ./build/tools/wlmctl simulate "${flags[@]}" --mem-ceiling-mb 4096 \
    --spill-dir "${dir}/spill" > "${dir}/resident.out"
  if compgen -G "${dir}/spill/tsdb_spill_*.ckpt" > /dev/null; then
    echo "fullscale smoke: roomy ceiling spilled sealed segments" >&2
    exit 1
  fi

  if command -v python3 > /dev/null 2>&1; then
    # Run the spilled pass under a wrapper that reports the child's peak
    # RSS (ru_maxrss) and enforce a 768 MiB bound — far above a tiny
    # fleet's honest footprint, far below an everything-resident bug.
    python3 - "${dir}" "${flags[@]}" << 'EOF'
import resource, subprocess, sys
outdir = sys.argv[1]
cmd = ["./build/tools/wlmctl", "simulate", *sys.argv[2:],
       "--mem-ceiling-mb", "1", "--spill-dir", f"{outdir}/spill"]
with open(f"{outdir}/spilled.out", "wb") as out:
    rc = subprocess.call(cmd, stdout=out)
if rc != 0:
    sys.exit(f"fullscale smoke: spilled run exited {rc}")
rss_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
cap_kb = 768 * 1024
if rss_kb > cap_kb:
    sys.exit(f"fullscale smoke: peak RSS {rss_kb} KB above the {cap_kb} KB bound")
print(f"fullscale smoke: spilled run peak RSS {rss_kb} KB (bound {cap_kb} KB)")
EOF
  else
    ./build/tools/wlmctl simulate "${flags[@]}" --mem-ceiling-mb 1 \
      --spill-dir "${dir}/spill" > "${dir}/spilled.out"
    echo "fullscale smoke: RSS bound skipped (no python3)"
  fi

  compgen -G "${dir}/spill/tsdb_spill_*.ckpt" > /dev/null || {
    echo "fullscale smoke: 1 MiB ceiling never spilled" >&2
    exit 1
  }
  cmp "${dir}/resident.out" "${dir}/spilled.out" || {
    echo "fullscale smoke: spilled stdout differs from the unspilled run" >&2
    exit 1
  }
  echo "fullscale smoke: spill occurred, spilled output byte-identical to resident"
}
fullscale_smoke

# Mobility (roaming) smoke: the waypoint walk + handoff path through the
# shipped wlmctl wiring (the tier-1 `mobility` label proves it in-process).
# A tiny mobile campaign must render byte-identical roaming artifacts at any
# --jobs, must actually roam (a walk that never hands off would pass every
# determinism check while testing nothing), and its telemetry must still
# reconcile with the loss ledger — churn may move bytes between APs, never
# invent or lose them.
mobility_smoke() {
  echo "=== mobility (roaming) smoke ==="
  local dir="build/mobility-smoke"
  rm -rf "${dir}" && mkdir -p "${dir}"
  local flags=(--networks 5 --seed 11 --mobility on --mobility-steps 48)

  for jobs in 1 2 8; do
    ./build/tools/wlmctl report roamcdf "${flags[@]}" --jobs "${jobs}" \
      > "${dir}/roamcdf-j${jobs}.out"
  done
  for jobs in 2 8; do
    cmp "${dir}/roamcdf-j1.out" "${dir}/roamcdf-j${jobs}.out" || {
      echo "mobility smoke: roam-rate CDF differs at --jobs ${jobs}" >&2
      exit 1
    }
  done

  ./build/tools/wlmctl report sticky "${flags[@]}" --jobs 2 > "${dir}/sticky.out"
  grep -q "committed roams" "${dir}/sticky.out" || {
    echo "mobility smoke: sticky report lacks the roam counters" >&2
    exit 1
  }
  if grep -Eq "committed roams +\| +0 \|" "${dir}/sticky.out"; then
    echo "mobility smoke: the mobile campaign never roamed" >&2
    exit 1
  fi

  # Ledger reconciliation with the walk enabled (and faults chewing on the
  # tunnels): wlmctl stats exits nonzero unless telemetry matches the ledger.
  ./build/tools/wlmctl stats "${flags[@]}" --jobs 2 \
    --faults "outage_rate=2,outage_hours=12,corrupt=0.01" \
    > "${dir}/stats.out" || {
    echo "mobility smoke: telemetry/ledger reconciliation failed under churn" >&2
    exit 1
  }
  echo "mobility smoke: roaming deterministic across jobs, ledger reconciles"
}
mobility_smoke

# Mesh (multi-hop backhaul) smoke: the relay routing + per-hop accounting
# path through the shipped wlmctl wiring (the tier-1 `mesh` label proves it
# in-process). A mesh campaign must be byte-identical at any --jobs, a
# gateway-outage scenario must complete with a reconciled ledger (wlmctl
# stats exits nonzero otherwise) AND actually strand reports — a topology
# where nothing partitions would pass every determinism check while testing
# nothing — and the hop-count artifact must render relayed traffic.
mesh_smoke() {
  echo "=== mesh (multi-hop backhaul) smoke ==="
  local dir="build/mesh-smoke"
  rm -rf "${dir}" && mkdir -p "${dir}"
  local flags=(--networks 8 --seed 7 --mesh-fraction 0.5)

  for jobs in 1 2 8; do
    ./build/tools/wlmctl simulate "${flags[@]}" --jobs "${jobs}" \
      > "${dir}/sim-j${jobs}.out"
  done
  for jobs in 2 8; do
    cmp "${dir}/sim-j1.out" "${dir}/sim-j${jobs}.out" || {
      echo "mesh smoke: mesh campaign output differs at --jobs ${jobs}" >&2
      exit 1
    }
  done

  # Gateway outages strand relay subtrees; stats exits nonzero unless the
  # telemetry counters reconcile with the loss ledger, partition bucket
  # included.
  ./build/tools/wlmctl stats --networks 8 --seed 7 --mesh-fraction 0.6 \
    --jobs 2 --faults "outage_rate=3,outage_hours=40" > "${dir}/stats.out" || {
    echo "mesh smoke: telemetry/ledger reconciliation failed under gateway outages" >&2
    exit 1
  }
  grep -Eq "^wlm_mesh_partition_lost_total [1-9]" "${dir}/stats.out" || {
    echo "mesh smoke: the gateway-outage scenario never stranded a subtree" >&2
    exit 1
  }

  ./build/tools/wlmctl report meshdelivery --networks 6 --seed 7 --jobs 2 \
    > "${dir}/delivery.out"
  grep -q "relayed reports" "${dir}/delivery.out" || {
    echo "mesh smoke: meshdelivery artifact lacks the relay summary" >&2
    exit 1
  }
  echo "mesh smoke: jobs byte-identical, outage ledger reconciles with stranding, artifact renders"
}
mesh_smoke

if [[ "${1:-}" != "--fast" ]]; then
  # Sanitizer builds skip the `slow` and `perf` labels (fork-based e2e,
  # golden replays, and the PER-mode fleet-identity gates): the instrumented
  # binaries run those campaigns 5-20x slower, and the same code paths are
  # already covered by the unlabeled ckpt/property/determinism tests.
  # The `classify` label (rule-engine differential + parser fuzz corpus) is
  # NOT excluded, so both sanitizer lanes sweep the mutated-packet
  # corpus and the 100k-flow oracle diff on every run. Likewise `tsdb`
  # (segment format roundtrip + the adversarial truncation/bit-flip/tamper
  # corpus), `mobility` (walk determinism, handoff boundaries, mobility
  # golden renders), and `mesh` (relay routing purity, jobs byte-identity,
  # gateway-outage stranding, hop-count goldens, the v6 checkpoint fuzz
  # corpus): their tests are fast and written to be ASan/UBSan-clean, so
  # both sanitizer lanes pick them up automatically.
  run_suite build-asan "-LE slow|perf" -DWLM_SANITIZE=address
  run_suite build-tsan "-LE slow|perf" -DWLM_SANITIZE=thread
fi

echo "=== ci.sh: all suites green ==="
