#!/usr/bin/env bash
# Local CI: the tier-1 suite plus sanitizer passes.
#
#   tools/ci.sh            # tier-1 + ASan/UBSan + TSan
#   tools/ci.sh --fast     # tier-1 only
#
# Each configuration builds into its own tree (build/, build-asan/,
# build-tsan/) so switching sanitizers never poisons the plain build.
# TSan specifically vets the sharded fleet harvest: the determinism tests
# run the same campaign at several thread counts, which is exactly the
# interleaving a data race would need to surface.
set -euo pipefail
cd "$(dirname "$0")/.."

run_suite() {
  local dir="$1"
  shift
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  cmake --build "${dir}" -j"$(nproc)"
  (cd "${dir}" && ctest --output-on-failure -j"$(nproc)")
}

run_suite build

if [[ "${1:-}" != "--fast" ]]; then
  run_suite build-asan -DWLM_SANITIZE=address
  run_suite build-tsan -DWLM_SANITIZE=thread
fi

echo "=== ci.sh: all suites green ==="
