#!/usr/bin/env bash
# Local CI: the tier-1 suite plus sanitizer passes.
#
#   tools/ci.sh            # tier-1 + ASan/UBSan + TSan
#   tools/ci.sh --fast     # tier-1 only
#
# Each configuration builds into its own tree (build/, build-asan/,
# build-tsan/) so switching sanitizers never poisons the plain build.
# TSan specifically vets the sharded fleet harvest: the determinism tests
# run the same campaign at several thread counts, which is exactly the
# interleaving a data race would need to surface.
set -euo pipefail
cd "$(dirname "$0")/.."

run_suite() {
  local dir="$1"
  shift
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  cmake --build "${dir}" -j"$(nproc)"
  (cd "${dir}" && ctest --output-on-failure -j"$(nproc)")
}

run_suite build

# Bench smoke: run the two headline benches at a tiny scale and assert the
# emitted BENCH JSON parses and carries the telemetry phase profile. The
# scorecard's paper-figure checks are allowed to fail at this scale (the
# calibration targets assume a full-size fleet); the smoke only cares that
# the harness itself runs and reports.
bench_smoke() {
  local json="build/BENCH_smoke.json"
  rm -f "${json}"
  echo "=== bench smoke (tiny scale) ==="
  WLM_BENCH_JSON="${json}" ./build/bench/bench_scorecard 12 0.2 7 2 > /dev/null \
    || echo "bench_scorecard: nonzero exit tolerated at smoke scale"
  WLM_BENCH_JSON="${json}" ./build/bench/bench_fault_sweep 6 0.2 7 2 > /dev/null
  if [[ ! -s "${json}" ]]; then
    echo "bench smoke: ${json} missing or empty" >&2
    exit 1
  fi
  if command -v python3 > /dev/null 2>&1; then
    # Every line must parse as JSON, and at least one record (bench_fault_sweep
    # also appends plain per-cell lines) must carry a non-empty
    # telemetry.phases profile.
    python3 - "${json}" << 'EOF'
import json, sys
ok = False
with open(sys.argv[1]) as f:
    for n, line in enumerate(f, 1):
        rec = json.loads(line)  # raises -> nonzero exit on malformed output
        phases = rec.get("telemetry", {}).get("phases", [])
        if phases:
            ok = True
if not ok:
    sys.exit("bench smoke: no record carries a telemetry.phases profile")
print(f"bench smoke: {n} JSON lines, telemetry profile present")
EOF
  else
    grep -q '"telemetry": {"phases":\[{' "${json}" || {
      echo "bench smoke: no telemetry.phases in ${json}" >&2
      exit 1
    }
    echo "bench smoke: telemetry profile present (grep fallback)"
  fi
}
bench_smoke

if [[ "${1:-}" != "--fast" ]]; then
  run_suite build-asan -DWLM_SANITIZE=address
  run_suite build-tsan -DWLM_SANITIZE=thread
fi

echo "=== ci.sh: all suites green ==="
