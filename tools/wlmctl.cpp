// wlmctl — command-line front end for the wlm measurement system.
//
//   wlmctl simulate [--networks N] [--seed S] [--jobs N] [--faults SPEC]
//                   [--checkpoint-out F] [--checkpoint-every H]
//                   [--resume-from F] [--halt-after-phase P]
//   wlmctl report   <table2|table3|...|fig11>    regenerate one paper artifact
//   wlmctl health   [--networks N] [--faults SPEC]  run a faulted week, triage
//   wlmctl pcap     <path> [--flows N]           export a synthetic capture
//   wlmctl stats    [--faults SPEC] [--metrics-out F] [--trace-out F]
//                                                run a campaign, dump telemetry
//   wlmctl spectrum [--seed S]                   render the Figure 11 scenes
#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "analysis/experiments.hpp"
#include "analysis/export.hpp"
#include "backend/health.hpp"
#include "ckpt/campaign.hpp"
#include "cli/parse.hpp"
#include "failsafe/failpoint.hpp"
#include "failsafe/supervisor.hpp"
#include "fault/spec.hpp"
#include "sim/world.hpp"
#include "telemetry/export.hpp"
#include "traffic/pcap.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace wlm;

struct Args {
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;
  /// Set when any option failed to parse; commands bail with exit code 2.
  mutable bool bad = false;

  // Both getters go through cli::parse_* — the strict whitelist parsers —
  // so every numeric flag uniformly rejects NaN/inf spellings, hex, empty
  // values, trailing junk, and overflow. strtod's permissiveness once let
  // `--roam-prob nan` through ([0,1] range checks pass NaN), silently
  // running a different scenario than asked.
  [[nodiscard]] int get_int(const std::string& name, int fallback) const {
    const auto it = options.find(name);
    if (it == options.end()) return fallback;
    const auto v = cli::parse_int(it->second, INT_MIN, INT_MAX);
    if (!v) {
      std::fprintf(stderr, "wlmctl: --%s expects an integer, got '%s'\n", name.c_str(),
                   it->second.c_str());
      bad = true;
      return fallback;
    }
    return static_cast<int>(*v);
  }
  [[nodiscard]] double get_double(const std::string& name, double fallback) const {
    const auto it = options.find(name);
    if (it == options.end()) return fallback;
    const auto v = cli::parse_double(it->second);
    if (!v) {
      std::fprintf(stderr, "wlmctl: --%s expects a finite number, got '%s'\n",
                   name.c_str(), it->second.c_str());
      bad = true;
      return fallback;
    }
    return *v;
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0 && i + 1 < argc) {
      args.options[token.substr(2)] = argv[++i];
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

/// Validates the scale/parallelism options shared by every world-building
/// command. Prints a diagnostic and returns false on a bad value. The
/// upper bound is the paper's audited full fleet (20,667 networks, Table
/// 2): every code path is exercised at that scale (BENCH_fullscale.json),
/// anything beyond it is untested territory — rejected, not clamped, so a
/// typo'd count fails loudly.
bool validate_scale(const Args& args, int networks, int jobs) {
  if (args.bad) return false;
  if (networks < 1) {
    std::fprintf(stderr, "wlmctl: --networks must be >= 1 (got %d)\n", networks);
    return false;
  }
  if (networks > analysis::paper_network_count()) {
    std::fprintf(stderr,
                 "wlmctl: --networks is audited up to %d (the paper's full fleet); "
                 "got %d\n",
                 analysis::paper_network_count(), networks);
    return false;
  }
  if (jobs < 1) {
    std::fprintf(stderr, "wlmctl: --jobs must be >= 1 (got %d)\n", jobs);
    return false;
  }
  return true;
}

/// Resolves --networks against the --scale preset. `--scale paper` presets
/// the audited full fleet (20,667 networks); an explicit --networks wins.
int resolve_networks(const Args& args, int fallback) {
  if (const auto it = args.options.find("scale"); it != args.options.end()) {
    if (it->second != "paper") {
      std::fprintf(stderr, "wlmctl: --scale expects 'paper', got '%s'\n",
                   it->second.c_str());
      args.bad = true;
      return fallback;
    }
    if (args.options.count("networks") == 0) return analysis::paper_network_count();
  }
  return args.get_int("networks", fallback);
}

/// Applies the shared streaming-harvest flags (--mem-ceiling-mb,
/// --spill-dir) to an experiment scale; returns false on a bad value.
bool apply_mem_ceiling(const Args& args, std::uint64_t& mem_ceiling_mb,
                       std::string& spill_dir) {
  const int ceiling = args.get_int("mem-ceiling-mb", 0);
  if (args.bad) return false;
  if (ceiling < 0) {
    std::fprintf(stderr, "wlmctl: --mem-ceiling-mb must be >= 0 (got %d)\n", ceiling);
    return false;
  }
  mem_ceiling_mb = static_cast<std::uint64_t>(ceiling);
  if (const auto it = args.options.find("spill-dir"); it != args.options.end()) {
    if (it->second.empty()) {
      std::fprintf(stderr, "wlmctl: --spill-dir expects a directory\n");
      return false;
    }
    spill_dir = it->second;
  }
  return true;
}

/// Applies the shared mobility flags (--mobility on|off, --roam-prob P,
/// --mobility-speed M, --mobility-steps N) to a MobilityConfig; returns
/// false on a bad value. Out-of-range values are rejected loudly here —
/// MobilityConfig::clamped() exists for programmatic callers, but a typo'd
/// CLI flag should fail, not silently run a different scenario.
bool apply_mobility(const Args& args, mobility::MobilityConfig& mobility) {
  if (const auto it = args.options.find("mobility"); it != args.options.end()) {
    if (it->second == "on") {
      mobility.enabled = true;
    } else if (it->second == "off") {
      mobility.enabled = false;
    } else {
      std::fprintf(stderr, "wlmctl: --mobility expects on|off, got '%s'\n",
                   it->second.c_str());
      return false;
    }
  }
  const double roam = args.get_double("roam-prob", mobility.roam_probability);
  if (args.bad) return false;
  if (roam < 0.0 || roam > 1.0) {
    std::fprintf(stderr, "wlmctl: --roam-prob must be in [0,1] (got %g)\n", roam);
    return false;
  }
  mobility.roam_probability = roam;
  const double speed = args.get_double("mobility-speed", mobility.speed_mps);
  if (args.bad) return false;
  if (!(speed > 0.0 && speed <= 10.0)) {
    std::fprintf(stderr, "wlmctl: --mobility-speed must be in (0,10] m/s (got %g)\n",
                 speed);
    return false;
  }
  mobility.speed_mps = speed;
  const int steps = args.get_int("mobility-steps", mobility.steps_per_week);
  if (args.bad) return false;
  if (steps < 1 || steps > 100'000) {
    std::fprintf(stderr, "wlmctl: --mobility-steps must be in [1,100000] (got %d)\n",
                 steps);
    return false;
  }
  mobility.steps_per_week = steps;
  return true;
}

/// Applies the shared mesh backhaul flags (--mesh-fraction F,
/// --mesh-max-hops N, --mesh-floor-dbm D, --mesh-drift-db D) to a
/// MeshConfig; returns false on a bad value. Same policy as mobility:
/// MeshConfig::clamped() exists for programmatic callers, but a typo'd CLI
/// flag must fail, not silently run a different scenario.
bool apply_mesh(const Args& args, mesh::MeshConfig& mesh) {
  const double fraction = args.get_double("mesh-fraction", mesh.mesh_fraction);
  if (args.bad) return false;
  if (fraction < 0.0 || fraction > 0.95) {
    std::fprintf(stderr, "wlmctl: --mesh-fraction must be in [0,0.95] (got %g)\n",
                 fraction);
    return false;
  }
  mesh.mesh_fraction = fraction;
  const int hops = args.get_int("mesh-max-hops", mesh.max_hops);
  if (args.bad) return false;
  if (hops < 1 || hops > 16) {
    std::fprintf(stderr, "wlmctl: --mesh-max-hops must be in [1,16] (got %d)\n", hops);
    return false;
  }
  mesh.max_hops = hops;
  const double floor = args.get_double("mesh-floor-dbm", mesh.relay_floor_dbm);
  if (args.bad) return false;
  if (floor < -100.0 || floor > -40.0) {
    std::fprintf(stderr, "wlmctl: --mesh-floor-dbm must be in [-100,-40] (got %g)\n",
                 floor);
    return false;
  }
  mesh.relay_floor_dbm = floor;
  const double drift = args.get_double("mesh-drift-db", mesh.drift_sigma_db);
  if (args.bad) return false;
  if (drift < 0.0 || drift > 10.0) {
    std::fprintf(stderr, "wlmctl: --mesh-drift-db must be in [0,10] (got %g)\n", drift);
    return false;
  }
  mesh.drift_sigma_db = drift;
  return true;
}

/// Exit codes: 0 ok, 1 runtime failure, 2 usage error, 3 campaign finished
/// degraded (shards quarantined — partial but accounted results), 4 resume
/// I/O failure (checkpoint missing/unreadable).
constexpr int kExitDegraded = 3;
constexpr int kExitResumeIo = 4;

/// Arms the process-global failpoint registry from --failpoints. Returns
/// false (with a diagnostic) on a bad spec. Failpoints are injection
/// config, not simulated state: they apply to resumed runs too and are
/// never serialized into checkpoints.
bool arm_failpoints(const Args& args) {
  const auto it = args.options.find("failpoints");
  if (it == args.options.end()) return true;
  std::string error;
  if (!failsafe::failpoints().arm_list(it->second, &error)) {
    std::fprintf(stderr, "wlmctl: bad --failpoints spec: %s\n", error.c_str());
    return false;
  }
  return true;
}

std::optional<sim::WorldConfig> world_config(const Args& args) {
  sim::WorldConfig config;
  config.fleet.epoch = deploy::Epoch::kJan2015;
  config.fleet.network_count = resolve_networks(args, 50);
  config.fleet.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.seed = config.fleet.seed + 1;
  config.wan_flap_fraction = args.get_double("flap", 0.0);
  config.threads = args.get_int("jobs", 1);
  if (!validate_scale(args, config.fleet.network_count, config.threads)) {
    return std::nullopt;
  }
  if (config.wan_flap_fraction < 0.0 || config.wan_flap_fraction > 1.0) {
    std::fprintf(stderr, "wlmctl: --flap must be in [0,1] (got %g)\n",
                 config.wan_flap_fraction);
    return std::nullopt;
  }
  if (const auto it = args.options.find("faults"); it != args.options.end()) {
    std::string error;
    const auto spec = fault::FaultSpec::parse(it->second, &error);
    if (!spec) {
      std::fprintf(stderr, "wlmctl: bad --faults spec: %s\n", error.c_str());
      return std::nullopt;
    }
    config.faults = *spec;
  }
  if (const auto it = args.options.find("classifier"); it != args.options.end()) {
    const auto mode = classify::classifier_mode_from_name(it->second);
    if (!mode) {
      std::fprintf(stderr, "wlmctl: --classifier expects reference|indexed, got '%s'\n",
                   it->second.c_str());
      return std::nullopt;
    }
    config.classifier = *mode;
  }
  if (const auto it = args.options.find("per-mode"); it != args.options.end()) {
    const auto mode = phy::per_mode_from_name(it->second);
    if (!mode) {
      std::fprintf(stderr, "wlmctl: --per-mode expects reference|table, got '%s'\n",
                   it->second.c_str());
      return std::nullopt;
    }
    config.per_mode = *mode;
  }
  const int retries = args.get_int("max-shard-retries", config.supervision.max_shard_retries);
  if (args.bad) return std::nullopt;
  if (retries < 0) {
    std::fprintf(stderr, "wlmctl: --max-shard-retries must be >= 0 (got %d)\n", retries);
    return std::nullopt;
  }
  config.supervision.max_shard_retries = retries;
  const double deadline = args.get_double("shard-deadline", 0.0);
  if (args.bad) return std::nullopt;
  if (deadline < 0.0) {
    std::fprintf(stderr, "wlmctl: --shard-deadline must be >= 0 sim-hours (got %g)\n",
                 deadline);
    return std::nullopt;
  }
  config.supervision.shard_deadline_hours = deadline;
  // Snapshot capture costs a per-shard serialize each phase, so it only
  // switches on when the user opts into supervision behavior explicitly.
  config.supervision.capture_checkpoints = args.options.count("failpoints") != 0 ||
                                           args.options.count("max-shard-retries") != 0 ||
                                           args.options.count("shard-deadline") != 0;
  if (!apply_mem_ceiling(args, config.mem_ceiling_mb, config.spill_dir)) {
    return std::nullopt;
  }
  if (!apply_mobility(args, config.mobility)) return std::nullopt;
  if (!apply_mesh(args, config.mesh)) return std::nullopt;
  return config;
}

/// Applies the shared --per-mode option to an experiment scale; returns
/// false (with a diagnostic) on an unknown mode name.
bool apply_per_mode(const Args& args, analysis::ScenarioScale& scale) {
  const auto it = args.options.find("per-mode");
  if (it == args.options.end()) return true;
  const auto mode = phy::per_mode_from_name(it->second);
  if (!mode) {
    std::fprintf(stderr, "wlmctl: --per-mode expects reference|table, got '%s'\n",
                 it->second.c_str());
    return false;
  }
  scale.per_mode = *mode;
  return true;
}

/// Writes `text` to `path`; returns false (with a diagnostic) on failure.
bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "wlmctl: cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), out) == text.size();
  std::fclose(out);
  if (!ok) std::fprintf(stderr, "wlmctl: short write to %s\n", path.c_str());
  return ok;
}

/// The simulate campaign script, as named phases. Checkpoints cut between
/// entries; a resume replays only the phases the checkpoint hasn't done.
struct SimulatePhase {
  const char* name;
  void (*run)(sim::FleetRunner&);
};

constexpr SimulatePhase kSimulatePhases[] = {
    {"usage_week", [](sim::FleetRunner& r) { r.run_usage_week(); }},
    {"mr16",
     [](sim::FleetRunner& r) {
       r.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
     }},
    {"link_windows",
     [](sim::FleetRunner& r) {
       r.run_link_windows(SimTime::epoch() + Duration::hours(14));
     }},
    {"harvest", [](sim::FleetRunner& r) { r.harvest(); }},
};

int cmd_simulate(const Args& args) {
  if (!arm_failpoints(args)) return 2;
  std::string checkpoint_out;
  if (const auto it = args.options.find("checkpoint-out"); it != args.options.end()) {
    checkpoint_out = it->second;
  }
  const double checkpoint_every = args.get_double("checkpoint-every", 0.0);
  std::string halt_after;
  if (const auto it = args.options.find("halt-after-phase"); it != args.options.end()) {
    halt_after = it->second;
    const bool known =
        std::any_of(std::begin(kSimulatePhases), std::end(kSimulatePhases),
                    [&](const SimulatePhase& p) { return halt_after == p.name; });
    if (!known) {
      std::fprintf(stderr, "wlmctl: unknown phase '%s' for --halt-after-phase\n",
                   halt_after.c_str());
      return 2;
    }
  }
  if (checkpoint_every < 0.0) {
    std::fprintf(stderr, "wlmctl: --checkpoint-every must be >= 0 sim-hours\n");
    return 2;
  }
  if ((checkpoint_every > 0.0 || !halt_after.empty()) && checkpoint_out.empty()) {
    std::fprintf(stderr,
                 "wlmctl: --checkpoint-every/--halt-after-phase need --checkpoint-out\n");
    return 2;
  }

  std::unique_ptr<sim::FleetRunner> runner;
  ckpt::CampaignProgress progress;
  progress.label = "simulate";
  if (const auto it = args.options.find("resume-from"); it != args.options.end()) {
    // The checkpoint carries the full scenario; only --jobs applies here
    // (parallelism is not simulated state).
    const int jobs = args.get_int("jobs", 1);
    if (args.bad || jobs < 1) {
      std::fprintf(stderr, "wlmctl: --jobs must be >= 1 (got %d)\n", jobs);
      return 2;
    }
    ckpt::RestoredCampaign restored;
    if (const auto err = ckpt::restore_campaign_file(it->second, jobs, restored)) {
      std::fprintf(stderr, "wlmctl: cannot resume from %s: %s (%s)\n",
                   it->second.c_str(), err.detail.c_str(), status_name(err.status));
      // An unreadable/missing checkpoint file is an I/O problem the caller
      // can act on (wrong path, lost volume); a malformed one is a bug.
      return err.status == ckpt::Status::kIo ? kExitResumeIo : 1;
    }
    runner = std::move(restored.runner);
    progress = std::move(restored.progress);
    std::fprintf(stderr, "wlmctl: resumed '%s' at %.0f sim-hours (%zu phases done)\n",
                 progress.label.c_str(), progress.sim_hours,
                 progress.phases_done.size());
  } else {
    const auto config = world_config(args);
    if (!config) return 2;
    runner = std::make_unique<sim::FleetRunner>(*config);
  }

  // Everything on stdout below is simulated output: byte-identical for any
  // --jobs, and identical between a resumed and an uninterrupted run.
  std::printf("fleet: %d APs, %zu clients, %zu mesh links\n",
              runner->fleet().total_aps(), runner->client_count(),
              runner->mesh_links().size());

  const auto is_done = [&](const char* name) {
    return std::find(progress.phases_done.begin(), progress.phases_done.end(), name) !=
           progress.phases_done.end();
  };
  double last_ckpt_hours = progress.sim_hours;
  // With --checkpoint-every H, write when >= H sim-hours elapsed since the
  // last cut; without it, write after every phase. `force` covers the
  // --halt-after-phase cut, which must always land on disk.
  const auto checkpoint_now = [&](const char* phase, bool force) {
    if (checkpoint_out.empty()) return true;
    const double elapsed = runner->campaign_sim_hours() - last_ckpt_hours;
    if (!force && checkpoint_every > 0.0 && elapsed < checkpoint_every) return true;
    progress.sim_hours = runner->campaign_sim_hours();
    if (const auto err = ckpt::save_campaign_file(checkpoint_out, *runner, progress)) {
      std::fprintf(stderr, "wlmctl: cannot checkpoint to %s: %s (%s)\n",
                   checkpoint_out.c_str(), err.detail.c_str(), status_name(err.status));
      return false;
    }
    last_ckpt_hours = runner->campaign_sim_hours();
    std::fprintf(stderr, "wlmctl: checkpoint written to %s after phase '%s'\n",
                 checkpoint_out.c_str(), phase);
    return true;
  };

  for (const auto& phase : kSimulatePhases) {
    if (!is_done(phase.name)) {
      phase.run(*runner);
      progress.phases_done.push_back(phase.name);
      if (!checkpoint_now(phase.name, /*force=*/halt_after == phase.name)) return 1;
    }
    if (halt_after == phase.name) {
      std::fprintf(stderr, "wlmctl: halted after phase '%s'\n", phase.name);
      return 0;
    }
  }

  std::printf("store: %zu reports; flows classified: %llu (%.2f%% disagree with truth)\n",
              runner->reports().report_count(),
              static_cast<unsigned long long>(runner->flows_classified()),
              100.0 * static_cast<double>(runner->flows_misclassified()) /
                  std::max<std::uint64_t>(1, runner->flows_classified()));
  std::printf("mean telemetry per AP: %.1f kB framed\n",
              runner->mean_report_bytes_per_ap() / 1e3);
  const bool degraded = runner->supervisor().degraded();
  if (runner->config().faults.enabled() || degraded) {
    std::printf("%s\n", runner->loss_ledger().render().c_str());
  }
  if (degraded) {
    // The campaign finished, but with quarantined shards: report exactly
    // which networks are missing and exit distinctly so scripts can tell
    // "partial but accounted" from success and from failure.
    std::printf("%s\n", runner->supervisor().manifest().render().c_str());
  }
  if (const auto it = args.options.find("metrics-out"); it != args.options.end()) {
    if (!write_text_file(it->second, telemetry::to_json_lines(runner->metrics()))) {
      return 1;
    }
  }
  return degraded ? kExitDegraded : 0;
}

int cmd_report(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: wlmctl report <artifact> [--networks N] [--seed S]\n");
    return 2;
  }
  analysis::ScenarioScale scale;
  scale.networks = resolve_networks(args, 150);
  scale.seed = static_cast<std::uint64_t>(args.get_int("seed", 2015));
  scale.threads = args.get_int("jobs", 1);
  if (!validate_scale(args, scale.networks, scale.threads)) return 2;
  if (!apply_per_mode(args, scale)) return 2;
  if (!apply_mem_ceiling(args, scale.mem_ceiling_mb, scale.spill_dir)) return 2;
  if (!apply_mobility(args, scale.mobility)) return 2;
  if (!apply_mesh(args, scale.mesh)) return 2;
  const std::string& what = args.positional[0];

  if (what == "table2") {
    std::fputs(analysis::render_table2(scale).c_str(), stdout);
  } else if (what == "table3" || what == "table5" || what == "table6") {
    const auto run = analysis::run_usage_study(scale);
    if (what == "table3") std::fputs(analysis::render_table3(run).c_str(), stdout);
    if (what == "table5") std::fputs(analysis::render_table5(run).c_str(), stdout);
    if (what == "table6") std::fputs(analysis::render_table6(run).c_str(), stdout);
  } else if (what == "table4" || what == "fig1") {
    const auto run = analysis::run_snapshot_study(scale);
    std::fputs((what == "table4" ? analysis::render_table4(run)
                                 : analysis::render_fig1(run))
                   .c_str(),
               stdout);
  } else if (what == "table7" || what == "fig2") {
    const auto run = analysis::run_neighbor_study(scale);
    std::fputs(
        (what == "table7" ? analysis::render_table7(run) : analysis::render_fig2(run))
            .c_str(),
        stdout);
  } else if (what == "fig3" || what == "fig4" || what == "fig5") {
    const auto run = analysis::run_link_study(scale);
    if (what == "fig3") std::fputs(analysis::render_fig3(run).c_str(), stdout);
    if (what == "fig4") std::fputs(analysis::render_fig4(run).c_str(), stdout);
    if (what == "fig5") std::fputs(analysis::render_fig5(run).c_str(), stdout);
  } else if (what == "fig6" || what == "fig7" || what == "fig8" || what == "fig9" ||
             what == "fig10") {
    const auto run = analysis::run_utilization_study(scale);
    if (what == "fig6") std::fputs(analysis::render_fig6(run).c_str(), stdout);
    if (what == "fig7") std::fputs(analysis::render_fig7(run).c_str(), stdout);
    if (what == "fig8") std::fputs(analysis::render_fig8(run).c_str(), stdout);
    if (what == "fig9") std::fputs(analysis::render_fig9(run).c_str(), stdout);
    if (what == "fig10") std::fputs(analysis::render_fig10(run).c_str(), stdout);
  } else if (what == "fig11") {
    std::fputs(analysis::render_fig11(analysis::run_spectrum_study(scale.seed)).c_str(),
               stdout);
  } else if (what == "roamcdf" || what == "apvisits" || what == "sticky") {
    // The mobility studies force mobility on; --roam-prob and the other
    // knobs shape the walk.
    const auto run = analysis::run_mobility_study(scale);
    if (what == "roamcdf") std::fputs(analysis::render_roam_cdf(run).c_str(), stdout);
    if (what == "apvisits") std::fputs(analysis::render_ap_visits(run).c_str(), stdout);
    if (what == "sticky") std::fputs(analysis::render_sticky_clients(run).c_str(), stdout);
  } else if (what == "meshdelivery" || what == "meshdelay") {
    // The mesh studies force a nonzero mesh fraction; --mesh-fraction and
    // the other knobs shape the backhaul.
    const auto run = analysis::run_mesh_study(scale);
    if (what == "meshdelivery") {
      std::fputs(analysis::render_mesh_delivery(run).c_str(), stdout);
    }
    if (what == "meshdelay") std::fputs(analysis::render_mesh_delay(run).c_str(), stdout);
  } else {
    std::fprintf(stderr, "unknown artifact '%s'\n", what.c_str());
    return 2;
  }
  return 0;
}

int cmd_health(const Args& args) {
  if (!arm_failpoints(args)) return 2;
  auto config = world_config(args);
  if (!config) return 2;
  if (!config->faults.enabled()) {
    // No scenario given: run a representative mixed-fault week so every
    // triage signal has something to find.
    config->faults.outage_rate_per_week = 2.0;
    config->faults.outage_mean_hours = 18.0;
    config->faults.reboot_rate_per_week = 1.0;
    config->faults.corrupt_probability = 0.01;
  }
  sim::World world(*config);
  world.run_usage_week();
  // Week-end view: APs still inside an outage stay offline — exactly the
  // state a fleet operator's dashboard would be alerting on.
  world.harvest(sim::HarvestMode::kWeekEnd);
  backend::HealthPolicy policy;
  policy.expected_interval = Duration::days(1);
  const backend::HealthMonitor monitor(policy);
  auto findings = monitor.analyze(world.reports(), SimTime::epoch() + Duration::days(7));
  for (const auto& ap : world.aps()) {
    const auto t = monitor.analyze_tunnel(ap.tunnel());
    findings.insert(findings.end(), t.begin(), t.end());
  }
  std::fputs(backend::HealthMonitor::render(findings).c_str(), stdout);

  // Poller-side view, from the merged telemetry registry: which tunnels the
  // retry policy is currently punishing. The registry only carries per-AP
  // backoff gauges for tunnels that misbehaved at least once.
  std::printf("\npoller backoff state (tunnels that ever misbehaved):\n");
  const auto& metrics = world.metrics();
  bool any_backoff = false;
  metrics.for_each_gauge([&](const telemetry::MetricKey& key, const telemetry::Gauge& g) {
    if (key.name != "wlm_poller_backoff_level") return;
    any_backoff = true;
    const bool quarantined =
        metrics.gauge_value("wlm_poller_quarantined", key.entity) > 0.0;
    const auto corrupt =
        metrics.counter_value("wlm_poller_tunnel_corrupt_total", key.entity);
    std::printf("  ap %llu: backoff level %.0f%s, %llu corrupt frames seen\n",
                static_cast<unsigned long long>(key.entity), g.value(),
                quarantined ? " [QUARANTINED]" : "",
                static_cast<unsigned long long>(corrupt));
  });
  if (!any_backoff) std::printf("  (none — every tunnel polled clean all week)\n");

  std::printf("\n%s\n", world.loss_ledger().render().c_str());
  if (world.runner().supervisor().degraded()) {
    std::printf("%s\n", world.runner().supervisor().manifest().render().c_str());
    return kExitDegraded;
  }
  return 0;
}

int cmd_stats(const Args& args) {
  if (!arm_failpoints(args)) return 2;
  const auto config = world_config(args);
  if (!config) return 2;
  sim::World world(*config);
  world.run_usage_week();
  world.run_mr16_interference(SimTime::epoch() + Duration::hours(14));
  world.harvest(sim::HarvestMode::kFinal);

  // The snapshot itself goes to stdout; everything wall-clock or diagnostic
  // goes elsewhere, so stdout is byte-identical for any --jobs value.
  const auto& metrics = world.metrics();
  std::fputs(telemetry::to_prometheus(metrics).c_str(), stdout);

  if (const auto it = args.options.find("metrics-out"); it != args.options.end()) {
    if (!write_text_file(it->second, telemetry::to_json_lines(metrics))) return 1;
  }
  if (const auto it = args.options.find("trace-out"); it != args.options.end()) {
    if (!write_text_file(it->second, telemetry::spans_to_json_lines(world.trace()))) {
      return 1;
    }
  }

  // Reconcile the registry against the independently derived loss ledger:
  // the gauges published at harvest AND the live counters incremented on
  // the hot paths must both agree with it, or the instrumentation lies.
  const auto ledger = world.loss_ledger();
  bool ok = true;
  const auto check = [&](const char* name, double have, std::uint64_t want) {
    if (have == static_cast<double>(want)) return;
    std::fprintf(stderr, "wlmctl stats: %s is %.0f but the ledger says %llu\n", name,
                 have, static_cast<unsigned long long>(want));
    ok = false;
  };
  check("wlm_ledger_generated", metrics.gauge_value("wlm_ledger_generated"),
        ledger.generated);
  check("wlm_ledger_delivered", metrics.gauge_value("wlm_ledger_delivered"),
        ledger.delivered);
  check("wlm_ledger_shed", metrics.gauge_value("wlm_ledger_shed"), ledger.shed);
  check("wlm_ledger_lost_reboot", metrics.gauge_value("wlm_ledger_lost_reboot"),
        ledger.lost_reboot);
  check("wlm_ledger_lost_corruption", metrics.gauge_value("wlm_ledger_lost_corruption"),
        ledger.lost_corruption);
  check("wlm_ledger_in_flight", metrics.gauge_value("wlm_ledger_in_flight"),
        ledger.in_flight);
  check("wlm_ledger_lost_supervision",
        metrics.gauge_value("wlm_ledger_lost_supervision"), ledger.lost_supervision);
  if (ledger.lost_mesh_partition != 0 ||
      metrics.gauge_value("wlm_ledger_lost_mesh_partition") != 0.0) {
    check("wlm_ledger_lost_mesh_partition",
          metrics.gauge_value("wlm_ledger_lost_mesh_partition"),
          ledger.lost_mesh_partition);
  }
  const bool degraded = world.runner().supervisor().degraded();
  if (!degraded) {
    // These hot-path counters reflect work as it happened; a quarantined
    // shard's registry is excluded from the merge while the ledger
    // reattributes its work to lost_supervision, so the comparison is only
    // meaningful for fully harvested fleets. Partition-stranded mesh
    // reports never reach the enqueue counter (they drop before the
    // tunnel), so the ledger's generated total exceeds it by exactly that
    // bucket.
    check("wlm_sim_reports_enqueued_total",
          static_cast<double>(metrics.counter_value("wlm_sim_reports_enqueued_total")),
          ledger.generated - ledger.lost_mesh_partition);
    check("wlm_poller_reports_stored_total",
          static_cast<double>(metrics.counter_value("wlm_poller_reports_stored_total")),
          ledger.delivered);
  } else {
    std::fprintf(stderr,
                 "wlmctl stats: degraded run — hot-path counter checks skipped\n");
  }
  if (!ok) {
    std::fprintf(stderr, "wlmctl stats: telemetry does NOT reconcile with the ledger\n");
    return 1;
  }
  std::fprintf(stderr,
               "wlmctl stats: telemetry reconciles with the loss ledger "
               "(generated=%llu delivered=%llu)\n",
               static_cast<unsigned long long>(ledger.generated),
               static_cast<unsigned long long>(ledger.delivered));
  return degraded ? kExitDegraded : 0;
}

int cmd_pcap(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: wlmctl pcap <path> [--flows N] [--seed S]\n");
    return 2;
  }
  const int flows = args.get_int("flows", 200);
  const int pcap_seed = args.get_int("seed", 9);
  if (args.bad) return 2;
  if (flows < 1) {
    std::fprintf(stderr, "wlmctl: --flows must be >= 1 (got %d)\n", flows);
    return 2;
  }
  Rng rng(static_cast<std::uint64_t>(pcap_seed));
  const deploy::PopulationModel population(deploy::Epoch::kJan2015);
  traffic::WorkloadModel workload(deploy::Epoch::kJan2015, rng.fork());
  traffic::PcapWriter writer;
  SimTime t;
  int written = 0;
  for (std::uint32_t c = 1; written < flows; ++c) {
    const auto device = population.sample(ClientId{c}, rng);
    const auto week = workload.generate_week(device);
    for (const auto& flow : week.flows) {
      if (written >= flows) break;
      traffic::PacketEndpoints endpoints;
      endpoints.src_mac = device.mac;
      endpoints.dst_mac = MacAddress::from_u64(0x88154E000001ULL);
      writer.add_flow(t, flow, endpoints);
      t += Duration::millis(250);
      ++written;
    }
  }
  if (!writer.write_file(args.positional[0])) {
    std::fprintf(stderr, "cannot write %s\n", args.positional[0].c_str());
    return 1;
  }
  std::printf("wrote %zu packets (%zu bytes) from %d flows to %s\n",
              writer.packet_count(), writer.bytes().size(), written,
              args.positional[0].c_str());
  return 0;
}

int cmd_export(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: wlmctl export <dir> [--networks N] [--seed S]\n");
    return 2;
  }
  analysis::ScenarioScale scale;
  scale.networks = resolve_networks(args, 150);
  scale.seed = static_cast<std::uint64_t>(args.get_int("seed", 2015));
  scale.threads = args.get_int("jobs", 1);
  if (!validate_scale(args, scale.networks, scale.threads)) return 2;
  if (!apply_per_mode(args, scale)) return 2;
  if (!apply_mem_ceiling(args, scale.mem_ceiling_mb, scale.spill_dir)) return 2;
  const std::string& dir = args.positional[0];

  std::vector<analysis::CsvDoc> docs;
  docs.push_back(analysis::export_fig1(analysis::run_snapshot_study(scale)));
  {
    const auto link = analysis::run_link_study(scale);
    docs.push_back(analysis::export_fig3(link));
  }
  {
    const auto util = analysis::run_utilization_study(scale);
    docs.push_back(analysis::export_fig6(util));
    docs.push_back(analysis::export_fig78(util));
    docs.push_back(analysis::export_fig9(util));
  }
  docs.push_back(analysis::export_table7(analysis::run_neighbor_study(scale)));
  docs.push_back(analysis::export_fig11(analysis::run_spectrum_study(scale.seed)));
  docs.push_back(analysis::export_scorecard_data(analysis::run_usage_study(scale)));

  for (const auto& doc : docs) {
    if (!analysis::write_csv(doc, dir)) {
      std::fprintf(stderr, "cannot write %s/%s.csv\n", dir.c_str(), doc.name.c_str());
      return 1;
    }
    std::printf("wrote %s/%s.csv (%zu rows)\n", dir.c_str(), doc.name.c_str(),
                doc.rows.size() - 1);
  }
  return 0;
}

int cmd_spectrum(const Args& args) {
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2015));
  if (args.bad) return 2;
  const auto run = analysis::run_spectrum_study(seed);
  std::fputs(analysis::render_fig11(run).c_str(), stdout);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: wlmctl <command> [options]\n"
               "  simulate  [--networks N] [--scale paper] [--seed S] [--flap F]\n"
               "            [--faults SPEC] [--jobs N]\n"
               "            [--classifier reference|indexed] [--per-mode reference|table]\n"
               "            [--mem-ceiling-mb MB] [--spill-dir DIR]\n"
               "            [--checkpoint-out FILE] [--checkpoint-every SIM_HOURS]\n"
               "            [--resume-from FILE] [--halt-after-phase PHASE]\n"
               "            [--failpoints SPEC] [--max-shard-retries N]\n"
               "            [--shard-deadline SIM_HOURS] [--metrics-out FILE]\n"
               "            [--mobility on|off] [--roam-prob P] [--mobility-speed M]\n"
               "            [--mobility-steps N]\n"
               "            [--mesh-fraction F] [--mesh-max-hops N] [--mesh-floor-dbm D]\n"
               "            [--mesh-drift-db D]\n"
               "            phases: usage_week, mr16, link_windows, harvest. A resume\n"
               "            replays only unfinished phases; its output is byte-identical\n"
               "            to an uninterrupted run at any --jobs\n"
               "  report    <table2..table7|fig1..fig11|roamcdf|apvisits|sticky\n"
               "             |meshdelivery|meshdelay>\n"
               "            [--networks N] [--scale paper]\n"
               "            [--seed S] [--jobs N] [--per-mode reference|table]\n"
               "            [--mem-ceiling-mb MB] [--spill-dir DIR]\n"
               "            [--roam-prob P] [--mobility-speed M] [--mobility-steps N]\n"
               "            roamcdf/apvisits/sticky run a mobility-enabled usage week\n"
               "            meshdelivery/meshdelay run a mesh-enabled usage week and\n"
               "            render delivery ratio / relay delay vs hop count\n"
               "  health    [--networks N] [--flap F] [--faults SPEC] [--jobs N]\n"
               "  pcap      <path> [--flows N] [--seed S]\n"
               "  export    <dir> [--networks N] [--scale paper] [--seed S] [--jobs N]\n"
               "            [--mem-ceiling-mb MB] [--spill-dir DIR]  write CSV data series\n"
               "  stats     [--networks N] [--seed S] [--faults SPEC] [--jobs N]\n"
               "            [--metrics-out FILE] [--trace-out FILE]\n"
               "            run a week campaign, print the Prometheus-style metrics\n"
               "            snapshot, and verify it reconciles with the loss ledger\n"
               "  spectrum  [--seed S]\n"
               "\n"
               "--scale paper presets --networks to the paper's audited full fleet\n"
               "(20,667 networks, Table 2); an explicit --networks overrides it.\n"
               "--mem-ceiling-mb M streams the harvest: shards seal columnar tsdb\n"
               "segments at phase boundaries and spill to --spill-dir when resident\n"
               "segment bytes press M/4. Output is byte-identical for any fixed\n"
               "ceiling, spilled or not (0 = classic hold-until-final harvest).\n"
               "\n"
               "--mesh-fraction F makes that fraction of each network's APs WAN-less:\n"
               "they relay report batches over multi-hop paths to gateway APs (AP 0 is\n"
               "always a gateway). Routes recompute at campaign phase boundaries as\n"
               "shadowing drifts (--mesh-drift-db); APs beyond --mesh-max-hops of every\n"
               "gateway are partitioned and their reports land in lost_mesh_partition.\n"
               "A gateway outage strands its whole relay subtree the same way.\n"
               "\n"
               "--faults SPEC is comma-separated key=value pairs; keys: flap, outage_rate,\n"
               "outage_hours, reboot_rate, fw_wave, fw_hour, corrupt, oom_threshold,\n"
               "skyscraper, skyscraper_neighbors, queue. Example:\n"
               "  wlmctl health --faults \"outage_rate=2,outage_hours=36,corrupt=0.02\"\n"
               "\n"
               "--failpoints SPEC arms deterministic fault-injection sites: clauses\n"
               "separated by ';', each comma-separated key=value pairs. Keys: site\n"
               "(required: ckpt.save.write, poller.poll, shard.step, harvest.merge,\n"
               "shard.alloc), net (entity id; default all), action (throw|error|delay|oom),\n"
               "after (skip first N hits), times (fire at most N; 0=forever), hours (delay\n"
               "magnitude), prob (firing probability), seed. Example:\n"
               "  wlmctl simulate --failpoints \"site=shard.step,net=3,action=throw,times=1\"\n"
               "\n"
               "exit codes: 0 ok; 1 runtime failure; 2 usage error; 3 campaign finished\n"
               "degraded (shards quarantined, output partial but accounted); 4 resume\n"
               "checkpoint missing or unreadable\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);
  if (command == "simulate") return cmd_simulate(args);
  if (command == "report") return cmd_report(args);
  if (command == "health") return cmd_health(args);
  if (command == "pcap") return cmd_pcap(args);
  if (command == "export") return cmd_export(args);
  if (command == "stats") return cmd_stats(args);
  if (command == "spectrum") return cmd_spectrum(args);
  return usage();
}
